//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the workspace's `harness = false` bench binaries compiling and
//! useful: same source-level API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`), but measurement is a plain
//! best-of-samples wall-clock loop printed to stdout — no statistics
//! engine, no HTML reports.
//!
//! Under `cargo test`, cargo runs bench binaries with `--test`; each
//! benchmark body then executes exactly once as a smoke test.

use std::time::{Duration, Instant};

/// How long each benchmark spends measuring (after one warm-up batch).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes bench targets with `--test` under `cargo test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with elements/bytes per iteration.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { test_mode: self.criterion.test_mode, measured: None };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { test_mode: self.criterion.test_mode, measured: None };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is inline).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let label = match id {
            BenchmarkId::Name(n) => format!("{}/{}", self.name, n),
            BenchmarkId::Parameterised { function, parameter } => {
                format!("{}/{}/{}", self.name, function, parameter)
            }
        };
        let Some(per_iter) = bencher.measured else {
            println!("test {label} ... ok (test mode)");
            return;
        };
        let ns = per_iter.as_nanos();
        match self.throughput {
            Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("{label}  time: {ns} ns/iter  thrpt: {rate:.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("{label}  time: {ns} ns/iter  thrpt: {rate:.0} B/s");
            }
            _ => println!("{label}  time: {ns} ns/iter"),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    test_mode: bool,
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, keeping the best (smallest) per-iteration time seen.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up, and a batch size putting one batch near ~50ms so cheap
        // closures are not swamped by timer overhead.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 1 << 20);

        let mut best = Duration::MAX;
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            best = best.min(start.elapsed() / batch as u32);
        }
        self.measured = Some(best);
    }
}

/// Identifies one benchmark within a group.
pub enum BenchmarkId {
    /// A plain name.
    Name(String),
    /// A function name plus parameter, rendered `function/parameter`.
    Parameterised { function: String, parameter: String },
}

impl BenchmarkId {
    /// A benchmark named `function` with a displayed `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId::Parameterised { function: function.into(), parameter: parameter.to_string() }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId::Name(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId::Name(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId::Name(name)
    }
}

/// Work performed per iteration, for rate reporting.
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..10).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter("param-only"), &1u64, |b, &n| {
            b.iter(|| n + 1);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        // Exercises the whole macro + group + bencher path; the assertion
        // is simply that nothing panics in either mode.
        benches();
    }
}
