//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> SizeRange {
        SizeRange { min: len, max: len }
    }
}

/// A `Vec` whose length and elements are both generated.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_requested_range() {
        let mut rng = TestRng::for_case("collection", "lengths", 0);
        let s = vec(0u64..10, 1..5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[1] && seen[4], "both extremes generated");
    }
}
