//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`Strategy`] with `prop_map`/`boxed`,
//! ranges and tuples as strategies, [`any`], [`strategy::Just`], and
//! `prop::collection::vec`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test stream (no `proptest-regressions` files) and
//! there is **no shrinking** — a failure reports the case number and the
//! generated inputs verbatim.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

use std::marker::PhantomData;

use test_runner::TestRng;

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value, mildly biased toward boundary values.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 draws pick a boundary value; bugs cluster there
                // and uniform draws almost never land on them.
                const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MIN];
                if rng.below(8) == 0 {
                    EDGES[rng.below(4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        const EDGES: [f64; 6] = [0.0, -0.0, 1.0, -1.0, f64::INFINITY, f64::NEG_INFINITY];
        match rng.below(8) {
            0 => EDGES[rng.below(6) as usize],
            // Reinterpreted bit patterns reach subnormals and NaNs too.
            1 => f64::from_bits(rng.next_u64()),
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let scale = [1.0, 1e3, 1e9, 1e-6][rng.below(4) as usize];
                let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
                sign * unit * scale
            }
        }
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test item, threading the config expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.effective_cases() {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    module_path!(),
                    stringify!($name),
                    __case,
                );
                let __values = ($($crate::Strategy::generate(&($strategy), &mut __rng),)+);
                let __inputs = format!("{:?}", __values);
                let ($($pat,)+) = __values;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}\n  inputs: {}\n  {}",
                        stringify!($name),
                        __case,
                        __config.effective_cases(),
                        __inputs,
                        __err,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fails the enclosing property (with the generated inputs reported) when
/// the condition is false. Only valid inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// [`prop_assert!`] for equality, reporting both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: left == right\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing end-to-end: ranges, tuples, oneof, vec.
        #[test]
        fn generated_values_respect_strategies(
            (a, b) in (0u64..10, 5u64..6),
            choice in prop_oneof![3 => 0u32..100, 1 => Just(999u32)],
            xs in prop::collection::vec(any::<u16>().prop_map(u64::from), 1..8),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(choice < 100 || choice == 999, "choice = {}", choice);
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            if xs.len() == 1 {
                // Early exit must compile and pass.
                return Ok(());
            }
            prop_assert!(xs.len() >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_report_case_and_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(v in 0u64..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
