//! Deterministic case generation and failure reporting.

/// Deterministic per-case generator.
///
/// Each test case gets its own stream derived from the test's module path,
/// name, and case index, so adding or reordering tests never changes the
/// inputs another test sees.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one `(test, case)` pair.
    pub fn for_case(module: &str, name: &str, case: u32) -> TestRng {
        // FNV-1a over the identifying strings, then SplitMix64 to spread
        // the case index across the state space.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain([b':']).chain(name.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TestRng { state: z | 1 }
    }

    /// Next word of the stream (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below zero");
        self.next_u64() % bound
    }
}

/// Knobs for the generated test loop.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count, honouring a `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property, carrying the reason.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_stable_and_distinct() {
        let mut a = TestRng::for_case("m", "t", 0);
        let mut b = TestRng::for_case("m", "t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("m", "t", 1);
        let mut d = TestRng::for_case("m", "u", 0);
        assert_ne!(a.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }
}
