//! Value-generation strategies.
//!
//! Unlike real proptest there is no shrinking: a strategy is just a
//! deterministic function from a [`TestRng`] to a value. Failures report
//! the generated inputs so a case can be reconstructed by eye.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map: f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (e.g. the arms of `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::sync::Arc::new(self)
    }
}

/// A type-erased, cheaply clonable strategy (real proptest's boxed
/// strategies are also reference-counted under the hood).
pub type BoxedStrategy<T> = std::sync::Arc<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for std::sync::Arc<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);

/// A weighted choice between strategies of the same value type; the
/// engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds the union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { options, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union { options: self.options.clone(), total_weight: self.total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.below(self.total_weight);
        for (weight, strategy) in &self.options {
            let weight = u64::from(*weight);
            if draw < weight {
                return strategy.generate(rng);
            }
            draw -= weight;
        }
        unreachable!("draw is below the total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy", "ranges", 0);
        for _ in 0..1000 {
            let v = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let w = (-3i16..=3).generate(&mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn map_tuple_and_union_compose() {
        let mut rng = TestRng::for_case("strategy", "compose", 0);
        let s = Union::new(vec![
            (3, (0u64..4, 1u64..2).prop_map(|(a, b)| a + b).boxed()),
            (1, Just(100u64).boxed()),
        ]);
        let mut saw_union_arm = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v <= 4 || v == 100);
            saw_union_arm |= v == 100;
        }
        assert!(saw_union_arm, "low-weight arm still sampled");
    }
}
