//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the (small, fully deterministic) subset of the rand 0.8 API the
//! workspace actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]/[`Rng::gen`], and
//! [`distributions::WeightedIndex`].
//!
//! The generator is an xorshift64* stream seeded through SplitMix64 — not
//! the ChaCha12 stream of the real `StdRng`, so absolute value sequences
//! differ from upstream rand. Nothing in this workspace depends on the
//! exact sequence, only on determinism for a fixed seed, which this crate
//! guarantees.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A value drawn uniformly from `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Standard {
    /// Maps one generator word onto the type's full domain.
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_word(word: u64) -> $t {
                word as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_word(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// A uniform draw from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_in<R: RngCore>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(low: $t, high: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (high as i128 - low as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                (low as i128 + (u128::from(rng.next_u64()) % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
///
/// Blanket impls over [`SampleUniform`] (mirroring real rand) keep type
/// inference working for untyped literals like `gen_range(0..100)`.
pub trait SampleRange<T> {
    /// Draws one value of the range uniformly.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); state is never zero by construction.
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 step decorrelates adjacent seeds and avoids the
            // all-zero state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }
}

/// Distributions over a generator.
pub mod distributions {
    use std::borrow::Borrow;

    use super::RngCore;

    /// Something that can be sampled from a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<u64>,
    }

    impl WeightedIndex {
        /// Builds the distribution from integer weights.
        ///
        /// # Errors
        ///
        /// Fails when `weights` is empty or sums to zero.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<u32>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0u64;
            for w in weights {
                total += u64::from(*w.borrow());
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total == 0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty by construction");
            let draw = rng.next_u64() % total;
            self.cumulative.partition_point(|&c| c <= draw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let s = rng.gen_range(0usize..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = WeightedIndex::new([1u32, 0, 9]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never drawn");
        assert!(counts[2] > counts[0] * 5, "9:1 skew respected: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_degenerate_inputs() {
        assert!(WeightedIndex::new(Vec::<u32>::new()).is_err());
        assert!(WeightedIndex::new([0u32, 0]).is_err());
    }
}
