//! Static basic-block discovery.
//!
//! ATOM exposed programs as procedures → basic blocks → instructions; this
//! module recovers the block structure of an assembled [`Program`] so the
//! instrumentation layer can offer the same hierarchy and so the
//! basic-block quantile experiment (Table IV.1) has blocks to count.

use std::ops::Range;

use vp_asm::Program;
use vp_isa::Instruction;

/// A static basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block id (index into [`Cfg::blocks`]).
    pub id: usize,
    /// Instruction-index range `[start, end)`.
    pub range: Range<u32>,
}

impl BasicBlock {
    /// Leader (first instruction index) of the block.
    pub fn leader(&self) -> u32 {
        self.range.start
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Whether the block is empty (never true for discovered blocks).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// The control-flow structure of a program: its basic blocks and a map
/// from instruction index to owning block.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Discovers basic blocks.
    ///
    /// Leaders are: instruction 0, every procedure entry, every jump/branch
    /// target, and every instruction following a control transfer. Indirect
    /// jump targets are approximated by any code address appearing in the
    /// data segment's `.quad` fixups being a procedure or label — in
    /// practice our workloads only jump indirectly to labels, all of which
    /// appear in the symbol table, so those are included too.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        if n == 0 {
            return Cfg { blocks: Vec::new(), block_of: Vec::new() };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        leader[program.entry() as usize] = true;
        for proc in program.procedures() {
            if (proc.range.start as usize) < n {
                leader[proc.range.start as usize] = true;
            }
        }
        // Every text symbol is a potential indirect-jump target.
        for sym in program.symbols().values() {
            if sym.section == vp_asm::Section::Text {
                let idx = (sym.address / 4) as usize;
                if idx < n {
                    leader[idx] = true;
                }
            }
        }
        for (i, instr) in program.code().iter().enumerate() {
            match *instr {
                Instruction::Branch { disp, .. } => {
                    let target = i as i64 + 1 + i64::from(disp);
                    if (0..n as i64).contains(&target) {
                        leader[target as usize] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Instruction::Jump { target } | Instruction::Jal { target } => {
                    if (target as usize) < n {
                        leader[target as usize] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Instruction::Jr { .. } | Instruction::Jalr { .. } if i + 1 < n => {
                    leader[i + 1] = true;
                }
                Instruction::Sys { call: vp_isa::Syscall::Exit } if i + 1 < n => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        #[allow(clippy::needless_range_loop)]
        for i in 1..=n {
            if i == n || leader[i] {
                let id = blocks.len();
                blocks.push(BasicBlock { id, range: start as u32..i as u32 });
                for slot in block_of.iter_mut().take(i).skip(start) {
                    *slot = id;
                }
                start = i;
            }
        }
        Cfg { blocks, block_of }
    }

    /// All basic blocks in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `index`.
    pub fn block_of(&self, index: u32) -> Option<&BasicBlock> {
        self.block_of.get(index as usize).map(|&id| &self.blocks[id])
    }

    /// Per-block dynamic execution counts, derived from per-instruction
    /// counts by taking each block's leader count.
    pub fn block_counts(&self, per_instr: &[u64]) -> Vec<u64> {
        self.blocks
            .iter()
            .map(|b| per_instr.get(b.leader() as usize).copied().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        vp_asm::assemble(src).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = program(".text\nmain: li r1, 1\n add r2, r1, r1\n sys exit\n");
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].range, 0..3);
        assert_eq!(cfg.blocks()[0].len(), 3);
        assert!(!cfg.blocks()[0].is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let p = program(
            r#"
            .text
            main:
                li r1, 3
            loop:
                addi r1, r1, -1
                bnz  r1, loop
                sys exit
            "#,
        );
        let cfg = Cfg::build(&p);
        // Blocks: [li], [addi, bnz], [sys exit]
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.block_of(0).unwrap().id, 0);
        assert_eq!(cfg.block_of(1).unwrap().range, 1..3);
        assert_eq!(cfg.block_of(2).unwrap().range, 1..3);
        assert_eq!(cfg.block_of(3).unwrap().range, 3..4);
        assert!(cfg.block_of(4).is_none());
    }

    #[test]
    fn call_boundaries() {
        let p = program(
            r#"
            .text
            main:
                call f
                sys exit
            .proc f
            f:
                ret
            .endp
            "#,
        );
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 3);
    }

    #[test]
    fn block_counts_use_leader() {
        let p = program(
            r#"
            .text
            main:
                li r1, 2
            loop:
                addi r1, r1, -1
                bnz  r1, loop
                sys exit
            "#,
        );
        let cfg = Cfg::build(&p);
        // per_instr: li 1x, addi 2x, bnz 2x, exit 1x
        let counts = cfg.block_counts(&[1, 2, 2, 1]);
        assert_eq!(counts, vec![1, 2, 1]);
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        let cfg = Cfg::build(&p);
        assert!(cfg.blocks().is_empty());
        assert!(cfg.block_of(0).is_none());
    }
}
