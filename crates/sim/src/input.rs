//! Program inputs: the *data sets* of the paper's methodology.
//!
//! The paper ran each SPEC benchmark with two inputs, *test* and *train*
//! (Table III.1), to study how well value profiles transfer across inputs
//! (Table V.5). An [`InputSet`] is our equivalent: a named, finite stream
//! of 64-bit values a program consumes through the `getinput` syscall.

use std::fmt;

/// A named input data set: the sequence of values `sys getinput` returns.
///
/// ```
/// use vp_sim::InputSet;
///
/// let input = InputSet::named("test", vec![1, 2, 3]);
/// assert_eq!(input.name(), "test");
/// assert_eq!(input.values(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSet {
    name: String,
    values: Vec<u64>,
}

impl InputSet {
    /// An empty, anonymous input.
    pub fn empty() -> InputSet {
        InputSet { name: String::new(), values: Vec::new() }
    }

    /// Creates a named input set from a value sequence.
    pub fn named(name: impl Into<String>, values: Vec<u64>) -> InputSet {
        InputSet { name: name.into(), values }
    }

    /// The data-set name (`"test"`, `"train"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value stream.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Default for InputSet {
    fn default() -> Self {
        InputSet::empty()
    }
}

impl fmt::Display for InputSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} values)",
            if self.name.is_empty() { "<anon>" } else { &self.name },
            self.values.len()
        )
    }
}

impl FromIterator<u64> for InputSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        InputSet { name: String::new(), values: iter.into_iter().collect() }
    }
}

/// Cursor over an [`InputSet`] during one run. Returns 0 once exhausted,
/// which programs use as an end-of-input sentinel alongside an explicit
/// length prefix.
#[derive(Debug, Clone)]
pub struct InputCursor {
    values: Vec<u64>,
    pos: usize,
}

impl InputCursor {
    /// Starts a cursor at the beginning of `input`.
    pub fn new(input: &InputSet) -> InputCursor {
        InputCursor { values: input.values.clone(), pos: 0 }
    }

    /// Next input value; 0 when exhausted.
    pub fn next_value(&mut self) -> u64 {
        let v = self.values.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v
    }

    /// How many values have been consumed (including reads past the end).
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_exhaustion() {
        let mut c = InputCursor::new(&InputSet::named("t", vec![7, 8]));
        assert_eq!(c.next_value(), 7);
        assert_eq!(c.next_value(), 8);
        assert_eq!(c.next_value(), 0);
        assert_eq!(c.next_value(), 0);
        assert_eq!(c.consumed(), 4);
    }

    #[test]
    fn collect_and_display() {
        let s: InputSet = (1u64..4).collect();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.to_string().contains("3 values"));
        assert!(InputSet::default().is_empty());
    }
}
