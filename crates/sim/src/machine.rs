//! The execution engine: register file, fetch/decode/execute loop and the
//! per-instruction event stream the instrumentation layer consumes.

use std::fmt;

use vp_asm::{Program, DATA_BASE};
use vp_isa::{AluOp, FpOp, Instruction, MemWidth, Reg, Syscall, Value, INSTR_BYTES};

use crate::input::{InputCursor, InputSet};
use crate::memory::{MemFault, Memory};
use crate::stats::ExecStats;

/// Configuration for a [`Machine`].
///
/// Build one with [`MachineConfig::new`] and the chainable setters:
///
/// ```
/// use vp_sim::{InputSet, MachineConfig};
///
/// let cfg = MachineConfig::new()
///     .memory_size(1 << 22)
///     .input(InputSet::named("train", vec![1, 2, 3]));
/// assert_eq!(cfg.memory_bytes(), 1 << 22);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    memory_size: usize,
    input: InputSet,
}

impl MachineConfig {
    /// Default configuration: 8 MiB of memory, empty input.
    pub fn new() -> MachineConfig {
        MachineConfig { memory_size: 8 << 20, input: InputSet::empty() }
    }

    /// Sets the memory size in bytes (must exceed the data segment end).
    pub fn memory_size(mut self, bytes: usize) -> MachineConfig {
        self.memory_size = bytes;
        self
    }

    /// Sets the input data set consumed by `sys getinput`.
    pub fn input(mut self, input: InputSet) -> MachineConfig {
        self.input = input;
        self
    }

    /// Configured memory size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_size
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::new()
    }
}

/// A memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub address: u64,
    /// Value read (zero/sign-extended) or stored.
    pub value: Value,
    /// True for stores.
    pub store: bool,
    /// Access width.
    pub width: MemWidth,
}

/// Everything one executed instruction did — the event stream on which all
/// profiling is built. This is the emulator-level analogue of the data ATOM
/// hands to analysis routines instrumented "after" an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrEvent {
    /// Instruction index that executed.
    pub index: u32,
    /// The instruction itself.
    pub instr: Instruction,
    /// Register written and the value it received, if any.
    pub dest: Option<(Reg, Value)>,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
    /// Index of the next instruction to execute.
    pub next_index: u32,
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Exit code passed to `sys exit`.
    pub exit_code: i64,
    /// Dynamic instruction count of the run.
    pub instructions: u64,
    /// Bytes written through `putint`/`putchar`.
    pub output: Vec<u8>,
}

impl RunOutcome {
    /// The program's output as UTF-8 text (lossy).
    pub fn output_text(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// Errors the emulator can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A load or store faulted.
    Mem(MemFault),
    /// The program counter left the text section.
    PcOutOfRange {
        /// The faulting instruction index.
        index: u32,
    },
    /// An indirect jump targeted a misaligned or out-of-range byte address.
    BadJumpTarget {
        /// The faulting byte address.
        address: u64,
    },
    /// The instruction budget was exhausted before `sys exit`.
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The data segment does not fit in configured memory.
    ImageTooLarge {
        /// Bytes needed to load the program.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(fault) => fault.fmt(f),
            SimError::PcOutOfRange { index } => write!(f, "pc out of range: {index}"),
            SimError::BadJumpTarget { address } => write!(f, "bad jump target {address:#x}"),
            SimError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            SimError::ImageTooLarge { needed, available } => {
                write!(f, "program image needs {needed} bytes, memory has {available}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<MemFault> for SimError {
    fn from(fault: MemFault) -> SimError {
        SimError::Mem(fault)
    }
}

/// The VP64 virtual machine.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_sim::{Machine, MachineConfig};
///
/// let program = vp_asm::assemble(
///     ".text\nmain: li r4, 3\n addi r4, r4, 4\n sys exit\n",
/// )?;
/// let mut machine = Machine::new(program, MachineConfig::new())?;
/// let outcome = machine.run(1_000)?;
/// assert_eq!(outcome.exit_code, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    regs: [Value; Reg::COUNT],
    pc: u32,
    memory: Memory,
    input: InputCursor,
    output: Vec<u8>,
    exited: Option<i64>,
    stats: ExecStats,
}

impl Machine {
    /// Loads `program` into a fresh machine.
    ///
    /// The data image is copied to [`DATA_BASE`]; the stack pointer starts
    /// at the top of memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ImageTooLarge`] if memory cannot hold the data
    /// segment.
    pub fn new(program: Program, config: MachineConfig) -> Result<Machine, SimError> {
        let mut memory = Memory::new(config.memory_size);
        let needed = DATA_BASE + program.data().len() as u64;
        if needed > memory.size() {
            return Err(SimError::ImageTooLarge { needed, available: memory.size() });
        }
        memory.write_bytes(DATA_BASE, program.data())?;
        let mut regs = [0; Reg::COUNT];
        regs[Reg::SP.index()] = memory.size() & !0xf;
        let pc = program.entry();
        let stats = ExecStats::new(program.len());
        Ok(Machine {
            program,
            regs,
            pc,
            memory,
            input: InputCursor::new(&InputSet::empty()),
            output: Vec::new(),
            exited: None,
            stats,
        }
        .with_input_from(config.input))
    }

    fn with_input_from(mut self, input: InputSet) -> Machine {
        self.input = InputCursor::new(&input);
        self
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }

    /// Sets a register (writes to `r0` are ignored, as in hardware).
    pub fn set_reg(&mut self, r: Reg, value: Value) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable data memory (for test setup and program transformers).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Exit code, once the program has executed `sys exit`.
    pub fn exit_code(&self) -> Option<i64> {
        self.exited
    }

    /// Executes a single instruction and reports what it did.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, control-flow violations and PC escapes.
    pub fn step(&mut self) -> Result<InstrEvent, SimError> {
        let index = self.pc;
        let instr =
            *self.program.code().get(index as usize).ok_or(SimError::PcOutOfRange { index })?;
        let mut dest = None;
        let mut mem = None;
        let mut taken = None;
        let mut next = index + 1;

        match instr {
            Instruction::Nop => {}
            Instruction::Alu { op, rd, rs, rt } => {
                let v = alu_eval(op, self.reg(rs), self.reg(rt));
                self.set_reg(rd, v);
                dest = Some((rd, self.reg(rd)));
            }
            Instruction::AluImm { op, rd, rs, imm } => {
                // Logic immediates are zero-extended (like MIPS andi/ori),
                // which the assembler's `li`/`la` expansions rely on; all
                // other immediates are sign-extended.
                let b = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Nor => imm as u16 as u64,
                    _ => imm as i64 as u64,
                };
                let v = alu_eval(op, self.reg(rs), b);
                self.set_reg(rd, v);
                dest = Some((rd, self.reg(rd)));
            }
            Instruction::Lui { rd, imm } => {
                self.set_reg(rd, u64::from(imm) << 16);
                dest = Some((rd, self.reg(rd)));
            }
            Instruction::Fp { op, rd, rs, rt } => {
                let v = fp_eval(op, self.reg(rs), self.reg(rt));
                self.set_reg(rd, v);
                dest = Some((rd, self.reg(rd)));
            }
            Instruction::Load { rd, base, offset, width } => {
                let address = self.reg(base).wrapping_add(offset as i64 as u64);
                let value = self.memory.read(address, width)?;
                self.set_reg(rd, value);
                dest = Some((rd, self.reg(rd)));
                mem = Some(MemAccess { address, value, store: false, width });
            }
            Instruction::LoadSigned { rd, base, offset, width } => {
                let address = self.reg(base).wrapping_add(offset as i64 as u64);
                let value = self.memory.read_signed(address, width)?;
                self.set_reg(rd, value);
                dest = Some((rd, self.reg(rd)));
                mem = Some(MemAccess { address, value, store: false, width });
            }
            Instruction::Store { rs, base, offset, width } => {
                let address = self.reg(base).wrapping_add(offset as i64 as u64);
                let value = self.reg(rs);
                self.memory.write(address, width, value)?;
                mem = Some(MemAccess { address, value, store: true, width });
            }
            Instruction::Branch { cond, rs, rt, disp } => {
                let t = cond.eval(self.reg(rs), self.reg(rt));
                taken = Some(t);
                if t {
                    next = index.wrapping_add(1).wrapping_add(disp as i32 as u32);
                }
            }
            Instruction::Jump { target } => next = target,
            Instruction::Jal { target } => {
                self.set_reg(Reg::RA, u64::from(index + 1) * INSTR_BYTES);
                next = target;
            }
            Instruction::Jr { rs } => next = self.indirect_target(self.reg(rs))?,
            Instruction::Jalr { rd, rs } => {
                let target = self.indirect_target(self.reg(rs))?;
                self.set_reg(rd, u64::from(index + 1) * INSTR_BYTES);
                next = target;
            }
            Instruction::Sys { call } => match call {
                Syscall::Exit => {
                    self.exited = Some(self.reg(Reg::A0) as i64);
                    next = index; // park the pc
                }
                Syscall::PutInt => {
                    let text = format!("{}", self.reg(Reg::A0) as i64);
                    self.output.extend_from_slice(text.as_bytes());
                    self.output.push(b'\n');
                }
                Syscall::PutChar => self.output.push(self.reg(Reg::A0) as u8),
                Syscall::GetInput => {
                    let v = self.input.next_value();
                    self.set_reg(Reg::V0, v);
                    dest = Some((Reg::V0, v));
                }
            },
        }

        self.stats.record(index, instr.class());
        self.pc = next;
        Ok(InstrEvent { index, instr, dest, mem, taken, next_index: next })
    }

    fn indirect_target(&self, address: u64) -> Result<u32, SimError> {
        if !address.is_multiple_of(INSTR_BYTES)
            || address / INSTR_BYTES >= self.program.len() as u64
        {
            return Err(SimError::BadJumpTarget { address });
        }
        Ok((address / INSTR_BYTES) as u32)
    }

    /// Runs until `sys exit` or until `budget` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetExhausted`] if the program does not exit in
    /// time, plus any fault [`step`](Machine::step) can produce.
    pub fn run(&mut self, budget: u64) -> Result<RunOutcome, SimError> {
        self.run_with(budget, |_, _| {})
    }

    /// Runs like [`run`](Machine::run), invoking `hook` after every
    /// instruction with the machine state (post-execution) and the
    /// instruction's event. This is the attachment point the
    /// instrumentation layer builds on.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Machine::run).
    pub fn run_with<H>(&mut self, budget: u64, mut hook: H) -> Result<RunOutcome, SimError>
    where
        H: FnMut(&Machine, &InstrEvent),
    {
        let mut executed = 0u64;
        while self.exited.is_none() {
            if executed >= budget {
                return Err(SimError::BudgetExhausted { budget });
            }
            let event = self.step()?;
            executed += 1;
            hook(self, &event);
        }
        Ok(RunOutcome {
            exit_code: self.exited.unwrap_or(0),
            instructions: executed,
            output: self.output.clone(),
        })
    }
}

/// Evaluates an integer ALU operation exactly as the emulator does.
/// Exposed so program transformers (the specializer's constant folder) can
/// fold instructions with bit-identical semantics.
pub fn alu_eval(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Sll => a << (b & 63),
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Seq => u64::from(a == b),
        AluOp::Sne => u64::from(a != b),
    }
}

/// Evaluates a floating-point operation exactly as the emulator does.
/// See [`alu_eval`].
pub fn fp_eval(op: FpOp, a: u64, b: u64) -> u64 {
    let x = f64::from_bits(a);
    let y = f64::from_bits(b);
    match op {
        FpOp::FAdd => (x + y).to_bits(),
        FpOp::FSub => (x - y).to_bits(),
        FpOp::FMul => (x * y).to_bits(),
        FpOp::FDiv => (x / y).to_bits(),
        FpOp::FCmpLt => u64::from(x < y),
        FpOp::CvtIF => (a as i64 as f64).to_bits(),
        FpOp::CvtFI => {
            if x.is_nan() {
                0
            } else {
                // Clamp to the representable range, truncating toward zero.
                x.clamp(i64::MIN as f64, i64::MAX as f64).trunc() as i64 as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> RunOutcome {
        let program = vp_asm::assemble(src).expect("assemble");
        let mut m = Machine::new(program, MachineConfig::new()).expect("machine");
        m.run(1_000_000).expect("run")
    }

    fn run_src_with_input(src: &str, input: Vec<u64>) -> RunOutcome {
        let program = vp_asm::assemble(src).expect("assemble");
        let cfg = MachineConfig::new().input(InputSet::named("t", input));
        let mut m = Machine::new(program, cfg).expect("machine");
        m.run(1_000_000).expect("run")
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=10 = 55
        let out = run_src(
            r#"
            .text
            main:
                li r1, 0       # sum
                li r2, 10      # i
            loop:
                add r1, r1, r2
                addi r2, r2, -1
                bnz r2, loop
                mov a0, r1
                sys exit
            "#,
        );
        assert_eq!(out.exit_code, 55);
    }

    #[test]
    fn memory_and_data_segment() {
        let out = run_src(
            r#"
            .data
            nums: .quad 10, 20, 30
            .text
            main:
                la  r1, nums
                ldd r2, 0(r1)
                ldd r3, 8(r1)
                ldd r4, 16(r1)
                add r5, r2, r3
                add r5, r5, r4
                std r5, 0(r1)
                ldd a0, 0(r1)
                sys exit
            "#,
        );
        assert_eq!(out.exit_code, 60);
    }

    #[test]
    fn procedure_call_and_stack() {
        // double(x) = x + x, called twice
        let out = run_src(
            r#"
            .text
            main:
                li  a0, 5
                call double
                mov a0, v0
                call double
                mov a0, v0
                sys exit
            .proc double
            double:
                add v0, a0, a0
                ret
            .endp
            "#,
        );
        assert_eq!(out.exit_code, 20);
    }

    #[test]
    fn recursion_factorial() {
        let out = run_src(
            r#"
            .text
            main:
                li a0, 5
                call fact
                mov a0, v0
                sys exit
            .proc fact
            fact:
                addi sp, sp, -16
                std  ra, 0(sp)
                std  a0, 8(sp)
                li   v0, 1
                bz   a0, base
                addi a0, a0, -1
                call fact
                ldd  a0, 8(sp)
                mul  v0, v0, a0
            base:
                ldd  ra, 0(sp)
                addi sp, sp, 16
                ret
            .endp
            "#,
        );
        assert_eq!(out.exit_code, 120);
    }

    #[test]
    fn input_and_output() {
        let out = run_src_with_input(
            r#"
            .text
            main:
                sys getinput
                mov a0, v0
                sys putint
                sys getinput
                mov a0, v0
                sys putchar
                li a0, 0
                sys exit
            "#,
            vec![42, 65],
        );
        assert_eq!(out.output_text(), "42\nA");
    }

    #[test]
    fn indirect_jump_table() {
        let out = run_src(
            r#"
            .data
            tab: .quad h0, h1
            .text
            main:
                li  r1, 1          # select handler 1
                la  r2, tab
                slli r3, r1, 3
                add r2, r2, r3
                ldd r4, 0(r2)
                jr  r4
            h0:
                li a0, 10
                sys exit
            h1:
                li a0, 11
                sys exit
            "#,
        );
        assert_eq!(out.exit_code, 11);
    }

    #[test]
    fn fp_operations() {
        let out = run_src(
            r#"
            .text
            main:
                li r1, 3
                li r2, 4
                cvtif r3, r1
                cvtif r4, r2
                fmul  r5, r3, r4
                cvtfi a0, r5
                sys exit
            "#,
        );
        assert_eq!(out.exit_code, 12);
    }

    #[test]
    fn division_semantics() {
        assert_eq!(alu_eval(AluOp::Div, 7, 0), 0);
        assert_eq!(alu_eval(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu_eval(AluOp::Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(alu_eval(AluOp::Div, i64::MIN as u64, u64::MAX), i64::MIN as u64);
        assert_eq!(alu_eval(AluOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn fp_cvt_edge_cases() {
        assert_eq!(fp_eval(FpOp::CvtFI, f64::NAN.to_bits(), 0), 0);
        assert_eq!(fp_eval(FpOp::CvtFI, f64::INFINITY.to_bits(), 0), i64::MAX as u64);
        assert_eq!(fp_eval(FpOp::CvtFI, (-2.9f64).to_bits(), 0), (-2i64) as u64);
    }

    #[test]
    fn budget_exhaustion() {
        let program = vp_asm::assemble(".text\nmain: j main\n").unwrap();
        let mut m = Machine::new(program, MachineConfig::new()).unwrap();
        assert_eq!(m.run(100), Err(SimError::BudgetExhausted { budget: 100 }));
    }

    #[test]
    fn zero_register_is_immutable() {
        let out = run_src(
            r#"
            .text
            main:
                addi r0, r0, 7
                mov  a0, r0
                sys exit
            "#,
        );
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn bad_indirect_target() {
        let program = vp_asm::assemble(".text\nmain: li r1, 3\n jr r1\n").unwrap();
        let mut m = Machine::new(program, MachineConfig::new()).unwrap();
        assert!(matches!(m.run(100), Err(SimError::BadJumpTarget { address: 3 })));
    }

    #[test]
    fn memory_fault_surfaces() {
        let program = vp_asm::assemble(".text\nmain: li r1, -8\n ldd r2, 0(r1)\n").unwrap();
        let mut m = Machine::new(program, MachineConfig::new()).unwrap();
        assert!(matches!(m.run(100), Err(SimError::Mem(_))));
    }

    #[test]
    fn run_with_hook_sees_every_event() {
        let program =
            vp_asm::assemble(".text\nmain: li r1, 2\n add r2, r1, r1\n sys exit\n").unwrap();
        let mut m = Machine::new(program, MachineConfig::new()).unwrap();
        let mut dests = Vec::new();
        m.run_with(100, |_, ev| {
            if let Some((r, v)) = ev.dest {
                dests.push((r, v));
            }
        })
        .unwrap();
        assert_eq!(dests, vec![(Reg::R1, 2), (Reg::R2, 4)]);
    }

    #[test]
    fn stats_accumulate() {
        let program =
            vp_asm::assemble(".text\nmain: li r1, 2\n add r2, r1, r1\n sys exit\n").unwrap();
        let mut m = Machine::new(program, MachineConfig::new()).unwrap();
        let out = m.run(100).unwrap();
        assert_eq!(out.instructions, 3);
        assert_eq!(m.stats().total(), 3);
    }
}
