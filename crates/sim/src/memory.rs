//! Flat, bounds-checked, little-endian memory.

use std::fmt;

use vp_isa::MemWidth;

/// Error raised by an out-of-range or misaligned memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub address: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Whether the access was a store.
    pub store: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {} of {} bytes at {:#x}",
            if self.store { "store" } else { "load" },
            self.size,
            self.address
        )
    }
}

impl std::error::Error for MemFault {}

/// Byte-addressable little-endian memory of fixed size.
///
/// ```
/// use vp_sim::Memory;
/// use vp_isa::MemWidth;
///
/// let mut mem = Memory::new(1024);
/// mem.write(16, MemWidth::D, 0xdead_beef_cafe_f00d).unwrap();
/// assert_eq!(mem.read(16, MemWidth::D).unwrap(), 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read(16, MemWidth::B).unwrap(), 0x0d);
/// assert!(mem.read(1024, MemWidth::B).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Memory {
        Memory { bytes: vec![0; size] }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, address: u64, width: MemWidth, store: bool) -> Result<usize, MemFault> {
        let size = width.bytes();
        let end = address.checked_add(size).filter(|&e| e <= self.size());
        match end {
            Some(_) => Ok(address as usize),
            None => Err(MemFault { address, size, store }),
        }
    }

    /// Reads `width` bytes at `address`, zero-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the access runs past the end of memory.
    pub fn read(&self, address: u64, width: MemWidth) -> Result<u64, MemFault> {
        let at = self.check(address, width, false)?;
        let n = width.bytes() as usize;
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&self.bytes[at..at + n]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads `width` bytes at `address`, sign-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the access runs past the end of memory.
    pub fn read_signed(&self, address: u64, width: MemWidth) -> Result<u64, MemFault> {
        let raw = self.read(address, width)?;
        let bits = width.bytes() * 8;
        if bits == 64 {
            return Ok(raw);
        }
        let shift = 64 - bits;
        Ok((((raw << shift) as i64) >> shift) as u64)
    }

    /// Writes the low `width` bytes of `value` at `address`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the access runs past the end of memory.
    pub fn write(&mut self, address: u64, width: MemWidth, value: u64) -> Result<(), MemFault> {
        let at = self.check(address, width, true)?;
        let n = width.bytes() as usize;
        self.bytes[at..at + n].copy_from_slice(&value.to_le_bytes()[..n]);
        Ok(())
    }

    /// Copies a byte slice into memory at `address` (used by the loader).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the image does not fit.
    pub fn write_bytes(&mut self, address: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let end = address.checked_add(bytes.len() as u64).filter(|&e| e <= self.size());
        match end {
            Some(_) => {
                let at = address as usize;
                self.bytes[at..at + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
            None => Err(MemFault { address, size: bytes.len() as u64, store: true }),
        }
    }

    /// Reads a byte slice out of memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the range is out of bounds.
    pub fn read_bytes(&self, address: u64, len: usize) -> Result<&[u8], MemFault> {
        let end = address.checked_add(len as u64).filter(|&e| e <= self.size());
        match end {
            Some(_) => Ok(&self.bytes[address as usize..address as usize + len]),
            None => Err(MemFault { address, size: len as u64, store: false }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_round_trip() {
        let mut mem = Memory::new(64);
        for (w, v) in [
            (MemWidth::B, 0xab),
            (MemWidth::H, 0xabcd),
            (MemWidth::W, 0xabcd_ef01),
            (MemWidth::D, 0xabcd_ef01_2345_6789),
        ] {
            mem.write(8, w, v).unwrap();
            assert_eq!(mem.read(8, w).unwrap(), v);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new(16);
        mem.write(0, MemWidth::W, 0x0403_0201).unwrap();
        assert_eq!(mem.read(0, MemWidth::B).unwrap(), 1);
        assert_eq!(mem.read(1, MemWidth::B).unwrap(), 2);
        assert_eq!(mem.read(2, MemWidth::H).unwrap(), 0x0403);
    }

    #[test]
    fn sign_extension() {
        let mut mem = Memory::new(16);
        mem.write(0, MemWidth::B, 0xff).unwrap();
        assert_eq!(mem.read(0, MemWidth::B).unwrap(), 0xff);
        assert_eq!(mem.read_signed(0, MemWidth::B).unwrap(), u64::MAX);
        mem.write(0, MemWidth::W, 0x8000_0000).unwrap();
        assert_eq!(mem.read_signed(0, MemWidth::W).unwrap(), 0xffff_ffff_8000_0000);
        mem.write(0, MemWidth::D, 0x8000_0000).unwrap();
        assert_eq!(mem.read_signed(0, MemWidth::D).unwrap(), 0x8000_0000);
    }

    #[test]
    fn faults_at_bounds() {
        let mut mem = Memory::new(8);
        assert!(mem.read(0, MemWidth::D).is_ok());
        assert!(mem.read(1, MemWidth::D).is_err());
        assert!(mem.write(8, MemWidth::B, 0).is_err());
        assert!(mem.read(u64::MAX, MemWidth::D).is_err()); // overflow guard
        let fault = mem.write(100, MemWidth::H, 0).unwrap_err();
        assert!(fault.store);
        assert_eq!(fault.address, 100);
        assert_eq!(fault.size, 2);
        assert!(fault.to_string().contains("store"));
    }

    #[test]
    fn byte_slices() {
        let mut mem = Memory::new(16);
        mem.write_bytes(4, b"abcd").unwrap();
        assert_eq!(mem.read_bytes(4, 4).unwrap(), b"abcd");
        assert!(mem.write_bytes(14, b"xyz").is_err());
        assert!(mem.read_bytes(15, 2).is_err());
    }
}
