//! # vp-sim — the VP64 emulator
//!
//! Executes [`vp_asm::Program`]s and streams per-instruction
//! [`InstrEvent`]s to observers. This crate is the hardware substrate of
//! the Value Profiling reproduction: where the paper ran Alpha binaries
//! under ATOM, we run VP64 programs under this emulator, whose
//! [`Machine::run_with`] hook delivers exactly the information ATOM's
//! instrumentation points delivered (destination values, effective
//! addresses, load/store values, branch outcomes).
//!
//! The crate also provides:
//!
//! * [`Cfg`] — static basic-block discovery (ATOM's program hierarchy),
//! * [`ExecStats`] / [`stats::quantile_table`] — dynamic counts feeding the
//!   paper's basic-block quantile table (Table IV.1),
//! * [`InputSet`] — the test/train *data sets* of the paper's methodology.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use vp_sim::{Machine, MachineConfig};
//!
//! let program = vp_asm::assemble(
//!     r#"
//!     .text
//!     main:
//!         li   r1, 4
//!         mul  r1, r1, r1
//!         mov  a0, r1
//!         sys  exit
//!     "#,
//! )?;
//! let mut machine = Machine::new(program, MachineConfig::new())?;
//! let mut loads = 0u64;
//! let outcome = machine.run_with(10_000, |_, event| {
//!     if event.instr.is_load() {
//!         loads += 1;
//!     }
//! })?;
//! assert_eq!(outcome.exit_code, 16);
//! assert_eq!(loads, 0);
//! # Ok(())
//! # }
//! ```

pub mod cfg;
pub mod input;
pub mod machine;
pub mod memory;
pub mod stats;

pub use cfg::{BasicBlock, Cfg};
pub use input::{InputCursor, InputSet};
pub use machine::{
    alu_eval, fp_eval, InstrEvent, Machine, MachineConfig, MemAccess, RunOutcome, SimError,
};
pub use memory::{MemFault, Memory};
pub use stats::{ExecStats, QuantileRow};
