//! Execution statistics: dynamic counts per instruction, per opcode class,
//! and the basic-block quantile summary of the paper's Table IV.1.

use std::collections::BTreeMap;

use vp_isa::OpClass;

/// Dynamic execution counts collected by a [`Machine`](crate::Machine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    per_instr: Vec<u64>,
    per_class: BTreeMap<OpClass, u64>,
    total: u64,
}

impl ExecStats {
    /// Creates zeroed statistics for a program with `code_len` instructions.
    pub fn new(code_len: usize) -> ExecStats {
        ExecStats { per_instr: vec![0; code_len], per_class: BTreeMap::new(), total: 0 }
    }

    /// Records one execution of the instruction at `index`.
    pub fn record(&mut self, index: u32, class: OpClass) {
        self.per_instr[index as usize] += 1;
        *self.per_class.entry(class).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Execution count of the instruction at `index`.
    pub fn count(&self, index: u32) -> u64 {
        self.per_instr.get(index as usize).copied().unwrap_or(0)
    }

    /// Per-instruction execution counts, indexed by instruction index.
    pub fn per_instr(&self) -> &[u64] {
        &self.per_instr
    }

    /// Dynamic count per opcode class.
    pub fn per_class(&self) -> &BTreeMap<OpClass, u64> {
        &self.per_class
    }

    /// Dynamic count for one class (0 if never executed).
    pub fn class_count(&self, class: OpClass) -> u64 {
        self.per_class.get(&class).copied().unwrap_or(0)
    }
}

/// One row of the basic-block quantile table (paper Table IV.1): the
/// smallest fraction of *static* blocks that covers `coverage` of the
/// dynamic execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileRow {
    /// Target dynamic-execution coverage in `\[0, 1\]`.
    pub coverage: f64,
    /// Number of hottest blocks needed.
    pub blocks: usize,
    /// Those blocks as a fraction of all executed static blocks.
    pub block_fraction: f64,
}

/// Computes the basic-block quantile table from per-block dynamic counts.
///
/// `block_counts` holds one dynamic execution count per static basic block.
/// Returns one [`QuantileRow`] per requested coverage level. Blocks that
/// never executed are excluded from the denominator, matching the paper's
/// convention of reporting over *executed* blocks.
///
/// ```
/// let rows = vp_sim::stats::quantile_table(&[100, 50, 25, 25, 0], &[0.5, 1.0]);
/// assert_eq!(rows[0].blocks, 1);   // the hottest block covers 100/200
/// assert_eq!(rows[1].blocks, 4);
/// ```
pub fn quantile_table(block_counts: &[u64], coverages: &[f64]) -> Vec<QuantileRow> {
    let mut counts: Vec<u64> = block_counts.iter().copied().filter(|&c| c > 0).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let executed = counts.len();
    coverages
        .iter()
        .map(|&coverage| {
            if total == 0 {
                return QuantileRow { coverage, blocks: 0, block_fraction: 0.0 };
            }
            let threshold = coverage * total as f64;
            let mut acc = 0u64;
            let mut blocks = 0usize;
            for &c in &counts {
                if acc as f64 >= threshold {
                    break;
                }
                acc += c;
                blocks += 1;
            }
            QuantileRow { coverage, blocks, block_fraction: blocks as f64 / executed as f64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = ExecStats::new(3);
        s.record(0, OpClass::IntAlu);
        s.record(0, OpClass::IntAlu);
        s.record(2, OpClass::Load);
        assert_eq!(s.total(), 3);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.count(99), 0);
        assert_eq!(s.class_count(OpClass::IntAlu), 2);
        assert_eq!(s.class_count(OpClass::Load), 1);
        assert_eq!(s.class_count(OpClass::FpAlu), 0);
        assert_eq!(s.per_instr(), &[2, 0, 1]);
    }

    #[test]
    fn quantiles_simple() {
        // 4 executed blocks: 100, 50, 25, 25 (total 200); one dead block.
        let rows = quantile_table(&[100, 50, 25, 25, 0], &[0.5, 0.75, 0.875, 1.0]);
        assert_eq!(rows[0].blocks, 1);
        assert_eq!(rows[1].blocks, 2);
        assert_eq!(rows[2].blocks, 3);
        assert_eq!(rows[3].blocks, 4);
        assert!((rows[3].block_fraction - 1.0).abs() < 1e-12);
        assert!((rows[0].block_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quantiles_empty() {
        let rows = quantile_table(&[], &[0.9]);
        assert_eq!(rows[0].blocks, 0);
        let rows = quantile_table(&[0, 0], &[0.9]);
        assert_eq!(rows[0].blocks, 0);
    }

    #[test]
    fn quantiles_skewed() {
        // One block dominating: 90% coverage needs just that block.
        let rows = quantile_table(&[900, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10], &[0.9]);
        assert_eq!(rows[0].blocks, 1);
    }
}
