//! Property tests: `alu_eval`/`fp_eval` against an independently written
//! reference semantics (128-bit arithmetic where it clarifies intent), for
//! arbitrary operand pairs.

use proptest::prelude::*;
use vp_isa::{AluOp, FpOp};
use vp_sim::{alu_eval, fp_eval};

/// Reference semantics written from the ISA documentation, deliberately in
/// a different style from the emulator's implementation.
fn reference_alu(op: AluOp, a: u64, b: u64) -> u64 {
    let sa = a as i64 as i128;
    let sb = b as i64 as i128;
    match op {
        AluOp::Add => ((sa + sb) as u128 & u128::from(u64::MAX)) as u64,
        AluOp::Sub => ((sa - sb) as u128 & u128::from(u64::MAX)) as u64,
        AluOp::Mul => ((sa * sb) as u128 & u128::from(u64::MAX)) as u64,
        AluOp::Div => {
            if sb == 0 {
                0
            } else {
                // i128 division cannot overflow for i64 operands.
                ((sa / sb) as u128 & u128::from(u64::MAX)) as u64
            }
        }
        AluOp::Rem => {
            if sb == 0 {
                a
            } else {
                ((sa % sb) as u128 & u128::from(u64::MAX)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Sll => a << (b % 64),
        AluOp::Srl => a >> (b % 64),
        AluOp::Sra => (((a as i64) as i128) >> (b % 64)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Seq => (a == b) as u64,
        AluOp::Sne => (a != b) as u64,
    }
}

fn reference_fp(op: FpOp, a: u64, b: u64) -> u64 {
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    match op {
        FpOp::FAdd => (fa + fb).to_bits(),
        FpOp::FSub => (fa - fb).to_bits(),
        FpOp::FMul => (fa * fb).to_bits(),
        FpOp::FDiv => (fa / fb).to_bits(),
        FpOp::FCmpLt => (fa < fb) as u64,
        FpOp::CvtIF => ((a as i64) as f64).to_bits(),
        FpOp::CvtFI => {
            if fa.is_nan() {
                0
            } else if fa >= i64::MAX as f64 {
                i64::MAX as u64
            } else if fa <= i64::MIN as f64 {
                i64::MIN as u64
            } else {
                (fa.trunc() as i64) as u64
            }
        }
    }
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_fp_op() -> impl Strategy<Value = FpOp> {
    (0usize..FpOp::ALL.len()).prop_map(|i| FpOp::ALL[i])
}

/// Operand distribution: uniform bits, small values and boundary cases.
fn arb_operand() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        0u64..16,
        Just(u64::MAX),
        Just(i64::MIN as u64),
        Just(i64::MAX as u64),
        any::<f64>().prop_map(f64::to_bits),
    ]
}

proptest! {
    #[test]
    fn alu_matches_reference(op in arb_alu_op(), a in arb_operand(), b in arb_operand()) {
        prop_assert_eq!(alu_eval(op, a, b), reference_alu(op, a, b), "{} {:#x} {:#x}", op, a, b);
    }

    #[test]
    fn fp_matches_reference(op in arb_fp_op(), a in arb_operand(), b in arb_operand()) {
        // NaN payloads may differ in sign/payload bits across FP ops only
        // if the implementations differ; both use native f64 arithmetic,
        // so results must be bit-identical.
        prop_assert_eq!(fp_eval(op, a, b), reference_fp(op, a, b), "{} {:#x} {:#x}", op, a, b);
    }

    /// Algebraic sanity independent of both implementations.
    #[test]
    fn alu_algebra(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(alu_eval(AluOp::Add, a, b), alu_eval(AluOp::Add, b, a));
        prop_assert_eq!(alu_eval(AluOp::Xor, a, a), 0);
        prop_assert_eq!(alu_eval(AluOp::Sub, a, a), 0);
        prop_assert_eq!(alu_eval(AluOp::And, a, 0), 0);
        prop_assert_eq!(alu_eval(AluOp::Or, a, 0), a);
        prop_assert_eq!(
            alu_eval(AluOp::Nor, a, b),
            alu_eval(AluOp::Xor, alu_eval(AluOp::Or, a, b), u64::MAX)
        );
        prop_assert_eq!(
            alu_eval(AluOp::Slt, a, b) + alu_eval(AluOp::Slt, b, a) + alu_eval(AluOp::Seq, a, b),
            1
        );
    }
}
