//! Property tests: the emulator's memory against a byte-array reference
//! model, for arbitrary access sequences.

use proptest::prelude::*;
use vp_isa::MemWidth;
use vp_sim::Memory;

const SIZE: usize = 256;

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, width: MemWidth, value: u64 },
    Read { addr: u64, width: MemWidth },
    ReadSigned { addr: u64, width: MemWidth },
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    (0usize..4).prop_map(|i| MemWidth::ALL[i])
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Addresses mostly in range, occasionally far out to exercise faults.
    let addr = prop_oneof![4 => 0u64..(SIZE as u64 + 8), 1 => any::<u64>()];
    prop_oneof![
        (addr.clone(), arb_width(), any::<u64>()).prop_map(|(addr, width, value)| Op::Write {
            addr,
            width,
            value
        }),
        (addr.clone(), arb_width()).prop_map(|(addr, width)| Op::Read { addr, width }),
        (addr, arb_width()).prop_map(|(addr, width)| Op::ReadSigned { addr, width }),
    ]
}

/// Reference model: a plain byte array with open-coded little-endian
/// accesses.
struct Model {
    bytes: [u8; SIZE],
}

impl Model {
    fn in_range(addr: u64, width: MemWidth) -> bool {
        addr.checked_add(width.bytes()).is_some_and(|end| end <= SIZE as u64)
    }

    fn read(&self, addr: u64, width: MemWidth) -> Option<u64> {
        if !Self::in_range(addr, width) {
            return None;
        }
        let mut v = 0u64;
        for i in (0..width.bytes()).rev() {
            v = (v << 8) | u64::from(self.bytes[(addr + i) as usize]);
        }
        Some(v)
    }

    fn write(&mut self, addr: u64, width: MemWidth, value: u64) -> bool {
        if !Self::in_range(addr, width) {
            return false;
        }
        for i in 0..width.bytes() {
            self.bytes[(addr + i) as usize] = (value >> (8 * i)) as u8;
        }
        true
    }
}

fn sign_extend(v: u64, width: MemWidth) -> u64 {
    let bits = width.bytes() * 8;
    if bits == 64 {
        return v;
    }
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as u64
}

proptest! {
    #[test]
    fn memory_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut mem = Memory::new(SIZE);
        let mut model = Model { bytes: [0; SIZE] };
        for op in ops {
            match op {
                Op::Write { addr, width, value } => {
                    let ok = model.write(addr, width, value);
                    prop_assert_eq!(mem.write(addr, width, value).is_ok(), ok);
                }
                Op::Read { addr, width } => {
                    match model.read(addr, width) {
                        Some(expected) => prop_assert_eq!(mem.read(addr, width).unwrap(), expected),
                        None => prop_assert!(mem.read(addr, width).is_err()),
                    }
                }
                Op::ReadSigned { addr, width } => {
                    match model.read(addr, width) {
                        Some(expected) => prop_assert_eq!(
                            mem.read_signed(addr, width).unwrap(),
                            sign_extend(expected, width)
                        ),
                        None => prop_assert!(mem.read_signed(addr, width).is_err()),
                    }
                }
            }
        }
    }

    /// Failed accesses leave memory untouched.
    #[test]
    fn faults_have_no_side_effects(addr in (SIZE as u64 - 7)..(SIZE as u64 + 64)) {
        let mut mem = Memory::new(SIZE);
        mem.write(0, MemWidth::D, 0x0102_0304_0506_0708).unwrap();
        if mem.write(addr, MemWidth::D, u64::MAX).is_err() {
            prop_assert_eq!(mem.read(0, MemWidth::D).unwrap(), 0x0102_0304_0506_0708);
            // Bytes near the boundary also unchanged.
            prop_assert_eq!(mem.read(SIZE as u64 - 1, MemWidth::B).unwrap(), 0);
        }
    }
}
