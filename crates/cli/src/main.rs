//! `vprof` — the Value Profiling command-line tool.
//!
//! ```text
//! vprof list                          list built-in workloads
//! vprof run <target> [options]        run a program uninstrumented
//! vprof disasm <target>               print the assembled listing
//! vprof profile <target> [options]    value-profile a program
//! vprof compare <workload>            train-vs-test profile stability
//! vprof predict <workload>            value-predictor comparison
//! vprof specialize [period]           profile->specialize->measure demo
//! ```
//!
//! `<target>` is a built-in workload name (see `vprof list`) or a path to a
//! `.s` assembly file.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("vprof: {message}");
            ExitCode::FAILURE
        }
    }
}
