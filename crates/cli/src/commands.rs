//! `vprof` subcommand implementations.

use vp_asm::Program;
use vp_core::{
    compare, render_metric_table, report::row, track::TrackerConfig, ConvergentConfig,
    ConvergentProfiler, InstructionProfiler, MemoryProfiler, ParamProfiler,
};
use vp_instrument::{Instrumenter, Selection};
use vp_predict::{
    evaluate as eval_predictor, HybridPredictor, LastValuePredictor, Predictor, StridePredictor,
    TwoLevelPredictor,
};
use vp_sim::{InputSet, Machine, MachineConfig};
use vp_workloads::{suite, DataSet, Workload};

const BUDGET: u64 = 100_000_000;

const USAGE: &str = "usage:
  vprof list
  vprof run <target> [--train]
  vprof assemble <file.s> -o <file.vpo>
  vprof disasm <target>
  vprof profile <target> [--train] [--all|--loads|--memory|--params] [--convergent] [--top N] [--save FILE]
  vprof profile-suite [--train] [--all] [--convergent] [--jobs N|--workers N] [--shards N]
                      [--baseline] [--adaptive [--phase-window N] [--max-rearms N]]
                      [--telemetry FILE] [--retries N] [--checkpoint FILE [--resume]]
                      [--deadline-ms N] [--mem-budget-mb N]
  vprof record <target> [-o <file.vpc>] [--train] [--all] [--deadline-ms N]
                      [--chunk-events N]
  vprof replay <file.vpc> [--shards N] [--save FILE] [--deadline-ms N] [--mem-budget-mb N]
                      [--adaptive [--phase-window N] [--max-rearms N]]
  vprof serve --socket SOCK [--state-dir DIR] [--resume] [--max-sessions N]
                      [--max-tenants N] [--tenant-sessions N] [--window N]
                      [--checkpoint-every N] [--idle-ms N] [--deadline-ms N]
                      [--mem-budget-mb N] [--telemetry FILE]
                      [--convergent|--adaptive [--phase-window N] [--max-rearms N]]
  vprof client <file.vpc> --connect SOCK [--tenant T] [--workload W] [--save FILE]
                      [--window N] [--query] [--burst]
  vprof client --connect SOCK --shutdown
  vprof stats <telemetry.jsonl>
  vprof verify <profile.tsv> [--lenient]
  vprof histogram <target> [--train] [--all]
  vprof trace <target> -o <file.vpt> [--train] [--all]
  vprof compare <workload>
  vprof predict <workload> [--train]
  vprof optimize [--jobs N|--workers N] [--shards N]
                      [--convergent|--adaptive [--phase-window N] [--max-rearms N]]
                      [--min-invariance P] [--min-executions N] [--max-ways N]
                      [--report FILE] [--telemetry FILE] [--retries N]
                      [--checkpoint FILE [--resume]] [--deadline-ms N] [--mem-budget-mb N]
  vprof optimize --demo [change-period]
  vprof specialize [change-period]   (alias for `optimize --demo`)

<target> is a built-in workload name or a path to a .s or .vpo file.";

/// Dispatches a parsed command line. Returns a user-facing error string on
/// failure.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("assemble") => assemble_cmd(&args[1..]),
        Some("disasm") => disasm(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("profile-suite") => profile_suite(&args[1..]),
        // Hidden: the child end of `profile-suite --workers N`. Serves
        // workload assignments over stdin/stdout frames; never invoked
        // by hand.
        Some("worker") => worker_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        Some("verify") => verify_cmd(&args[1..]),
        Some("histogram") => histogram(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("record") => record_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("predict") => predict(&args[1..]),
        Some("optimize") => optimize_cmd(&args[1..]),
        // `specialize` predates the end-to-end pipeline; it survives as a
        // thin alias for the hardcoded demo-kernel walkthrough.
        Some("specialize") => {
            let mut demo = vec!["--demo".to_string()];
            demo.extend_from_slice(&args[1..]);
            optimize_cmd(&demo)
        }
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn dataset(args: &[String]) -> DataSet {
    if args.iter().any(|a| a == "--train") {
        DataSet::Train
    } else {
        DataSet::Test
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Parses `--deadline-ms N` into a wall-clock deadline.
fn deadline_arg(args: &[String]) -> Result<Option<std::time::Duration>, String> {
    option_value(args, "--deadline-ms")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --deadline-ms value `{v}`")))
        .transpose()
        .map(|ms| ms.map(std::time::Duration::from_millis))
}

/// Parses `--mem-budget-mb N` into a per-workload memory budget.
/// Parses the adaptive-profiling flags: `--adaptive` plus the optional
/// `--phase-window N` / `--max-rearms N` budget overrides. The budget
/// flags without `--adaptive` are an error (they would silently do
/// nothing otherwise).
fn phase_budget_arg(args: &[String]) -> Result<Option<vp_core::PhaseBudget>, String> {
    let window = option_value(args, "--phase-window");
    let max_rearms = option_value(args, "--max-rearms");
    if !flag(args, "--adaptive") {
        if window.is_some() || max_rearms.is_some() {
            return Err("--phase-window/--max-rearms require --adaptive".to_string());
        }
        return Ok(None);
    }
    let mut budget = vp_core::PhaseBudget::default();
    if let Some(v) = window {
        budget.window = v.parse().map_err(|_| format!("bad --phase-window value `{v}`"))?;
        if budget.window == 0 {
            return Err("bad --phase-window value `0` (window must be positive)".to_string());
        }
    }
    if let Some(v) = max_rearms {
        budget.max_rearms = v.parse().map_err(|_| format!("bad --max-rearms value `{v}`"))?;
    }
    Ok(Some(budget))
}

fn mem_budget_arg(args: &[String]) -> Result<Option<vp_core::MemBudget>, String> {
    option_value(args, "--mem-budget-mb")
        .map(|v| v.parse::<usize>().map_err(|_| format!("bad --mem-budget-mb value `{v}`")))
        .transpose()
        .map(|mb| mb.map(vp_core::MemBudget::mib))
}

/// Resolves a target to (program, input): a workload name or a `.s` path.
fn resolve(target: &str, ds: DataSet) -> Result<(Program, InputSet), String> {
    if let Some(w) = Workload::by_name(target) {
        return Ok((w.program().clone(), w.input(ds).clone()));
    }
    if target.ends_with(".s") {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let program = vp_asm::assemble(&src).map_err(|e| e.to_string())?;
        return Ok((program, InputSet::empty()));
    }
    if target.ends_with(".vpo") {
        let bytes = std::fs::read(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let program = Program::from_bytes(&bytes).map_err(|e| e.to_string())?;
        return Ok((program, InputSet::empty()));
    }
    Err(format!("`{target}` is neither a workload (try `vprof list`) nor a .s/.vpo file"))
}

fn target_arg(args: &[String]) -> Result<&str, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| format!("missing target\n{USAGE}"))
}

fn list() -> Result<(), String> {
    println!("{:<10} {:>8} description", "name", "instrs");
    for w in suite() {
        println!("{:<10} {:>8} {}", w.name(), w.program().len(), w.description());
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let (program, input) = resolve(target_arg(args)?, ds)?;
    let mut machine =
        Machine::new(program, MachineConfig::new().input(input)).map_err(|e| e.to_string())?;
    let out = machine.run(BUDGET).map_err(|e| e.to_string())?;
    if !out.output.is_empty() {
        print!("{}", out.output_text());
    }
    println!("exit code    {}", out.exit_code);
    println!("instructions {}", out.instructions);
    for (class, count) in machine.stats().per_class() {
        println!("  {class:<9} {count}");
    }
    Ok(())
}

fn assemble_cmd(args: &[String]) -> Result<(), String> {
    let target = target_arg(args)?;
    if !target.ends_with(".s") {
        return Err(format!("assemble expects a .s file, got `{target}`"));
    }
    let out_path = option_value(args, "-o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.vpo", target.trim_end_matches(".s")));
    let src =
        std::fs::read_to_string(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
    let program = vp_asm::assemble(&src).map_err(|e| e.to_string())?;
    vp_core::durable::write_atomic(std::path::Path::new(&out_path), &program.to_bytes())
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!(
        "wrote {out_path}: {} instructions, {} data bytes, {} procedures",
        program.len(),
        program.data().len(),
        program.procedures().len()
    );
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), String> {
    let (program, _) = resolve(target_arg(args)?, DataSet::Test)?;
    print!("{program}");
    Ok(())
}

fn profile(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let target = target_arg(args)?;
    if target.ends_with(".vpt") {
        return profile_trace(target, args);
    }
    let (program, input) = resolve(target, ds)?;
    let cfg = MachineConfig::new().input(input);
    let top: usize = option_value(args, "--top")
        .map_or(Ok(10), |v| v.parse().map_err(|_| format!("bad --top value `{v}`")))?;

    if flag(args, "--memory") {
        let mut profiler = MemoryProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::MemoryOps)
            .run(&program, cfg, BUDGET, &mut profiler)
            .map_err(|e| e.to_string())?;
        if profiler.dropped() > 0 {
            eprintln!(
                "warning: {} stores dropped at the memory profiler's location cap — per-location results are incomplete",
                profiler.dropped()
            );
        }
        let rows = [row(target, &profiler.metrics())];
        println!("{}", render_metric_table("memory locations (stored values)", &rows));
        println!("hottest locations:");
        for m in profiler.hottest(top) {
            println!(
                "  {:#010x}  execs {:>8}  inv-top1 {:5.1}%  top value {:?}",
                m.id,
                m.executions,
                m.inv_top1 * 100.0,
                m.top_value
            );
        }
        return Ok(());
    }

    if flag(args, "--params") {
        let mut profiler = ParamProfiler::new(TrackerConfig::with_full(), 4);
        Instrumenter::new()
            .select(Selection::None)
            .with_procedures(true)
            .run(&program, cfg, BUDGET, &mut profiler)
            .map_err(|e| e.to_string())?;
        println!("procedure parameters:");
        for p in profiler.metrics().into_iter().take(top) {
            println!(
                "  proc {:<3} {:?}  execs {:>8}  inv-top1 {:5.1}%",
                p.proc_index,
                p.slot,
                p.metrics.executions,
                p.metrics.inv_top1 * 100.0
            );
        }
        return Ok(());
    }

    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let what = if flag(args, "--all") { "all register-defining instructions" } else { "loads" };

    if flag(args, "--convergent") {
        let mut profiler =
            ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
        Instrumenter::new()
            .select(selection)
            .run(&program, cfg, BUDGET, &mut profiler)
            .map_err(|e| e.to_string())?;
        let rows = [row(target, &profiler.metrics())];
        println!("{}", render_metric_table(&format!("convergent profile: {what}"), &rows));
        println!("profiled {:.2}% of executions", profiler.overall_profile_fraction() * 100.0);
        return Ok(());
    }

    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(selection)
        .run(&program, cfg, BUDGET, &mut profiler)
        .map_err(|e| e.to_string())?;
    if let Some(path) = option_value(args, "--save") {
        vp_core::durable::write_profile(std::path::Path::new(path), &profiler.metrics())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("saved {} entities to {path}", profiler.metrics().len());
    }
    let rows = [row(target, &profiler.metrics())];
    println!("{}", render_metric_table(&format!("value profile: {what}"), &rows));
    let mut ms = profiler.metrics();
    ms.sort_by_key(|m| std::cmp::Reverse(m.executions));
    println!("hottest instructions:");
    for m in ms.into_iter().take(top) {
        println!(
            "  [{:>5}] {:<24} execs {:>9}  inv-top1 {:5.1}%  lvp {:5.1}%  top {:?}",
            m.id,
            program.code()[m.id as usize].to_string(),
            m.executions,
            m.inv_top1 * 100.0,
            m.lvp * 100.0,
            m.top_value
        );
    }
    Ok(())
}

/// Profiles the whole workload suite, optionally across worker threads.
/// One workload per worker, so `--jobs N` output matches a serial run.
/// `--shards N` additionally parallelizes *within* each workload: the
/// value stream is recorded once, split by entity, and profiled across
/// N threads — also output-identical to serial (see `vp_core::shard`).
/// Run telemetry lands in `--telemetry FILE` (default: `$VP_TELEMETRY`,
/// else `telemetry.jsonl`); inspect it with `vprof stats <file>`.
///
/// The run is fault-tolerant: a workload that panics is retried
/// (`--retries N` rounds, default 2) and quarantined when the budget is
/// exhausted — the rest of the suite still completes, quarantined
/// workloads are listed in a failure table, and the fault counters land
/// in telemetry. With `--checkpoint FILE` each finished workload is
/// durably persisted as it completes; `--resume` restores those instead
/// of re-profiling them, producing output identical to an uninterrupted
/// run. `$VP_FAULTS` arms deterministic fault injection (see
/// `vp_core::fault`).
///
/// `--deadline-ms N` arms a per-workload wall-clock deadline: an attempt
/// still running when it fires is cancelled cooperatively, counted as a
/// timeout (distinct from a panic), retried, and quarantined when the
/// retry budget runs out. `--mem-budget-mb N` caps each workload's
/// profiler memory: over budget, entities degrade full-profile →
/// TNV-only → dropped (see `vp_core::govern`), and the governor counters
/// land in the output and telemetry.
fn profile_suite(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use vp_bench::{Checkpoint, ProfileMode, RetryPolicy, SuiteRunner};
    use vp_obs::MemRecorder;

    let ds = dataset(args);
    let jobs: usize = option_value(args, "--jobs")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --jobs value `{v}`")))?;
    let workers: Option<usize> = option_value(args, "--workers")
        .map(|v| v.parse().map_err(|_| format!("bad --workers value `{v}`")))
        .transpose()?;
    if workers.is_some() && option_value(args, "--jobs").is_some() {
        return Err(
            "--jobs and --workers are mutually exclusive (threads vs worker processes)".to_string()
        );
    }
    let shards: usize = option_value(args, "--shards")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --shards value `{v}`")))?;
    if shards == 0 {
        return Err("bad --shards value `0` (need at least one shard)".to_string());
    }
    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let what = if flag(args, "--all") { "all register-defining instructions" } else { "loads" };
    let telemetry_path = option_value(args, "--telemetry")
        .map_or_else(vp_bench::default_path, std::path::PathBuf::from);
    let mut policy = RetryPolicy::default();
    policy.max_retries = option_value(args, "--retries").map_or(Ok(policy.max_retries), |v| {
        v.parse().map_err(|_| format!("bad --retries value `{v}`"))
    })?;
    let plan = vp_core::FaultPlan::from_env()?;
    let deadline = deadline_arg(args)?;
    let mem_budget = mem_budget_arg(args)?;
    let phase_budget = phase_budget_arg(args)?;
    if phase_budget.is_some() && flag(args, "--convergent") {
        return Err("--adaptive and --convergent are mutually exclusive".to_string());
    }

    let recorder = Arc::new(MemRecorder::new());
    let mut runner = SuiteRunner::new()
        .jobs(jobs)
        .shards(shards)
        .selection(selection)
        .recorder(recorder.clone())
        .retry(policy)
        .faults(Arc::new(plan))
        .deadline(deadline)
        .mem_budget(mem_budget)
        .measure_baseline(flag(args, "--baseline"));
    if flag(args, "--convergent") {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Convergent(ConvergentConfig::default()));
    }
    if let Some(budget) = phase_budget {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Adaptive(ConvergentConfig::default(), budget));
    }
    match (option_value(args, "--checkpoint"), flag(args, "--resume")) {
        (Some(path), resume) => {
            let path = std::path::Path::new(path);
            let checkpoint = if resume {
                let (checkpoint, summary) = Checkpoint::resume(path)
                    .map_err(|e| format!("cannot resume `{}`: {e}", path.display()))?;
                // Progress notices go to stderr: stdout must stay
                // byte-identical to an uninterrupted run's.
                if let Some(reason) = &summary.dropped_tail {
                    eprintln!("checkpoint: dropped torn final record ({reason})");
                }
                eprintln!(
                    "resuming from {}: {} workload(s) restored",
                    path.display(),
                    summary.restored
                );
                checkpoint
            } else {
                Checkpoint::create(path)
                    .map_err(|e| format!("cannot create `{}`: {e}", path.display()))?
            };
            runner = runner.checkpoint(Arc::new(checkpoint));
        }
        (None, true) => return Err("--resume requires --checkpoint FILE".to_string()),
        (None, false) => {}
    }
    let outcome = match workers {
        // Worker processes are crash domains: each profiles assigned
        // workloads behind the stdin/stdout frame protocol, and a dead
        // worker costs one retryable attempt, never the suite. Output
        // and masked telemetry stay byte-identical to `--jobs N`.
        Some(n) => runner.try_run_distributed(&vp_workloads::suite(), worker_spec(args, n)?),
        None => runner.try_run(ds),
    };
    let profile = &outcome.profile;
    println!(
        "{}",
        profile.render(&format!("suite value profile: {what} [{} data set]", ds.name()))
    );
    if flag(args, "--convergent") || flag(args, "--adaptive") {
        println!("profiled fraction per workload:");
        for w in &profile.workloads {
            println!("  {:<10} {:6.2}%", w.name, w.profile_fraction * 100.0);
        }
    }
    if let Some(budget) = phase_budget {
        println!(
            "adaptive phase detection (window {}, max {} re-arms/instruction):",
            budget.window, budget.max_rearms
        );
        for w in &profile.workloads {
            let ph = w.phase.unwrap_or_default();
            println!(
                "  {:<10} windows {:>8}  shifts {:>6}  rearms {:>5}  denied {:>5}",
                w.name, ph.windows, ph.shifts_detected, ph.rearms, ph.rearms_denied
            );
        }
    }
    if flag(args, "--baseline") {
        println!("slowdown vs uninstrumented replay:");
        for w in &profile.workloads {
            match w.slowdown() {
                Some(s) => println!("  {:<10} {s:6.2}x", w.name),
                None => println!("  {:<10}      -", w.name),
            }
        }
    }
    let (pool, agg) = profile.pooled();
    println!(
        "pooled: {} sites, {} executions, inv-top1 {:.1}%, lvp {:.1}%",
        pool.len(),
        agg.executions,
        agg.inv_top1 * 100.0,
        agg.lvp * 100.0
    );
    println!(
        "{} workloads, {} dynamic instructions total",
        profile.workloads.len(),
        profile.total_instructions()
    );
    let governed: Vec<_> =
        profile.workloads.iter().filter_map(|w| w.governor.map(|g| (w.name, g))).collect();
    if let Some(budget) = mem_budget {
        println!("governor (budget {} bytes/workload):", budget.limit_bytes());
        for (name, g) in &governed {
            println!(
                "  {:<10} peak {:>12}  degraded {:>6}  dropped {:>6}  obs dropped {:>9}",
                name, g.bytes_peak, g.entities_degraded, g.entities_dropped, g.observations_dropped
            );
        }
        let dropped: u64 = governed.iter().map(|(_, g)| g.entities_dropped).sum();
        if dropped > 0 {
            println!("warning: {dropped} entities dropped — raise --mem-budget-mb to recover them");
        }
    }
    if !outcome.is_clean() {
        println!();
        print!("{}", outcome.render_failures());
    }

    let mode = format!(
        "{}-{}",
        if flag(args, "--adaptive") {
            "adaptive"
        } else if flag(args, "--convergent") {
            "convergent"
        } else {
            "full"
        },
        if flag(args, "--all") { "all" } else { "loads" }
    );
    // `--workers N` reports N in the `jobs` field: the records describe
    // the same parallelism either way and stay byte-comparable.
    let mut records = vp_bench::suite_records(
        "profile-suite",
        ds,
        workers.unwrap_or(jobs),
        &mode,
        profile,
        Some(&recorder),
    );
    records.extend(vp_bench::fault_records("profile-suite", &outcome));
    vp_bench::write_jsonl(&telemetry_path, &records)
        .map_err(|e| format!("cannot write `{}`: {e}", telemetry_path.display()))?;
    println!("telemetry: {} ({} records)", telemetry_path.display(), records.len());
    Ok(())
}

/// Builds the subprocess spec for `profile-suite --workers N`: the
/// current binary re-invoked as `vprof worker` with the profiling flags
/// forwarded. Orchestration flags (`--jobs`/`--workers`/`--retries`/
/// `--checkpoint`/`--telemetry`) stay with the parent — workers only
/// profile what they are told to.
fn worker_spec(args: &[String], workers: usize) -> Result<vp_bench::WorkerSpec, String> {
    let bin =
        std::env::current_exe().map_err(|e| format!("cannot locate the vprof binary: {e}"))?;
    let mut forwarded = vec!["worker".to_string()];
    for f in ["--train", "--all", "--convergent", "--adaptive", "--baseline"] {
        if flag(args, f) {
            forwarded.push(f.to_string());
        }
    }
    for opt in ["--shards", "--phase-window", "--max-rearms", "--deadline-ms", "--mem-budget-mb"] {
        if let Some(v) = option_value(args, opt) {
            forwarded.push(opt.to_string());
            forwarded.push(v.to_string());
        }
    }
    Ok(vp_bench::WorkerSpec { bin, args: forwarded, workers })
}

/// Hidden subcommand: the child end of `profile-suite --workers N`.
/// Builds the same profiling configuration the parent would (selection,
/// mode, shards, deadline, memory budget, baseline) and serves workload
/// assignments over the stdin/stdout frame protocol until told to exit.
/// Retries, checkpointing, and telemetry stay with the parent; fault
/// injection re-arms from this process's own `$VP_FAULTS` view, with
/// `$VP_FAULTS_SCOPE` picking the victim worker.
fn worker_cmd(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use vp_bench::{ProfileMode, RetryPolicy, SuiteRunner};

    let ds = dataset(args);
    let shards: usize = option_value(args, "--shards")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --shards value `{v}`")))?;
    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let plan = Arc::new(vp_core::FaultPlan::from_env()?);
    let deadline = deadline_arg(args)?;
    let mem_budget = mem_budget_arg(args)?;
    let phase_budget = phase_budget_arg(args)?;

    let mut runner = SuiteRunner::new()
        .shards(shards)
        .selection(selection)
        .retry(RetryPolicy::none())
        .faults(Arc::clone(&plan))
        .deadline(deadline)
        .mem_budget(mem_budget)
        .measure_baseline(flag(args, "--baseline"));
    if flag(args, "--convergent") {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Convergent(ConvergentConfig::default()));
    }
    if let Some(budget) = phase_budget {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Adaptive(ConvergentConfig::default(), budget));
    }
    vp_bench::serve_worker(&runner, ds, &plan).map_err(|e| format!("worker: {e}"))
}

/// Renders a human-readable summary of a `telemetry.jsonl` file. A final
/// line torn by a crash mid-append is dropped with a warning (exit 0) —
/// every complete record still gets summarized. An absent or empty file
/// (e.g. a serve daemon that never admitted a session) is not an error:
/// it prints a clean "no records" line and exits 0. Corruption anywhere
/// else is an error.
fn stats_cmd(args: &[String]) -> Result<(), String> {
    let target = target_arg(args)?;
    let text = match std::fs::read_to_string(target) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("{target}: no telemetry records");
            return Ok(());
        }
        Err(e) => return Err(format!("cannot read `{target}`: {e}")),
    };
    let parsed = vp_obs::telemetry::parse_jsonl_lenient(&text)?;
    if let Some(reason) = &parsed.dropped_tail {
        // A torn tail with nothing before it recovered zero records —
        // that is corruption, not a clean empty file.
        if parsed.records.is_empty() {
            return Err(format!("{target}: no records recovered ({reason})"));
        }
        eprintln!(
            "warning: {target}: dropped torn final line ({reason}); recovered {} record(s)",
            parsed.records.len()
        );
    }
    if parsed.records.is_empty() {
        println!("{target}: no telemetry records");
        return Ok(());
    }
    print!("{}", vp_obs::stats::summarize_records(&parsed.records)?);
    Ok(())
}

/// `vprof serve`: runs the multi-tenant profile-ingestion daemon on a
/// Unix-domain socket until SIGTERM or a client's `SHUTDOWN` frame
/// drains it. Every session checkpoints through the durable layer, so a
/// `kill -9` + restart with `--resume` loses nothing a client cannot
/// retransmit.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use vp_bench::serve::{serve, ServeConfig, SessionMode};
    let socket = option_value(args, "--socket")
        .ok_or_else(|| format!("serve needs --socket PATH\n{USAGE}"))?;
    let state_dir =
        option_value(args, "--state-dir").map_or_else(|| format!("{socket}.state"), str::to_string);
    let mut cfg =
        ServeConfig::new(std::path::PathBuf::from(socket), std::path::PathBuf::from(state_dir));
    let count = |name: &str, min: usize, into: &mut usize| -> Result<(), String> {
        if let Some(v) = option_value(args, name) {
            *into = v.parse().map_err(|_| format!("bad {name} value `{v}`"))?;
            if *into < min {
                return Err(format!("bad {name} value `{v}` (need at least {min})"));
            }
        }
        Ok(())
    };
    count("--max-sessions", 1, &mut cfg.max_sessions)?;
    count("--max-tenants", 1, &mut cfg.max_tenants)?;
    count("--tenant-sessions", 1, &mut cfg.tenant_sessions)?;
    let mut window = cfg.window as usize;
    let mut every = cfg.checkpoint_every as usize;
    count("--window", 1, &mut window)?;
    count("--checkpoint-every", 1, &mut every)?;
    cfg.window = window as u64;
    cfg.checkpoint_every = every as u64;
    cfg.idle = option_value(args, "--idle-ms")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --idle-ms value `{v}`")))
        .transpose()?
        .map(std::time::Duration::from_millis);
    cfg.deadline = deadline_arg(args)?;
    cfg.mem_budget = mem_budget_arg(args)?;
    cfg.resume = flag(args, "--resume");
    if let Some(budget) = phase_budget_arg(args)? {
        if flag(args, "--convergent") {
            return Err("--adaptive and --convergent are mutually exclusive".to_string());
        }
        cfg.mode = SessionMode::Adaptive(budget);
    } else if flag(args, "--convergent") {
        cfg.mode = SessionMode::Convergent;
    }
    if cfg.mem_budget.is_some() && cfg.mode != SessionMode::Full {
        return Err(
            "--mem-budget-mb needs the full profiler (the convergent trackers are already constant-space)"
                .to_string(),
        );
    }
    // Telemetry is opt-in: a flag or the environment, never by default.
    cfg.telemetry = option_value(args, "--telemetry").map(std::path::PathBuf::from).or_else(|| {
        std::env::var_os(vp_bench::telemetry::TELEMETRY_ENV).map(|_| vp_bench::default_path())
    });
    let telemetry = cfg.telemetry.clone();
    let report = serve(cfg)?;
    println!(
        "serve: {} completed, {} killed, {} rejected, {} chunks acked",
        report.counts.get(vp_obs::CounterId::SessionCompleted),
        report.counts.get(vp_obs::CounterId::SessionKilled),
        report.counts.get(vp_obs::CounterId::SessionRejected),
        report.counts.get(vp_obs::CounterId::ChunksAcked),
    );
    if let Some(path) = telemetry {
        println!("telemetry: {} ({} records)", path.display(), report.records().len());
    }
    Ok(())
}

/// `vprof client`: streams a recorded `.vpc` trace into a serve daemon
/// chunk by chunk, honouring the inflight window, and fetches the final
/// profile. Reconnecting after a server crash resumes from the durable
/// cursor in `HELLO_OK` — already-acknowledged chunks are skipped, the
/// rest retransmitted.
fn client_cmd(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;
    use vp_instrument::net::{self, MsgError, SessionMsg};
    let sock = option_value(args, "--connect")
        .ok_or_else(|| format!("client needs --connect SOCK\n{USAGE}"))?;
    let connect =
        || UnixStream::connect(sock).map_err(|e| format!("cannot connect to `{sock}`: {e}"));
    if flag(args, "--shutdown") {
        let mut stream = connect()?;
        vp_instrument::frame::write_magic(&mut stream)
            .and_then(|()| net::write_msg(&mut stream, &SessionMsg::Shutdown))
            .map_err(|e| format!("cannot send shutdown: {e}"))?;
        println!("shutdown requested");
        return Ok(());
    }
    let target = target_arg(args)?;
    let tenant = option_value(args, "--tenant").unwrap_or("default").to_string();
    let workload = option_value(args, "--workload")
        .map(str::to_string)
        .or_else(|| {
            std::path::Path::new(target).file_stem().map(|s| s.to_string_lossy().replace('.', "_"))
        })
        .ok_or_else(|| format!("cannot derive a workload name from `{target}`; use --workload"))?;
    let window: u64 = option_value(args, "--window")
        .map_or(Ok(16), |v| v.parse().map_err(|_| format!("bad --window value `{v}`")))?;
    if window == 0 {
        return Err("bad --window value `0` (need at least one inflight chunk)".to_string());
    }
    let corrupt: Option<u64> = option_value(args, "--corrupt-chunk")
        .map(|v| v.parse().map_err(|_| format!("bad --corrupt-chunk value `{v}`")))
        .transpose()?;
    let abort_after: Option<u64> = option_value(args, "--abort-after")
        .map(|v| v.parse().map_err(|_| format!("bad --abort-after value `{v}`")))
        .transpose()?;
    let bytes = std::fs::read(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
    let chunks =
        vp_instrument::trace_codec::raw_chunks(&bytes).map_err(|e| format!("{target}: {e}"))?;
    let total = chunks.len() as u64;
    let events: u64 = chunks.iter().map(|c| u64::from(c.count)).sum();
    let mut stream = connect()?;
    let mut reader = vp_instrument::FrameReader::new(
        stream.try_clone().map_err(|e| format!("cannot clone socket: {e}"))?,
    );
    let send = |stream: &mut UnixStream, msg: &SessionMsg| {
        net::write_msg(stream, msg).map_err(|e| format!("connection lost: {e}"))
    };
    vp_instrument::frame::write_magic(&mut stream).map_err(|e| format!("connection lost: {e}"))?;
    send(&mut stream, &SessionMsg::Hello { tenant: tenant.clone(), workload: workload.clone() })?;
    reader.expect_magic().map_err(|e| format!("bad server greeting: {e}"))?;
    let recv = |reader: &mut vp_instrument::FrameReader<UnixStream>| match net::read_msg(reader) {
        Ok(msg) => Ok(msg),
        Err(MsgError::Frame(vp_instrument::FrameError::PeerClosed)) => {
            Err("server closed the connection mid-session".to_string())
        }
        Err(e) => Err(format!("bad server reply: {e}")),
    };
    let start = match recv(&mut reader)? {
        SessionMsg::HelloOk { acked } => acked,
        SessionMsg::Busy { reason } => return Err(format!("server busy: {reason}")),
        SessionMsg::Err { reason } => return Err(format!("session refused: {reason}")),
        other => return Err(format!("unexpected reply to HELLO: {other:?}")),
    };
    let mut acked = start;
    let mut throttles = 0u64;
    for seq in start..total {
        // The inflight window: block on ACKs before overrunning it.
        // `--burst` ignores it, to exercise the server's THROTTLE path.
        while !flag(args, "--burst") && seq - acked >= window {
            match recv(&mut reader)? {
                SessionMsg::Ack { acked: a } => acked = a,
                SessionMsg::Throttle { acked: a } => {
                    throttles += 1;
                    acked = acked.max(a);
                }
                SessionMsg::Err { reason } => return Err(format!("session killed: {reason}")),
                other => return Err(format!("unexpected reply mid-stream: {other:?}")),
            }
        }
        let chunk = &chunks[seq as usize];
        let crc = if corrupt == Some(seq) { chunk.crc ^ 1 } else { chunk.crc };
        send(
            &mut stream,
            &SessionMsg::Chunk { seq, count: chunk.count, crc, payload: chunk.payload.to_vec() },
        )?;
        if abort_after == Some(seq + 1) {
            let _ = stream.flush();
            println!("client {tenant}/{workload}: aborted after {} chunk(s)", seq + 1);
            return Ok(());
        }
    }
    if flag(args, "--query") {
        send(&mut stream, &SessionMsg::Query)?;
        loop {
            match recv(&mut reader)? {
                SessionMsg::Stats { json } => {
                    println!("stats: {json}");
                    break;
                }
                // END_OK carries the final cursor; interim acks are noise.
                SessionMsg::Ack { .. } => {}
                SessionMsg::Throttle { .. } => throttles += 1,
                SessionMsg::Err { reason } => return Err(format!("session killed: {reason}")),
                other => return Err(format!("unexpected reply to QUERY: {other:?}")),
            }
        }
    }
    send(&mut stream, &SessionMsg::End)?;
    let profile = loop {
        match recv(&mut reader)? {
            SessionMsg::EndOk { acked: a, profile } => {
                acked = a;
                break profile;
            }
            SessionMsg::Ack { .. } => {}
            SessionMsg::Throttle { .. } => throttles += 1,
            SessionMsg::Err { reason } => return Err(format!("session killed: {reason}")),
            other => return Err(format!("unexpected reply to END: {other:?}")),
        }
    };
    if let Some(out) = option_value(args, "--save") {
        vp_core::durable::write_atomic(std::path::Path::new(out), profile.as_bytes())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    println!(
        "client {tenant}/{workload}: {total} chunks ({events} events), {acked} acked, resumed at {start}"
    );
    if throttles > 0 {
        println!("throttled: {throttles}");
    }
    Ok(())
}

/// Integrity-checks a profile file written by `profile --save`: verifies
/// the trailing CRC32 footer against the content. `--lenient` instead
/// salvages every row that parses and reports what was recovered.
fn verify_cmd(args: &[String]) -> Result<(), String> {
    use vp_core::IntegrityMode;
    let target = target_arg(args)?;
    let mode = if flag(args, "--lenient") { IntegrityMode::Lenient } else { IntegrityMode::Strict };
    let checked = vp_core::load_profile(std::path::Path::new(target), mode)
        .map_err(|e| format!("{target}: {e}"))?;
    println!("{target}: {}", checked.integrity);
    Ok(())
}

fn profile_trace(path: &str, args: &[String]) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let trace = vp_instrument::Trace::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    trace.replay(&mut profiler).map_err(|e| e.to_string())?;
    if let Some(out) = option_value(args, "--save") {
        vp_core::durable::write_profile(std::path::Path::new(out), &profiler.metrics())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    let rows = [row(path, &profiler.metrics())];
    println!(
        "{}",
        render_metric_table(
            &format!("value profile replayed from {path} ({} events)", trace.len()),
            &rows
        )
    );
    Ok(())
}

fn trace_cmd(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let target = target_arg(args)?;
    let (program, input) = resolve(target, ds)?;
    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let out =
        option_value(args, "-o").map(str::to_owned).unwrap_or_else(|| format!("{target}.vpt"));
    let trace = vp_instrument::Trace::record(
        &program,
        MachineConfig::new().input(input),
        BUDGET,
        selection,
    )
    .map_err(|e| e.to_string())?;
    vp_core::durable::write_atomic(std::path::Path::new(&out), &trace.to_bytes())
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!("wrote {out}: {} events", trace.len());
    Ok(())
}

/// Records a workload's selected `(pc, value)` stream into the chunked,
/// CRC-checked binary trace format (`vp_instrument::trace_codec`). The
/// workload executes once; `vprof replay` can then re-profile the trace
/// any number of times — serially or sharded — without re-running it.
/// `--deadline-ms N` bounds the recording run's wall clock: a run past
/// its deadline is cancelled cooperatively and no trace file is written.
fn record_cmd(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let target = target_arg(args)?;
    let (program, input) = resolve(target, ds)?;
    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let deadline = deadline_arg(args)?;
    let out =
        option_value(args, "-o").map(str::to_owned).unwrap_or_else(|| format!("{target}.vpc"));
    // Small traces fit one default-sized chunk; `--chunk-events` forces
    // more chunk boundaries so checkpoint/ACK paths can be exercised.
    let chunk_events: usize = option_value(args, "--chunk-events").map_or(
        Ok(vp_instrument::trace_codec::DEFAULT_CHUNK_EVENTS),
        |v| match v.parse() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad --chunk-events value `{v}` (need a positive count)")),
        },
    )?;
    struct Recorder(vp_instrument::TraceEncoder);
    impl vp_instrument::Analysis for Recorder {
        fn after_instr(&mut self, _m: &Machine, ev: &vp_sim::InstrEvent) {
            if let Some((_, v)) = ev.dest {
                self.0.push(ev.index, v);
            }
        }
    }
    let mut rec = Recorder(vp_instrument::TraceEncoder::with_chunk_events(chunk_events));
    let run = |rec: &mut Recorder| {
        Instrumenter::new()
            .select(selection)
            .run(&program, MachineConfig::new().input(input.clone()), BUDGET, rec)
            .map_err(|e| e.to_string())
            .map(|_| ())
    };
    match deadline {
        Some(d) => vp_instrument::cancel::run_with_deadline(d, || run(&mut rec))
            .map_err(|_| format!("record {target}: deadline exceeded"))??,
        None => run(&mut rec)?,
    }
    let bytes = rec.0.finish();
    let stats = vp_instrument::trace_codec::stats(&bytes).map_err(|e| e.to_string())?;
    vp_core::durable::write_atomic(std::path::Path::new(&out), &bytes)
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "wrote {out}: {} events, {} chunks, {} bytes",
        stats.events, stats.chunks, stats.bytes
    );
    Ok(())
}

/// Replays a binary trace written by `vprof record` through the full
/// value profiler. `--shards N` splits the replay by entity across N
/// worker threads; the output is byte-identical to a serial replay (see
/// `vp_core::shard`). An empty trace replays to the same zero-row
/// profile an empty workload produces; a corrupt or truncated trace is
/// rejected, never mis-decoded. `--deadline-ms N` bounds the replay's
/// wall clock (checked at every chunk boundary); `--mem-budget-mb N`
/// caps profiler memory via the degradation ladder (`vp_core::govern`),
/// split evenly across shards on a sharded replay.
fn replay_cmd(args: &[String]) -> Result<(), String> {
    let target = target_arg(args)?;
    let shards: usize = option_value(args, "--shards")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --shards value `{v}`")))?;
    if shards == 0 {
        return Err("bad --shards value `0` (need at least one shard)".to_string());
    }
    let deadline = deadline_arg(args)?;
    let mem_budget = mem_budget_arg(args)?;
    // Zero-copy input: the trace is mapped (or read, on the fallback
    // paths) once, and every chunk decodes straight out of it.
    let file = vp_instrument::TraceFile::open(std::path::Path::new(target))
        .map_err(|e| format!("cannot read `{target}`: {e}"))?;
    if let Some(budget) = phase_budget_arg(args)? {
        if mem_budget.is_some() {
            return Err(
                "--mem-budget-mb is not supported with --adaptive (the convergent trackers are already constant-space)"
                    .to_string(),
            );
        }
        return replay_adaptive(args, target, &file, shards, deadline, budget);
    }
    let make = move |budget: Option<vp_core::MemBudget>| match budget {
        Some(b) => InstructionProfiler::with_budget(TrackerConfig::with_full(), b),
        None => InstructionProfiler::new(TrackerConfig::with_full()),
    };
    // The whole decode-and-profile pass runs under the optional deadline;
    // every chunk boundary is a cancellation checkpoint.
    let replay = || -> Result<(InstructionProfiler, u64, u64), String> {
        let mut reader = file.reader().map_err(|e| format!("{target}: {e}"))?;
        // Serial replay decodes each chunk into one reused scratch buffer
        // and streams it straight into the batched observe path; a
        // sharded replay appends the scratch to the full stream so it
        // can be partitioned by entity.
        let mut profiler = make(mem_budget);
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        let mut trace: Vec<(u32, u64)> = Vec::new();
        loop {
            vp_instrument::cancel::checkpoint();
            if !reader.next_chunk_into(&mut scratch).map_err(|e| format!("{target}: {e}"))? {
                break;
            }
            if shards > 1 {
                trace.extend_from_slice(&scratch);
            } else {
                profiler.observe_batch(&scratch);
            }
        }
        if shards > 1 {
            // One profiler exists per work-stealing partition, so the
            // budget splits by the partition count, keeping the summed
            // caps within the whole budget.
            let split = mem_budget.map(|b| b.split(vp_core::partition_count(shards)));
            profiler = vp_core::profile_sharded(&trace, shards, move || make(split));
        }
        Ok((profiler, reader.events_read(), reader.chunks_read() as u64))
    };
    let (profiler, events_read, chunks_read) = match deadline {
        Some(d) => vp_instrument::cancel::run_with_deadline(d, replay)
            .map_err(|_| format!("replay {target}: deadline exceeded"))??,
        None => replay()?,
    };
    if let Some(out) = option_value(args, "--save") {
        vp_core::durable::write_profile(std::path::Path::new(out), &profiler.metrics())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    let rows = [row(target, &profiler.metrics())];
    println!(
        "{}",
        render_metric_table(
            &format!(
                "value profile replayed from {target} ({events_read} events, {chunks_read} chunks, {shards} shard(s))",
            ),
            &rows
        )
    );
    if let Some(g) = profiler.governor_stats() {
        println!(
            "governor: peak {} bytes, degraded {}, dropped {}, obs dropped {}",
            g.bytes_peak, g.entities_degraded, g.entities_dropped, g.observations_dropped
        );
    }
    Ok(())
}

/// `vprof replay --adaptive`: replays the trace through the adaptive
/// convergent profiler instead of the full one. Same chunked streaming
/// and deadline/shard machinery; metrics are reweighted to true totals,
/// so the table is directly comparable to a full replay's, and the
/// phase-detector counters are printed after it.
fn replay_adaptive(
    args: &[String],
    target: &str,
    file: &vp_instrument::TraceFile,
    shards: usize,
    deadline: Option<std::time::Duration>,
    budget: vp_core::PhaseBudget,
) -> Result<(), String> {
    use vp_core::AdaptiveProfiler;
    let make = move || {
        AdaptiveProfiler::new(TrackerConfig::default(), ConvergentConfig::default(), budget)
    };
    let replay = || -> Result<(AdaptiveProfiler, u64, u64), String> {
        let mut reader = file.reader().map_err(|e| format!("{target}: {e}"))?;
        let mut profiler = make();
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        let mut trace: Vec<(u32, u64)> = Vec::new();
        loop {
            vp_instrument::cancel::checkpoint();
            if !reader.next_chunk_into(&mut scratch).map_err(|e| format!("{target}: {e}"))? {
                break;
            }
            if shards > 1 {
                trace.extend_from_slice(&scratch);
            } else {
                profiler.observe_batch(&scratch);
            }
        }
        if shards > 1 {
            profiler = vp_core::profile_sharded(&trace, shards, make);
        }
        Ok((profiler, reader.events_read(), reader.chunks_read() as u64))
    };
    let (profiler, events_read, chunks_read) = match deadline {
        Some(d) => vp_instrument::cancel::run_with_deadline(d, replay)
            .map_err(|_| format!("replay {target}: deadline exceeded"))??,
        None => replay()?,
    };
    if let Some(out) = option_value(args, "--save") {
        vp_core::durable::write_profile(std::path::Path::new(out), &profiler.metrics())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    let rows = [row(target, &profiler.metrics())];
    println!(
        "{}",
        render_metric_table(
            &format!(
                "adaptive value profile replayed from {target} ({events_read} events, {chunks_read} chunks, {shards} shard(s))",
            ),
            &rows
        )
    );
    println!("profiled fraction: {:6.2}%", profiler.overall_profile_fraction() * 100.0);
    let ph = profiler.phase_stats();
    println!(
        "adaptive: windows {}, shifts {}, rearms {}, denied {} (window {}, max {} re-arms)",
        ph.windows,
        ph.shifts_detected,
        ph.rearms,
        ph.rearms_denied,
        budget.window,
        budget.max_rearms
    );
    Ok(())
}

fn histogram(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let target = target_arg(args)?;
    let (program, input) = resolve(target, ds)?;
    let selection =
        if flag(args, "--all") { Selection::RegisterDefining } else { Selection::LoadsOnly };
    let mut profiler = InstructionProfiler::new(TrackerConfig::default());
    Instrumenter::new()
        .select(selection)
        .run(&program, MachineConfig::new().input(input), BUDGET, &mut profiler)
        .map_err(|e| e.to_string())?;
    let buckets = vp_core::invariance_histogram(&profiler.metrics(), |m| m.inv_top1);
    println!("{target}: execution-weighted Inv-Top(1) distribution");
    for (i, weight) in buckets.iter().enumerate() {
        let bar = "#".repeat((weight * 50.0).round() as usize);
        println!(
            "  {:>3}-{:<4} {:>6.1}% {bar}",
            i * 10,
            format!("{}%", (i + 1) * 10),
            weight * 100.0
        );
    }
    Ok(())
}

fn compare_cmd(args: &[String]) -> Result<(), String> {
    let target = target_arg(args)?;
    let w = Workload::by_name(target)
        .ok_or_else(|| format!("`{target}` is not a built-in workload"))?;
    let mut profiles = Vec::new();
    for ds in [DataSet::Train, DataSet::Test] {
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(ds), BUDGET, &mut profiler)
            .map_err(|e| e.to_string())?;
        profiles.push(profiler.metrics());
    }
    let rows = [row("train", &profiles[0]), row("test", &profiles[1])];
    println!("{}", render_metric_table(&format!("{target}: load profile by data set"), &rows));
    let c = compare(&profiles[0], &profiles[1]);
    println!("common load sites        {}", c.common);
    println!("inv-top1 correlation     {:.3}", c.inv_correlation);
    println!("lvp correlation          {:.3}", c.lvp_correlation);
    println!("mean |inv diff|          {:.3}", c.mean_abs_inv_diff);
    println!("top-value agreement      {:.1}%", c.top_value_agreement * 100.0);
    Ok(())
}

fn predict(args: &[String]) -> Result<(), String> {
    let ds = dataset(args);
    let target = target_arg(args)?;
    let (program, input) = resolve(target, ds)?;

    // Collect the load value stream once.
    let mut stream: Vec<(u32, u64)> = Vec::new();
    struct Collector<'a>(&'a mut Vec<(u32, u64)>);
    impl vp_instrument::Analysis for Collector<'_> {
        fn after_instr(&mut self, _m: &Machine, ev: &vp_sim::InstrEvent) {
            if let Some((_, v)) = ev.dest {
                self.0.push((ev.index, v));
            }
        }
    }
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(&program, MachineConfig::new().input(input), BUDGET, &mut Collector(&mut stream))
        .map_err(|e| e.to_string())?;

    println!("{:<14} {:>8} {:>8} {:>8}", "predictor", "hit%", "cover%", "prec%");
    let report = |name: &str, p: &mut dyn Predictor| {
        let s = eval_predictor(p, stream.iter().copied());
        println!(
            "{:<14} {:>8.1} {:>8.1} {:>8.1}",
            name,
            s.hit_rate() * 100.0,
            s.coverage() * 100.0,
            s.precision() * 100.0
        );
    };
    report("lvp", &mut LastValuePredictor::new(1024));
    report("stride", &mut StridePredictor::new(1024));
    report("two-level", &mut TwoLevelPredictor::new());
    report(
        "hybrid(l,s)",
        &mut HybridPredictor::new(LastValuePredictor::new(1024), StridePredictor::new(1024)),
    );
    report(
        "hybrid(s,2l)",
        &mut HybridPredictor::new(StridePredictor::new(1024), TwoLevelPredictor::new()),
    );
    Ok(())
}

/// `vprof optimize`: the end-to-end PGO loop. Profiles the suite on the
/// *train* input (through `SuiteRunner`, so `--jobs/--workers/--shards`,
/// the governor, checkpointing and fault injection all apply), plans
/// semi-invariant candidates from the per-load metrics, specializes each
/// program behind runtime guards, and re-runs original vs specialized on
/// the *test* input. Emits the cross-input report as a deterministic
/// table, a durable CRC-footered artifact (`--report FILE`), and
/// parallelism-invariant telemetry records (`vprof stats` renders them as
/// an `optimize` section).
fn optimize_cmd(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use vp_bench::{Checkpoint, OptimizeConfig, ProfileMode, RetryPolicy, SuiteRunner};
    use vp_obs::MemRecorder;

    if flag(args, "--demo") {
        return optimize_demo(args);
    }

    let jobs: usize = option_value(args, "--jobs")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --jobs value `{v}`")))?;
    let workers: Option<usize> = option_value(args, "--workers")
        .map(|v| v.parse().map_err(|_| format!("bad --workers value `{v}`")))
        .transpose()?;
    if workers.is_some() && option_value(args, "--jobs").is_some() {
        return Err(
            "--jobs and --workers are mutually exclusive (threads vs worker processes)".to_string()
        );
    }
    let shards: usize = option_value(args, "--shards")
        .map_or(Ok(1), |v| v.parse().map_err(|_| format!("bad --shards value `{v}`")))?;
    if shards == 0 {
        return Err("bad --shards value `0` (need at least one shard)".to_string());
    }
    let telemetry_path = option_value(args, "--telemetry")
        .map_or_else(vp_bench::default_path, std::path::PathBuf::from);
    let report_path = option_value(args, "--report").unwrap_or("optimize-report.txt");
    let mut policy = RetryPolicy::default();
    policy.max_retries = option_value(args, "--retries").map_or(Ok(policy.max_retries), |v| {
        v.parse().map_err(|_| format!("bad --retries value `{v}`"))
    })?;
    let plan = vp_core::FaultPlan::from_env()?;
    let deadline = deadline_arg(args)?;
    let mem_budget = mem_budget_arg(args)?;
    let phase_budget = phase_budget_arg(args)?;
    if phase_budget.is_some() && flag(args, "--convergent") {
        return Err("--adaptive and --convergent are mutually exclusive".to_string());
    }

    let mut cfg = OptimizeConfig::default();
    if let Some(v) = option_value(args, "--min-invariance") {
        cfg.options.candidates.min_invariance =
            v.parse().map_err(|_| format!("bad --min-invariance value `{v}`"))?;
        if !(0.0..=1.0).contains(&cfg.options.candidates.min_invariance) {
            return Err(format!("bad --min-invariance value `{v}` (want a fraction in 0..=1)"));
        }
    }
    if let Some(v) = option_value(args, "--min-executions") {
        cfg.options.candidates.min_executions =
            v.parse().map_err(|_| format!("bad --min-executions value `{v}`"))?;
    }
    if let Some(v) = option_value(args, "--max-ways") {
        cfg.options.max_ways = v.parse().map_err(|_| format!("bad --max-ways value `{v}`"))?;
        if cfg.options.max_ways == 0 {
            return Err("bad --max-ways value `0` (need at least one guarded value)".to_string());
        }
    }

    // The profiling pass: loads only, on the train input. Selection
    // *thresholds* read these metrics; the guard values themselves come
    // from an exact per-workload pass inside `optimize_from_outcome`.
    let recorder = Arc::new(MemRecorder::new());
    let mut runner = SuiteRunner::new()
        .jobs(jobs)
        .shards(shards)
        .selection(Selection::LoadsOnly)
        .recorder(recorder.clone())
        .retry(policy)
        .faults(Arc::new(plan))
        .deadline(deadline)
        .mem_budget(mem_budget);
    let mode = if flag(args, "--adaptive") {
        "adaptive"
    } else if flag(args, "--convergent") {
        "convergent"
    } else {
        "full"
    };
    if flag(args, "--convergent") {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Convergent(ConvergentConfig::default()));
    }
    if let Some(budget) = phase_budget {
        runner = runner
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Adaptive(ConvergentConfig::default(), budget));
    }
    match (option_value(args, "--checkpoint"), flag(args, "--resume")) {
        (Some(path), resume) => {
            let path = std::path::Path::new(path);
            let checkpoint = if resume {
                let (checkpoint, summary) = Checkpoint::resume(path)
                    .map_err(|e| format!("cannot resume `{}`: {e}", path.display()))?;
                if let Some(reason) = &summary.dropped_tail {
                    eprintln!("checkpoint: dropped torn final record ({reason})");
                }
                eprintln!(
                    "resuming from {}: {} workload(s) restored",
                    path.display(),
                    summary.restored
                );
                checkpoint
            } else {
                Checkpoint::create(path)
                    .map_err(|e| format!("cannot create `{}`: {e}", path.display()))?
            };
            runner = runner.checkpoint(Arc::new(checkpoint));
        }
        (None, true) => return Err("--resume requires --checkpoint FILE".to_string()),
        (None, false) => {}
    }
    let workloads = vp_workloads::suite();
    let outcome = match workers {
        // Workers profile the train input; the parent owns everything
        // downstream of the profile, so the report and telemetry stay
        // byte-identical to an in-process run.
        Some(n) => {
            let mut fwd = args.to_vec();
            fwd.push("--train".to_string());
            runner.try_run_distributed(&workloads, worker_spec(&fwd, n)?)
        }
        None => runner.try_run(cfg.train),
    };

    let report = vp_bench::optimize_from_outcome(&outcome, &workloads, mode, &cfg)?;
    print!("{}", report.render());
    if !outcome.is_clean() {
        println!();
        print!("{}", outcome.render_failures());
    }
    if !report.all_equivalent() {
        println!(
            "warning: specialized output diverged from the original — guards failed to preserve behaviour"
        );
    }
    report
        .write_report(std::path::Path::new(report_path))
        .map_err(|e| format!("cannot write `{report_path}`: {e}"))?;
    println!("report: {report_path} ({} workloads)", report.workloads.len());

    let mut records = report.optimize_records("optimize");
    records.extend(vp_bench::fault_records("optimize", &outcome));
    vp_bench::write_jsonl(&telemetry_path, &records)
        .map_err(|e| format!("cannot write `{}`: {e}", telemetry_path.display()))?;
    println!("telemetry: {} ({} records)", telemetry_path.display(), records.len());
    if let Some(path) = std::env::var_os("BENCH_OPTIMIZE_JSON") {
        let line = format!("{}\n", report.bench_json());
        std::fs::write(&path, line)
            .map_err(|e| format!("cannot write `{}`: {e}", path.to_string_lossy()))?;
    }
    Ok(())
}

/// `vprof optimize --demo [change-period]` (and its `vprof specialize`
/// alias): the single-kernel specialization walkthrough on the hardcoded
/// demo program, profiling and evaluating the same input.
fn optimize_demo(args: &[String]) -> Result<(), String> {
    use vp_specialize::{demo, evaluate, find_candidates, specialize_all, CandidateOptions};
    let period: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or(Ok(0), |v| v.parse().map_err(|_| format!("bad change period `{v}`")))?;
    let program = demo::program();
    let input = demo::input(20_000, period);

    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(&program, MachineConfig::new().input(input.clone()), BUDGET, &mut profiler)
        .map_err(|e| e.to_string())?;
    let candidates = find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
    println!("candidates: {}", candidates.len());
    for c in &candidates {
        println!(
            "  load @{}  value {:#x}  invariance {:.1}%  execs {}",
            c.load_index,
            c.value,
            c.invariance * 100.0,
            c.executions
        );
    }
    if candidates.is_empty() {
        println!("nothing to specialize (invariance too low?)");
        return Ok(());
    }
    let specialized = specialize_all(&program, &candidates).map_err(|e| e.to_string())?;
    let report = evaluate(&program, &specialized, &input, BUDGET).map_err(|e| e.to_string())?;
    println!("base instructions         {}", report.base_instructions);
    println!("specialized instructions  {}", report.specialized_instructions);
    println!("speedup                   {:.3}x", report.speedup());
    println!("equivalent output         {}", report.equivalent);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&args(&["--help"])).is_ok());
        assert!(dispatch(&args(&[])).is_ok());
        let err = dispatch(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn list_runs() {
        assert!(dispatch(&args(&["list"])).is_ok());
    }

    #[test]
    fn run_and_profile_workloads() {
        assert!(dispatch(&args(&["run", "vortex"])).is_ok());
        assert!(dispatch(&args(&["run", "vortex", "--train"])).is_ok());
        assert!(dispatch(&args(&["profile", "vortex", "--top", "3"])).is_ok());
        assert!(dispatch(&args(&["profile", "vortex", "--all"])).is_ok());
        assert!(dispatch(&args(&["profile", "vortex", "--memory"])).is_ok());
        assert!(dispatch(&args(&["profile", "vortex", "--params"])).is_ok());
        assert!(dispatch(&args(&["profile", "vortex", "--convergent"])).is_ok());
        assert!(dispatch(&args(&["disasm", "vortex"])).is_ok());
    }

    #[test]
    fn profile_suite_serial_and_parallel() {
        let dir = std::env::temp_dir().join("vprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("suite.jsonl");
        let tel = tel.to_str().unwrap();
        assert!(dispatch(&args(&["profile-suite", "--telemetry", tel])).is_ok());
        assert!(dispatch(&args(&["profile-suite", "--jobs", "4", "--train", "--telemetry", tel]))
            .is_ok());
        assert!(dispatch(&args(&[
            "profile-suite",
            "--all",
            "--convergent",
            "--jobs",
            "2",
            "--baseline",
            "--telemetry",
            tel
        ]))
        .is_ok());
        assert!(dispatch(&args(&["profile-suite", "--shards", "2", "--telemetry", tel])).is_ok());
        assert!(dispatch(&args(&["profile-suite", "--jobs", "many"]))
            .unwrap_err()
            .contains("bad --jobs"));
        assert!(dispatch(&args(&["profile-suite", "--shards", "many"]))
            .unwrap_err()
            .contains("bad --shards"));
        assert!(dispatch(&args(&["profile-suite", "--shards", "0"]))
            .unwrap_err()
            .contains("need at least one shard"));
    }

    #[test]
    fn specialize_is_an_optimize_demo_alias() {
        // The old demo invocation keeps working, spelled either way.
        assert!(dispatch(&args(&["specialize"])).is_ok());
        assert!(dispatch(&args(&["specialize", "64"])).is_ok());
        assert!(dispatch(&args(&["optimize", "--demo"])).is_ok());
        assert!(dispatch(&args(&["optimize", "--demo", "64"])).is_ok());
        assert!(dispatch(&args(&["specialize", "sometimes"]))
            .unwrap_err()
            .contains("bad change period"));
        assert!(dispatch(&args(&["optimize", "--demo", "sometimes"]))
            .unwrap_err()
            .contains("bad change period"));
    }

    #[test]
    fn optimize_rejects_bad_flags() {
        assert!(dispatch(&args(&["optimize", "--jobs", "many"]))
            .unwrap_err()
            .contains("bad --jobs"));
        assert!(dispatch(&args(&["optimize", "--shards", "0"]))
            .unwrap_err()
            .contains("need at least one shard"));
        assert!(dispatch(&args(&["optimize", "--jobs", "2", "--workers", "2"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(dispatch(&args(&["optimize", "--min-invariance", "1.5"]))
            .unwrap_err()
            .contains("bad --min-invariance"));
        assert!(dispatch(&args(&["optimize", "--max-ways", "0"]))
            .unwrap_err()
            .contains("bad --max-ways"));
        assert!(dispatch(&args(&["optimize", "--convergent", "--adaptive"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(dispatch(&args(&["optimize", "--resume"]))
            .unwrap_err()
            .contains("--resume requires"));
    }

    #[test]
    fn stats_summarizes_telemetry() {
        let dir = std::env::temp_dir().join("vprof-cli-test-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("stats.jsonl");
        let tel_s = tel.to_str().unwrap();
        assert!(dispatch(&args(&["profile-suite", "--telemetry", tel_s])).is_ok());
        let text = std::fs::read_to_string(&tel).unwrap();
        assert!(text.lines().next().unwrap().contains("\"kind\":\"run\""));
        assert!(dispatch(&args(&["stats", tel_s])).is_ok());
        // Absent and empty telemetry are clean no-record runs, exit 0 —
        // the shape a serve daemon that admitted no session leaves.
        assert!(dispatch(&args(&["stats", "/nonexistent/telemetry.jsonl"])).is_ok());
        std::fs::write(&tel, "").unwrap();
        assert!(dispatch(&args(&["stats", tel_s])).is_ok());
        // A present-but-corrupt file is still an error.
        std::fs::write(&tel, "not json\n").unwrap();
        assert!(dispatch(&args(&["stats", tel_s])).is_err());
        // A directory is unreadable for a reason other than absence.
        assert!(dispatch(&args(&["stats", dir.to_str().unwrap()]))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn verify_detects_corruption() {
        let dir = std::env::temp_dir().join("vprof-cli-test-verify");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("profile.tsv");
        let out_s = out.to_str().unwrap();
        assert!(dispatch(&args(&["profile", "vortex", "--save", out_s])).is_ok());
        assert!(dispatch(&args(&["verify", out_s])).is_ok());
        assert!(dispatch(&args(&["verify", out_s, "--lenient"])).is_ok());
        // Flip one digit in a data row (not the header): strict
        // verification fails, lenient recovers.
        let text = std::fs::read_to_string(&out).unwrap();
        let (header, body) = text.split_once('\n').unwrap();
        let corrupted = format!("{header}\n{}", body.replacen('1', "2", 1));
        assert_ne!(text, corrupted);
        std::fs::write(&out, corrupted).unwrap();
        let err = dispatch(&args(&["verify", out_s])).unwrap_err();
        assert!(err.contains("crc32 mismatch"), "{err}");
        assert!(dispatch(&args(&["verify", out_s, "--lenient"])).is_ok());
        assert!(dispatch(&args(&["verify", "/nonexistent.tsv"])).is_err());
    }

    #[test]
    fn checkpointed_suite_runs_and_resumes() {
        let dir = std::env::temp_dir().join("vprof-cli-test-checkpoint");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("t.jsonl");
        let ckpt = dir.join("c.jsonl");
        let (tel_s, ckpt_s) = (tel.to_str().unwrap(), ckpt.to_str().unwrap());
        assert!(dispatch(&args(&["profile-suite", "--telemetry", tel_s, "--checkpoint", ckpt_s]))
            .is_ok());
        assert!(ckpt.exists());
        // Resuming a complete checkpoint re-runs nothing and still works.
        assert!(dispatch(&args(&[
            "profile-suite",
            "--telemetry",
            tel_s,
            "--checkpoint",
            ckpt_s,
            "--resume"
        ]))
        .is_ok());
        assert!(dispatch(&args(&["profile-suite", "--resume"]))
            .unwrap_err()
            .contains("--resume requires"));
        assert!(dispatch(&args(&["profile-suite", "--retries", "many"]))
            .unwrap_err()
            .contains("bad --retries"));
    }

    #[test]
    fn governed_suite_and_flag_errors() {
        let dir = std::env::temp_dir().join("vprof-cli-test-governor");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("g.jsonl");
        let tel_s = tel.to_str().unwrap();
        // A generous budget and deadline leave the suite clean, emit the
        // governor section, and land governor objects in telemetry.
        assert!(dispatch(&args(&[
            "profile-suite",
            "--telemetry",
            tel_s,
            "--mem-budget-mb",
            "64",
            "--deadline-ms",
            "60000"
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&tel).unwrap();
        assert!(text.contains("\"governor\""), "{text}");
        assert!(dispatch(&args(&["stats", tel_s])).is_ok());
        assert!(dispatch(&args(&["profile-suite", "--deadline-ms", "soon"]))
            .unwrap_err()
            .contains("bad --deadline-ms"));
        assert!(dispatch(&args(&["profile-suite", "--mem-budget-mb", "lots"]))
            .unwrap_err()
            .contains("bad --mem-budget-mb"));
    }

    #[test]
    fn workers_flag_validation() {
        // Threads and worker processes are different parallelism axes;
        // picking both is a configuration error, not a silent override.
        assert!(dispatch(&args(&["profile-suite", "--workers", "2", "--jobs", "2"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(dispatch(&args(&["profile-suite", "--workers", "some"]))
            .unwrap_err()
            .contains("bad --workers"));
    }

    #[test]
    fn record_and_replay_accept_governor_flags() {
        let dir = std::env::temp_dir().join("vprof-cli-test-governed-replay");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("li.vpc");
        let out_s = out.to_str().unwrap();
        assert!(dispatch(&args(&["record", "li", "-o", out_s, "--deadline-ms", "60000"])).is_ok());
        // A generous budget replays to the same profile as an ungoverned
        // replay, serially and sharded.
        let plain = dir.join("plain.tsv");
        let governed = dir.join("governed.tsv");
        let sharded = dir.join("sharded.tsv");
        assert!(dispatch(&args(&["replay", out_s, "--save", plain.to_str().unwrap()])).is_ok());
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--mem-budget-mb",
            "64",
            "--deadline-ms",
            "60000",
            "--save",
            governed.to_str().unwrap()
        ]))
        .is_ok());
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--mem-budget-mb",
            "64",
            "--shards",
            "4",
            "--save",
            sharded.to_str().unwrap()
        ]))
        .is_ok());
        assert_eq!(std::fs::read(&plain).unwrap(), std::fs::read(&governed).unwrap());
        assert_eq!(std::fs::read(&plain).unwrap(), std::fs::read(&sharded).unwrap());
    }

    #[test]
    fn adaptive_suite_and_flag_errors() {
        let dir = std::env::temp_dir().join("vprof-cli-test-adaptive");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("a.jsonl");
        let tel_s = tel.to_str().unwrap();
        assert!(dispatch(&args(&[
            "profile-suite",
            "--adaptive",
            "--phase-window",
            "256",
            "--max-rearms",
            "4",
            "--telemetry",
            tel_s
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&tel).unwrap();
        assert!(text.contains("\"phase\""), "{text}");
        assert!(text.contains("\"mode\":\"adaptive-loads\""), "{text}");
        assert!(dispatch(&args(&["stats", tel_s])).is_ok());
        // Non-adaptive telemetry carries no phase objects.
        assert!(dispatch(&args(&["profile-suite", "--telemetry", tel_s])).is_ok());
        let text = std::fs::read_to_string(&tel).unwrap();
        assert!(!text.contains("\"phase\""), "{text}");
        // Flag validation.
        assert!(dispatch(&args(&["profile-suite", "--adaptive", "--convergent"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(dispatch(&args(&["profile-suite", "--phase-window", "64"]))
            .unwrap_err()
            .contains("require --adaptive"));
        assert!(dispatch(&args(&["profile-suite", "--adaptive", "--phase-window", "0"]))
            .unwrap_err()
            .contains("window must be positive"));
        assert!(dispatch(&args(&["profile-suite", "--adaptive", "--max-rearms", "lots"]))
            .unwrap_err()
            .contains("bad --max-rearms"));
    }

    #[test]
    fn adaptive_replay_matches_across_shards() {
        let dir = std::env::temp_dir().join("vprof-cli-test-adaptive-replay");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("li.vpc");
        let out_s = out.to_str().unwrap();
        assert!(dispatch(&args(&["record", "li", "-o", out_s])).is_ok());
        let serial = dir.join("serial.tsv");
        let sharded = dir.join("sharded.tsv");
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--adaptive",
            "--save",
            serial.to_str().unwrap()
        ]))
        .is_ok());
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--adaptive",
            "--phase-window",
            "256",
            "--shards",
            "4",
            "--save",
            sharded.to_str().unwrap()
        ]))
        .is_ok());
        // Serial and sharded adaptive replays write identical profiles
        // (the window override cannot break entity-shard determinism).
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--adaptive",
            "--phase-window",
            "256",
            "--save",
            serial.to_str().unwrap()
        ]))
        .is_ok());
        assert_eq!(std::fs::read(&serial).unwrap(), std::fs::read(&sharded).unwrap());
        assert!(dispatch(&args(&["replay", out_s, "--adaptive", "--mem-budget-mb", "64"]))
            .unwrap_err()
            .contains("not supported with --adaptive"));
        assert!(dispatch(&args(&["replay", out_s, "--max-rearms", "4"]))
            .unwrap_err()
            .contains("require --adaptive"));
    }

    #[test]
    fn compare_predict_specialize() {
        assert!(dispatch(&args(&["compare", "vortex"])).is_ok());
        assert!(dispatch(&args(&["predict", "vortex"])).is_ok());
        assert!(dispatch(&args(&["specialize", "100"])).is_ok());
    }

    #[test]
    fn error_paths() {
        assert!(dispatch(&args(&["run"])).unwrap_err().contains("missing target"));
        assert!(dispatch(&args(&["run", "nonesuch"])).unwrap_err().contains("neither"));
        assert!(dispatch(&args(&["run", "/nonexistent/x.s"])).unwrap_err().contains("cannot read"));
        assert!(dispatch(&args(&["profile", "vortex", "--top", "NaN"]))
            .unwrap_err()
            .contains("bad --top"));
        assert!(dispatch(&args(&["compare", "nonesuch"])).is_err());
        assert!(dispatch(&args(&["specialize", "bogus"]))
            .unwrap_err()
            .contains("bad change period"));
        assert!(dispatch(&args(&["assemble", "notasm.txt"])).unwrap_err().contains("expects a .s"));
    }

    #[test]
    fn histogram_and_profile_save() {
        assert!(dispatch(&args(&["histogram", "vortex"])).is_ok());
        assert!(dispatch(&args(&["histogram", "vortex", "--all", "--train"])).is_ok());
        let dir = std::env::temp_dir().join("vprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("profile.tsv");
        assert!(dispatch(&args(&["profile", "vortex", "--save", out.to_str().unwrap()])).is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed = vp_core::parse_profile(&text).unwrap();
        assert!(!parsed.is_empty());
    }

    #[test]
    fn trace_record_and_replay() {
        let dir = std::env::temp_dir().join("vprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("li.vpt");
        assert!(dispatch(&args(&["trace", "li", "-o", out.to_str().unwrap()])).is_ok());
        assert!(dispatch(&args(&["profile", out.to_str().unwrap()])).is_ok());
        std::fs::write(&out, b"junk").unwrap();
        assert!(dispatch(&args(&["profile", out.to_str().unwrap()])).is_err());
    }

    #[test]
    fn record_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("vprof-cli-test-record");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("li.vpc");
        let out_s = out.to_str().unwrap();
        assert!(dispatch(&args(&["record", "li", "-o", out_s])).is_ok());
        assert!(dispatch(&args(&["replay", out_s])).is_ok());
        // A sharded replay writes the same profile as a serial one.
        let serial = dir.join("serial.tsv");
        let sharded = dir.join("sharded.tsv");
        assert!(dispatch(&args(&["replay", out_s, "--save", serial.to_str().unwrap()])).is_ok());
        assert!(dispatch(&args(&[
            "replay",
            out_s,
            "--shards",
            "4",
            "--save",
            sharded.to_str().unwrap()
        ]))
        .is_ok());
        assert_eq!(std::fs::read(&serial).unwrap(), std::fs::read(&sharded).unwrap());
        assert!(dispatch(&args(&["replay", out_s, "--shards", "many"]))
            .unwrap_err()
            .contains("bad --shards"));
        assert!(dispatch(&args(&["replay", out_s, "--shards", "0"]))
            .unwrap_err()
            .contains("need at least one shard"));
        // Corruption anywhere in the file is rejected, never mis-decoded.
        let mut bytes = std::fs::read(&out).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&out, &bytes).unwrap();
        assert!(dispatch(&args(&["replay", out_s])).is_err());
        std::fs::write(&out, b"junk").unwrap();
        assert!(dispatch(&args(&["replay", out_s])).is_err());
    }

    #[test]
    fn replay_empty_trace_matches_empty_workload() {
        let dir = std::env::temp_dir().join("vprof-cli-test-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("empty.vpc");
        let out_s = out.to_str().unwrap();
        // A trace with a header and trailer but zero events replays to a
        // zero-row profile without panicking, serially and sharded.
        std::fs::write(&out, vp_instrument::TraceEncoder::new().finish()).unwrap();
        let saved = dir.join("empty.tsv");
        assert!(dispatch(&args(&["replay", out_s, "--save", saved.to_str().unwrap()])).is_ok());
        assert!(dispatch(&args(&["replay", out_s, "--shards", "3"])).is_ok());
        let text = std::fs::read_to_string(&saved).unwrap();
        assert!(vp_core::parse_profile(&text).unwrap().is_empty());
        // The bare magic with no trailer is truncated, not empty.
        std::fs::write(&out, b"VPC1").unwrap();
        assert!(dispatch(&args(&["replay", out_s])).is_err());
    }

    #[test]
    fn assemble_object_round_trip() {
        let dir = std::env::temp_dir().join("vprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("prog.s");
        let obj = dir.join("prog.vpo");
        std::fs::write(&src, ".text\nmain: li a0, 9\n sys exit\n").unwrap();
        assert!(dispatch(&args(&["assemble", src.to_str().unwrap(), "-o", obj.to_str().unwrap()]))
            .is_ok());
        assert!(dispatch(&args(&["run", obj.to_str().unwrap()])).is_ok());
        assert!(dispatch(&args(&["disasm", obj.to_str().unwrap()])).is_ok());
        // Corrupt object is rejected cleanly.
        std::fs::write(&obj, b"garbage").unwrap();
        assert!(dispatch(&args(&["run", obj.to_str().unwrap()])).is_err());
    }
}
