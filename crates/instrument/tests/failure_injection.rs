//! Failure injection: instrumented runs that fault must surface the fault
//! and leave the analysis with exactly the events that happened before it.

use vp_instrument::{Analysis, Instrumenter};
use vp_sim::{InstrEvent, Machine, MachineConfig, SimError};

#[derive(Default)]
struct Counter(u64);

impl Analysis for Counter {
    fn after_instr(&mut self, _m: &Machine, _ev: &InstrEvent) {
        self.0 += 1;
    }
}

#[test]
fn memory_fault_mid_run() {
    // Third instruction faults (load far out of bounds via negative base).
    let program =
        vp_asm::assemble(".text\nmain: li r1, 1\n li r2, -8\n ldd r3, 0(r2)\n sys exit\n").unwrap();
    let mut counter = Counter::default();
    let err =
        Instrumenter::new().run(&program, MachineConfig::new(), 1000, &mut counter).unwrap_err();
    assert!(matches!(err, SimError::Mem(_)), "{err}");
    // The two successful instructions were observed; the faulting one not.
    assert_eq!(counter.0, 2);
}

#[test]
fn budget_exhaustion_mid_run() {
    let program = vp_asm::assemble(".text\nmain: j main\n").unwrap();
    let mut counter = Counter::default();
    let err =
        Instrumenter::new().run(&program, MachineConfig::new(), 50, &mut counter).unwrap_err();
    assert_eq!(err, SimError::BudgetExhausted { budget: 50 });
    assert_eq!(counter.0, 50, "every executed instruction was observed");
}

#[test]
fn pc_escape_is_reported() {
    // Fall off the end of the text section (no sys exit).
    let program = vp_asm::assemble(".text\nmain: li r1, 1\n").unwrap();
    let mut counter = Counter::default();
    let err =
        Instrumenter::new().run(&program, MachineConfig::new(), 1000, &mut counter).unwrap_err();
    assert!(matches!(err, SimError::PcOutOfRange { .. }), "{err}");
}

#[test]
fn bad_indirect_jump_is_reported() {
    let program = vp_asm::assemble(".text\nmain: li r1, 6\n jr r1\n sys exit\n").unwrap();
    let mut counter = Counter::default();
    let err =
        Instrumenter::new().run(&program, MachineConfig::new(), 1000, &mut counter).unwrap_err();
    assert!(matches!(err, SimError::BadJumpTarget { address: 6 }), "{err}");
}

#[test]
fn image_too_large_is_reported() {
    let program = vp_asm::assemble(".data\nbuf: .space 64\n.text\nmain: sys exit\n").unwrap();
    let mut counter = Counter::default();
    let err = Instrumenter::new()
        .run(&program, MachineConfig::new().memory_size(1024), 1000, &mut counter)
        .unwrap_err();
    assert!(matches!(err, SimError::ImageTooLarge { .. }), "{err}");
    assert_eq!(counter.0, 0, "nothing executed");
}
