//! Property tests for the session wire protocol: any transcript of
//! session messages survives any split of the byte stream across
//! `read()` boundaries (down to 1-byte reads), truncation and bit
//! damage produce *typed* errors after a clean prefix — never a
//! mis-decoded message — and the retransmit/ack model is idempotent
//! under duplicated chunks. `scan_log` recovers exactly the durable
//! prefix of a crash-torn session log.

use proptest::prelude::*;
use vp_instrument::frame::{self, FrameError, FrameReader, FRAME_MAGIC};
use vp_instrument::net::{self, classify_chunk, scan_log, ChunkDisposition, MsgError, SessionMsg};

/// A reader that hands back the stream in caller-chosen slice sizes,
/// cycling through `splits` — the adversarial-kernel simulation: short
/// reads, 1-byte reads, uneven bursts.
struct Chopped<'a> {
    bytes: &'a [u8],
    pos: usize,
    splits: &'a [usize],
    next: usize,
}

impl std::io::Read for Chopped<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() {
            return Ok(0);
        }
        let step = self.splits.get(self.next).copied().unwrap_or(1).max(1);
        self.next = (self.next + 1) % self.splits.len().max(1);
        let n = step.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn arb_name() -> impl Strategy<Value = String> {
    // A palette with multi-byte code points: UTF-8 length and byte
    // length disagree, which is exactly where a framing bug would hide.
    const PALETTE: [char; 8] = ['a', 'Z', '0', '_', '-', '.', '\u{b5}', '\u{5024}'];
    prop::collection::vec(any::<u8>(), 0..12)
        .prop_map(|bytes| bytes.into_iter().map(|b| PALETTE[(b % 8) as usize]).collect())
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

/// Every message variant, both directions, with boundary-skewed fields.
fn arb_msg() -> impl Strategy<Value = SessionMsg> {
    let cursor = prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()];
    prop_oneof![
        (arb_name(), arb_name())
            .prop_map(|(tenant, workload)| SessionMsg::Hello { tenant, workload }),
        (cursor.clone(), any::<u32>(), any::<u32>(), arb_payload())
            .prop_map(|(seq, count, crc, payload)| SessionMsg::Chunk { seq, count, crc, payload }),
        Just(SessionMsg::Query),
        Just(SessionMsg::End),
        Just(SessionMsg::Shutdown),
        cursor.clone().prop_map(|acked| SessionMsg::HelloOk { acked }),
        cursor.clone().prop_map(|acked| SessionMsg::Ack { acked }),
        arb_name().prop_map(|reason| SessionMsg::Busy { reason }),
        cursor.clone().prop_map(|acked| SessionMsg::Throttle { acked }),
        arb_name().prop_map(|json| SessionMsg::Stats { json }),
        (cursor, arb_name()).prop_map(|(acked, profile)| SessionMsg::EndOk { acked, profile }),
        arb_name().prop_map(|reason| SessionMsg::Err { reason }),
    ]
}

fn arb_transcript() -> impl Strategy<Value = Vec<SessionMsg>> {
    prop::collection::vec(arb_msg(), 0..12)
}

/// Encodes a transcript the way both peers do: magic, then frames.
fn encode_transcript(msgs: &[SessionMsg]) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_magic(&mut out).unwrap();
    for m in msgs {
        net::write_msg(&mut out, m).unwrap();
    }
    out
}

/// Byte offsets at which the stream sits on a frame boundary (after the
/// magic, after each frame).
fn boundaries(msgs: &[SessionMsg]) -> Vec<usize> {
    let mut offs = vec![FRAME_MAGIC.len()];
    let mut at = FRAME_MAGIC.len();
    for m in msgs {
        let (kind, payload) = m.encode();
        at += frame::encode_frame(kind, &payload).len();
        offs.push(at);
    }
    offs
}

/// Reads messages until the first error.
fn drain<R: std::io::Read>(reader: &mut FrameReader<R>) -> (Vec<SessionMsg>, MsgError) {
    let mut msgs = Vec::new();
    loop {
        match net::read_msg(reader) {
            Ok(m) => msgs.push(m),
            Err(e) => return (msgs, e),
        }
    }
}

proptest! {
    #[test]
    fn any_read_chopping_preserves_the_transcript(
        msgs in arb_transcript(),
        splits in prop::collection::vec(1usize..7, 1..10),
    ) {
        let bytes = encode_transcript(&msgs);
        let mut reader =
            FrameReader::new(Chopped { bytes: &bytes, pos: 0, splits: &splits, next: 0 });
        reader.expect_magic().unwrap();
        let (got, err) = drain(&mut reader);
        prop_assert_eq!(got, msgs);
        prop_assert!(matches!(err, MsgError::Frame(FrameError::PeerClosed)));
    }

    #[test]
    fn truncation_yields_a_clean_prefix_and_a_typed_error(
        msgs in arb_transcript(),
        cut in any::<u64>(),
        splits in prop::collection::vec(1usize..5, 1..6),
    ) {
        // Cutting the stream anywhere loses at most the suffix: every
        // message before the cut decodes intact, the cut itself is
        // PeerClosed exactly on a frame boundary and Torn anywhere
        // inside a frame. Nothing ever decodes *differently*.
        let bytes = encode_transcript(&msgs);
        let cut = (cut % bytes.len() as u64) as usize;
        let offs = boundaries(&msgs);
        let mut reader =
            FrameReader::new(Chopped { bytes: &bytes[..cut], pos: 0, splits: &splits, next: 0 });
        if cut < FRAME_MAGIC.len() {
            prop_assert!(matches!(reader.expect_magic(), Err(FrameError::Torn(_) | FrameError::PeerClosed)));
            return Ok(());
        }
        reader.expect_magic().unwrap();
        let (got, err) = drain(&mut reader);
        let whole = offs.iter().filter(|&&o| o <= cut).count() - 1;
        prop_assert_eq!(got.as_slice(), &msgs[..whole]);
        if offs.contains(&cut) {
            prop_assert!(matches!(err, MsgError::Frame(FrameError::PeerClosed)));
        } else {
            prop_assert!(matches!(err, MsgError::Frame(FrameError::Torn(_))));
        }
    }

    #[test]
    fn bit_damage_never_mis_decodes(
        msgs in prop::collection::vec(arb_msg(), 1..12),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        // Flip one bit anywhere past the magic: every message before the
        // damaged frame decodes verbatim, the damaged frame fails with a
        // typed error — Corrupt (CRC or length), Torn (a length flip
        // claiming bytes beyond the stream) — and the reader never
        // reports a clean close. Every frame byte is covered by the
        // header CRC or changes the framing, so a mis-decode would need
        // a CRC collision.
        let mut bytes = encode_transcript(&msgs);
        let lo = FRAME_MAGIC.len() as u64;
        let pos = (lo + pos % (bytes.len() as u64 - lo)) as usize;
        bytes[pos] ^= 1 << bit;
        let mut reader = FrameReader::new(&bytes[..]);
        reader.expect_magic().unwrap();
        let (got, err) = drain(&mut reader);
        // The damaged frame is the one containing `pos`.
        let offs = boundaries(&msgs);
        let intact = offs.iter().filter(|&&o| o <= pos).count() - 1;
        prop_assert_eq!(got.as_slice(), &msgs[..intact]);
        prop_assert!(!matches!(err, MsgError::Frame(FrameError::PeerClosed)));
    }

    #[test]
    fn retransmits_after_acks_are_idempotent(
        n in 0u64..40,
        dups in prop::collection::vec((any::<u64>(), any::<u64>()), 0..30),
        gap in 1u64..5,
    ) {
        // Model the server's chunk cursor against a client that resends
        // arbitrary already-sent chunks after every ACK (the crash-retry
        // pattern): each fresh chunk is accepted exactly once, every
        // duplicate is dropped, and the cursor ends at n regardless of
        // the noise. A skip is always a typed Gap.
        let mut sends: Vec<u64> = Vec::new();
        for seq in 0..n {
            for &(at, dup) in &dups {
                if at % n.max(1) == seq {
                    sends.push(dup % (seq + 1));
                }
            }
            sends.push(seq);
        }
        let mut next = 0u64;
        let mut accepted = Vec::new();
        for &seq in &sends {
            match classify_chunk(seq, next) {
                ChunkDisposition::Accept => {
                    accepted.push(seq);
                    next += 1;
                }
                ChunkDisposition::Duplicate => prop_assert!(seq < next),
                ChunkDisposition::Gap => prop_assert!(false, "valid schedule produced a gap"),
            }
        }
        prop_assert_eq!(next, n);
        prop_assert_eq!(accepted, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(classify_chunk(next + gap, next), ChunkDisposition::Gap);
    }

    #[test]
    fn scan_log_recovers_exactly_the_durable_prefix(
        msgs in prop::collection::vec(arb_msg(), 0..8),
        tear in any::<u64>(),
    ) {
        // A session log is magic + appended frames; kill -9 mid-append
        // leaves a strict prefix of one more frame. The scan must keep
        // every whole frame, report the tear, and hand back a good_len
        // that re-scans clean — the resume invariant.
        let clean = encode_transcript(&msgs);
        let scan = scan_log(&clean).unwrap();
        prop_assert_eq!(scan.frames.len(), msgs.len());
        prop_assert_eq!(scan.good_len, clean.len());
        prop_assert!(!scan.torn);

        let (kind, payload) = SessionMsg::Chunk {
            seq: u64::MAX,
            count: 7,
            crc: 0xDEAD_BEEF,
            payload: vec![0xAB; 21],
        }
        .encode();
        let partial = frame::encode_frame(kind, &payload);
        let keep = 1 + (tear % (partial.len() as u64 - 1)) as usize;
        let mut torn = clean.clone();
        torn.extend_from_slice(&partial[..keep]);

        let scan = scan_log(&torn).unwrap();
        prop_assert_eq!(scan.frames.len(), msgs.len());
        prop_assert_eq!(scan.good_len, clean.len());
        prop_assert!(scan.torn);

        let rescan = scan_log(&torn[..scan.good_len]).unwrap();
        prop_assert!(!rescan.torn);
        prop_assert_eq!(rescan.frames.len(), msgs.len());
        for (frame, msg) in rescan.frames.iter().zip(&msgs) {
            prop_assert_eq!(&SessionMsg::decode(frame).unwrap(), msg);
        }
    }
}

#[test]
fn one_byte_reads_decode_a_full_conversation() {
    let msgs = vec![
        SessionMsg::Hello { tenant: "acme".into(), workload: "li".into() },
        SessionMsg::Chunk { seq: 0, count: 3, crc: 9, payload: vec![1, 2, 3] },
        SessionMsg::Query,
        SessionMsg::End,
    ];
    let bytes = encode_transcript(&msgs);
    let splits = [1usize];
    let mut reader = FrameReader::new(Chopped { bytes: &bytes, pos: 0, splits: &splits, next: 0 });
    reader.expect_magic().unwrap();
    let (got, err) = drain(&mut reader);
    assert_eq!(got, msgs);
    assert!(matches!(err, MsgError::Frame(FrameError::PeerClosed)));
}
