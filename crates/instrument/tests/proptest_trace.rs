//! Property tests for the binary trace codec: encoding is lossless for
//! arbitrary event streams at any chunking, and damaged traces are
//! *rejected* — never silently mis-decoded.

use proptest::prelude::*;
use vp_instrument::trace_codec::{decode, encode, stats};
use vp_obs::Crc32;

/// Canonical LEB128: minimal length, final byte nonzero for multi-byte.
fn write_varint_canonical(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The same value spelled with `pad` redundant trailing groups — a
/// non-canonical form the decoder must reject.
fn write_varint_overlong(out: &mut Vec<u8>, v: u64, pad: usize) {
    let mut bytes = Vec::new();
    write_varint_canonical(&mut bytes, v);
    // Ten 7-bit groups exhaust a u64; don't overflow the decoder's limit.
    let pad = pad.min(10 - bytes.len());
    if pad == 0 {
        out.extend_from_slice(&bytes);
        return;
    }
    let last = bytes.len() - 1;
    bytes[last] |= 0x80;
    bytes.extend(std::iter::repeat_n(0x80, pad - 1));
    bytes.push(0x00);
    out.extend_from_slice(&bytes);
}

/// A syntactically valid single-chunk trace around `payload`: magic,
/// CRC-correct chunk header claiming `count` events, matching trailer.
fn craft_trace(count: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = b"VPC1".to_vec();
    let len = (payload.len() as u32).to_le_bytes();
    let count_bytes = count.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len);
    crc.update(&count_bytes);
    crc.update(payload);
    out.extend_from_slice(&len);
    out.extend_from_slice(&count_bytes);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    let mut trailer = Vec::new();
    trailer.extend_from_slice(&0u32.to_le_bytes());
    trailer.extend_from_slice(&u64::from(count).to_le_bytes());
    let trailer_crc = {
        let mut c = Crc32::new();
        c.update(&trailer);
        c.finish()
    };
    out.extend_from_slice(&trailer);
    out.extend_from_slice(&trailer_crc.to_le_bytes());
    out
}

/// Values skewed toward the varint boundaries (0, one-byte, two-byte,
/// max) with a uniform tail — the cases where a length bug would hide.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..=0x7F,
        0x80u64..=0x3FFF,
        Just(u64::MAX),
        Just(1u64 << 63),
        any::<u64>(),
    ]
}

fn arb_pc() -> impl Strategy<Value = u32> {
    prop_oneof![0u32..=255, Just(u32::MAX), any::<u32>()]
}

fn arb_events() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((arb_pc(), arb_value()), 0..400)
}

proptest! {
    #[test]
    fn round_trip_is_identity(events in arb_events(), chunk in 1usize..600) {
        let bytes = encode(&events, chunk);
        prop_assert_eq!(decode(&bytes).unwrap(), events.clone());
        let s = stats(&bytes).unwrap();
        prop_assert_eq!(s.events, events.len() as u64);
        prop_assert_eq!(s.chunks as usize, events.len().div_ceil(chunk));
        prop_assert_eq!(s.bytes as usize, bytes.len());
    }

    #[test]
    fn chunk_boundaries_are_invisible(
        events in arb_events(),
        a in 1usize..600,
        b in 1usize..600,
    ) {
        // Any two chunkings of the same stream decode identically; only
        // the container layout differs.
        prop_assert_eq!(decode(&encode(&events, a)).unwrap(), decode(&encode(&events, b)).unwrap());
    }

    #[test]
    fn encoding_is_bijective_on_the_wire(events in arb_events(), chunk in 1usize..600) {
        // Canonical varints make the wire form unique: re-encoding the
        // decoded stream reproduces the original container byte for byte,
        // so decode ∘ encode is the identity in *both* directions.
        let bytes = encode(&events, chunk);
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(encode(&decoded, chunk), bytes);
    }

    #[test]
    fn overlong_varint_payloads_are_rejected(value in any::<u64>(), pad in 1usize..3) {
        // Hand-build a chunk whose first varint carries `pad` redundant
        // continuation bytes (same value, non-canonical form). The CRC is
        // valid, so only the canonical-varint rule can reject it — and it
        // must.
        let mut payload = Vec::new();
        write_varint_overlong(&mut payload, 7, pad); // pc
        write_varint_canonical(&mut payload, value); // value
        let trace = craft_trace(1, &payload);
        prop_assert!(decode(&trace).is_err());

        // The canonical spelling of the same event decodes fine.
        let mut canon = Vec::new();
        write_varint_canonical(&mut canon, 7);
        write_varint_canonical(&mut canon, value);
        let trace = craft_trace(1, &canon);
        prop_assert_eq!(decode(&trace).unwrap(), vec![(7u32, value)]);
    }

    #[test]
    fn truncated_traces_are_rejected(events in arb_events(), chunk in 1usize..600, cut in any::<u64>()) {
        // Every strict prefix is missing at least the trailer, so it must
        // error — not decode to a shorter stream.
        let bytes = encode(&events, chunk);
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flips_are_rejected(events in arb_events(), chunk in 1usize..600, pos in any::<u64>(), bit in 0u32..8) {
        // Every byte of the container is covered by the magic check, a
        // chunk CRC, or the trailer CRC, so any single-bit flip must be
        // detected.
        let mut bytes = encode(&events, chunk);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(decode(&bytes).is_err());
    }
}

#[test]
fn empty_stream_round_trips() {
    let bytes = encode(&[], 64);
    assert_eq!(decode(&bytes).unwrap(), Vec::<(u32, u64)>::new());
    let s = stats(&bytes).unwrap();
    assert_eq!((s.events, s.chunks), (0, 0));
}
