//! Property tests for the binary trace codec: encoding is lossless for
//! arbitrary event streams at any chunking, and damaged traces are
//! *rejected* — never silently mis-decoded.

use proptest::prelude::*;
use vp_instrument::trace_codec::{decode, encode, stats};

/// Values skewed toward the varint boundaries (0, one-byte, two-byte,
/// max) with a uniform tail — the cases where a length bug would hide.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..=0x7F,
        0x80u64..=0x3FFF,
        Just(u64::MAX),
        Just(1u64 << 63),
        any::<u64>(),
    ]
}

fn arb_pc() -> impl Strategy<Value = u32> {
    prop_oneof![0u32..=255, Just(u32::MAX), any::<u32>()]
}

fn arb_events() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((arb_pc(), arb_value()), 0..400)
}

proptest! {
    #[test]
    fn round_trip_is_identity(events in arb_events(), chunk in 1usize..600) {
        let bytes = encode(&events, chunk);
        prop_assert_eq!(decode(&bytes).unwrap(), events.clone());
        let s = stats(&bytes).unwrap();
        prop_assert_eq!(s.events, events.len() as u64);
        prop_assert_eq!(s.chunks as usize, events.len().div_ceil(chunk));
        prop_assert_eq!(s.bytes as usize, bytes.len());
    }

    #[test]
    fn chunk_boundaries_are_invisible(
        events in arb_events(),
        a in 1usize..600,
        b in 1usize..600,
    ) {
        // Any two chunkings of the same stream decode identically; only
        // the container layout differs.
        prop_assert_eq!(decode(&encode(&events, a)).unwrap(), decode(&encode(&events, b)).unwrap());
    }

    #[test]
    fn truncated_traces_are_rejected(events in arb_events(), chunk in 1usize..600, cut in any::<u64>()) {
        // Every strict prefix is missing at least the trailer, so it must
        // error — not decode to a shorter stream.
        let bytes = encode(&events, chunk);
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flips_are_rejected(events in arb_events(), chunk in 1usize..600, pos in any::<u64>(), bit in 0u32..8) {
        // Every byte of the container is covered by the magic check, a
        // chunk CRC, or the trailer CRC, so any single-bit flip must be
        // detected.
        let mut bytes = encode(&events, chunk);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(decode(&bytes).is_err());
    }
}

#[test]
fn empty_stream_round_trips() {
    let bytes = encode(&[], 64);
    assert_eq!(decode(&bytes).unwrap(), Vec::<(u32, u64)>::new());
    let s = stats(&bytes).unwrap();
    assert_eq!((s.events, s.chunks), (0, 0));
}
