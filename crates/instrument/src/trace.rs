//! Trace recording and replay.
//!
//! Trace-driven analysis was the standard methodology of the paper's era:
//! record a program's dynamic event stream once, then run any number of
//! analyses offline without re-executing the program. This module records
//! the instrumentation event stream into a compact in-memory (or on-disk)
//! [`Trace`] and replays it into any [`Analysis`] — producing *identical*
//! profiles to a live run, which the tests verify.
//!
//! Note that replay cannot provide the live [`Machine`] state, so analyses
//! that inspect machine registers beyond the event payload see a parked
//! machine. Every profiler in `vp-core` uses only the event payloads.

use std::fmt;

use vp_asm::Program;
use vp_isa::{DecodeError, Instruction, Reg, Value};
use vp_sim::{InstrEvent, Machine, MachineConfig, MemAccess, SimError};

use crate::plan::Selection;
use crate::runner::{Analysis, EventCounts, Instrumenter};

/// One recorded event: the serializable subset of [`InstrEvent`] the
/// profilers consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Instruction index.
    pub index: u32,
    /// Encoded instruction word.
    pub instr_word: u32,
    /// Destination register and value, if the instruction wrote one.
    pub dest: Option<(Reg, Value)>,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// Next instruction index.
    pub next_index: u32,
}

/// A recorded event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Error when deserializing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Byte stream is not a trace or is cut short.
    Malformed,
    /// An instruction word failed to decode during replay.
    BadInstruction(DecodeError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed => write!(f, "malformed trace"),
            TraceError::BadInstruction(e) => write!(f, "bad instruction in trace: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

const MAGIC: &[u8; 4] = b"VPT1";
const EVENT_BYTES: usize = 4 + 4 + 1 + 1 + 8 + 1 + 8 + 8 + 1 + 4;

impl Trace {
    /// Records the selected events of one program run.
    ///
    /// # Errors
    ///
    /// Propagates emulator faults from the recording run.
    pub fn record(
        program: &Program,
        config: MachineConfig,
        budget: u64,
        selection: Selection,
    ) -> Result<Trace, SimError> {
        struct Recorder(Vec<TraceEvent>);
        impl Analysis for Recorder {
            fn after_instr(&mut self, _m: &Machine, ev: &InstrEvent) {
                self.0.push(TraceEvent {
                    index: ev.index,
                    instr_word: ev.instr.encode(),
                    dest: ev.dest,
                    mem: ev.mem,
                    next_index: ev.next_index,
                });
            }
        }
        let mut recorder = Recorder(Vec::new());
        Instrumenter::new().select(selection).run(program, config, budget, &mut recorder)?;
        Ok(Trace { events: recorder.0 })
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Replays the trace into an analysis. The analysis receives the same
    /// `after_instr`/`on_load`/`on_store` sequence a live instrumented run
    /// would have delivered (procedure hooks are not replayed).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadInstruction`] if an event's instruction
    /// word does not decode (corrupt trace).
    pub fn replay<A: Analysis>(&self, analysis: &mut A) -> Result<EventCounts, TraceError> {
        // A parked machine to satisfy the Analysis signature.
        let program = Program::from_parts(
            vec![Instruction::Sys { call: vp_isa::Syscall::Exit }],
            Vec::new(),
            Default::default(),
            Vec::new(),
            0,
        );
        let machine = Machine::new(program, MachineConfig::new()).expect("parked machine");
        let mut counts = EventCounts::default();
        for ev in &self.events {
            let instr = Instruction::decode(ev.instr_word).map_err(TraceError::BadInstruction)?;
            let event = InstrEvent {
                index: ev.index,
                instr,
                dest: ev.dest,
                mem: ev.mem,
                taken: None,
                next_index: ev.next_index,
            };
            counts.instr_events += 1;
            analysis.after_instr(&machine, &event);
            if let Some(access) = &event.mem {
                if access.store {
                    counts.store_events += 1;
                    analysis.on_store(&machine, event.index, access);
                } else {
                    counts.load_events += 1;
                    analysis.on_load(&machine, event.index, access);
                }
            }
        }
        Ok(counts)
    }

    /// Serializes the trace (little-endian, fixed-width records).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.events.len() * EVENT_BYTES);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for ev in &self.events {
            out.extend_from_slice(&ev.index.to_le_bytes());
            out.extend_from_slice(&ev.instr_word.to_le_bytes());
            match ev.dest {
                Some((r, v)) => {
                    out.push(1);
                    out.push(r.index() as u8);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                None => {
                    out.push(0);
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
            match &ev.mem {
                Some(a) => {
                    out.push(1);
                    out.extend_from_slice(&a.address.to_le_bytes());
                    out.extend_from_slice(&a.value.to_le_bytes());
                    out.push(u8::from(a.store) | (width_tag(a.width) << 1));
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&[0u8; 17]);
                }
            }
            out.extend_from_slice(&ev.next_index.to_le_bytes());
        }
        out
    }

    /// Deserializes a trace written by [`to_bytes`](Trace::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] on truncation or bad framing.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < 8 || &bytes[..4] != MAGIC {
            return Err(TraceError::Malformed);
        }
        let n = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        let body = &bytes[8..];
        if body.len() != n * EVENT_BYTES {
            return Err(TraceError::Malformed);
        }
        let mut events = Vec::with_capacity(n);
        for chunk in body.chunks_exact(EVENT_BYTES) {
            let u32_at = |o: usize| u32::from_le_bytes(chunk[o..o + 4].try_into().expect("4"));
            let u64_at = |o: usize| u64::from_le_bytes(chunk[o..o + 8].try_into().expect("8"));
            let dest = if chunk[8] == 1 {
                let reg = Reg::from_index(chunk[9] as usize).ok_or(TraceError::Malformed)?;
                Some((reg, u64_at(10)))
            } else {
                None
            };
            let mem = if chunk[18] == 1 {
                let flags = chunk[35];
                Some(MemAccess {
                    address: u64_at(19),
                    value: u64_at(27),
                    store: flags & 1 == 1,
                    width: width_from_tag(flags >> 1).ok_or(TraceError::Malformed)?,
                })
            } else {
                None
            };
            events.push(TraceEvent {
                index: u32_at(0),
                instr_word: u32_at(4),
                dest,
                mem,
                next_index: u32_at(36),
            });
        }
        Ok(Trace { events })
    }
}

fn width_tag(w: vp_isa::MemWidth) -> u8 {
    match w {
        vp_isa::MemWidth::B => 0,
        vp_isa::MemWidth::H => 1,
        vp_isa::MemWidth::W => 2,
        vp_isa::MemWidth::D => 3,
    }
}

fn width_from_tag(tag: u8) -> Option<vp_isa::MemWidth> {
    vp_isa::MemWidth::ALL.get(tag as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        vp_asm::assemble(
            r#"
            .data
            x: .quad 7
            .text
            main:
                la  r8, x
                li  r9, 20
            loop:
                ldd r2, 0(r8)
                add r3, r2, r9
                std r3, 0(r8)
                std r0, 0(r8)
                ldd r2, 0(r8)
                addi r9, r9, -1
                bnz r9, loop
                sys exit
            "#,
        )
        .unwrap()
    }

    #[test]
    fn record_and_serialize_round_trip() {
        let program = sample_program();
        let trace = Trace::record(&program, MachineConfig::new(), 100_000, Selection::All).unwrap();
        assert!(!trace.is_empty());
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
        assert_eq!(trace.events().len(), trace.len());
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert_eq!(Trace::from_bytes(b"nope").unwrap_err(), TraceError::Malformed);
        let program = sample_program();
        let trace =
            Trace::record(&program, MachineConfig::new(), 100_000, Selection::LoadsOnly).unwrap();
        let bytes = trace.to_bytes();
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_count = bytes.clone();
        wrong_count[4..8].copy_from_slice(&9999u32.to_le_bytes());
        assert!(Trace::from_bytes(&wrong_count).is_err());
    }

    #[test]
    fn replay_counts_match_live_counts() {
        let program = sample_program();
        struct Null;
        impl Analysis for Null {}
        let live = Instrumenter::new()
            .select(Selection::MemoryOps)
            .run(&program, MachineConfig::new(), 100_000, &mut Null)
            .unwrap();
        let trace =
            Trace::record(&program, MachineConfig::new(), 100_000, Selection::MemoryOps).unwrap();
        let counts = trace.replay(&mut Null).unwrap();
        assert_eq!(counts.instr_events, live.counts.instr_events);
        assert_eq!(counts.load_events, live.counts.load_events);
        assert_eq!(counts.store_events, live.counts.store_events);
    }
}
