//! # vp-instrument — ATOM-style binary instrumentation for VP64
//!
//! The Value Profiling paper collected its profiles with ATOM (Srivastava &
//! Eustace \[35\]): a tool that lets analysis code be attached to program
//! points — before/after instructions, at loads and stores, at procedure
//! entry and exit — and that exposes the program as a hierarchy of
//! procedures, basic blocks and instructions.
//!
//! This crate reproduces that programming model over the `vp-sim` emulator:
//!
//! * [`ProgramView`] — the static query interface (procedures → basic
//!   blocks → instructions),
//! * [`Analysis`] — the trait analysis tools implement; its callbacks
//!   receive the executing [`vp_sim::Machine`] plus the event data,
//! * [`Instrumenter`] — selects instrumentation points
//!   ([`Selection`]) and runs a program with the analysis attached,
//!   counting every analysis invocation so profiling *overhead* can be
//!   reported exactly (experiment E12),
//! * [`Trace`] — record the event stream once, replay it into any number
//!   of analyses offline (the era's trace-driven methodology),
//! * [`trace_codec`] — the compact varint-chunked `(pc, value)` trace
//!   format behind `vprof record`/`replay` and intra-workload sharding,
//! * [`cancel`] — cooperative cancellation tokens and deadlines; the
//!   runner, replay, and the parallel maps check them at chunk
//!   boundaries so a hung workload can be cut loose without killing
//!   anything.
//!
//! ## Example: counting load instructions
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use vp_instrument::{Analysis, Instrumenter, Selection};
//! use vp_sim::{InstrEvent, Machine, MachineConfig};
//!
//! struct LoadCounter(u64);
//! impl Analysis for LoadCounter {
//!     fn after_instr(&mut self, _m: &Machine, event: &InstrEvent) {
//!         if event.instr.is_load() {
//!             self.0 += 1;
//!         }
//!     }
//! }
//!
//! let program = vp_asm::assemble(
//!     ".data\nx: .quad 9\n.text\nmain: la r1, x\n ldd r2, 0(r1)\n sys exit\n",
//! )?;
//! let mut counter = LoadCounter(0);
//! let run = Instrumenter::new()
//!     .select(Selection::LoadsOnly)
//!     .run(&program, MachineConfig::new(), 1_000, &mut counter)?;
//! assert_eq!(counter.0, 1);
//! assert_eq!(run.counts.instr_events, 1); // only the load was instrumented
//! # Ok(())
//! # }
//! ```

pub mod cancel;
pub mod frame;
pub mod net;
pub mod parallel;
pub mod plan;
pub mod runner;
pub mod trace;
pub mod trace_codec;
pub mod view;

pub use cancel::{CancelToken, Cancelled};
pub use frame::{Frame, FrameError, FrameReader};
pub use net::{MsgError, NetListener, SessionMsg};
pub use parallel::{
    effective_jobs, parallel_map, parallel_map_observed, try_parallel_map,
    try_parallel_map_deadline, try_parallel_map_observed, FailureKind, ItemFailure,
};
pub use plan::Selection;
pub use runner::{Analysis, EventCounts, InstrumentedRun, Instrumenter};
pub use trace::{Trace, TraceError, TraceEvent};
pub use trace_codec::{ChunkReader, CodecError, TraceEncoder, TraceFile, TraceStats};
pub use view::{InstrRef, ProcView, ProgramView};
