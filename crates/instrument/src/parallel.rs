//! A minimal work-stealing-free parallel map over a slice, built on
//! `std::thread::scope` — no external dependencies.
//!
//! The suite-profiling driver fans out one workload per worker: each item
//! is claimed from a shared atomic index and its result written into a
//! dedicated output slot, so results come back in input order regardless
//! of which worker ran which item or in what order they finished.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

use vp_obs::recorder::Stopwatch;
use vp_obs::{CounterId, HistId, NullRecorder, Recorder};

/// Resolves a `--jobs` argument: `0` means "use the machine's available
/// parallelism" (falling back to 1 when that cannot be determined).
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Applies `f` to every item of `items` on up to `jobs` worker threads
/// (`0` = available parallelism) and returns the results in input order.
///
/// Items are claimed dynamically, so uneven per-item cost balances across
/// workers. With `jobs <= 1` (or a single item) everything runs on the
/// calling thread — no threads are spawned and the result is identical by
/// construction, which is what makes `--jobs N` output comparable to
/// serial runs.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
pub fn parallel_map<T, O, F>(jobs: usize, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    parallel_map_observed(jobs, items, f, &NullRecorder)
}

/// [`parallel_map`] with self-profiling: per-item wall times, per-worker
/// busy and queue-wait times, and an item counter go to `rec`. With a
/// disabled recorder (the default [`NullRecorder`]) no clock is ever read
/// and each site costs one branch, so the uninstrumented path keeps its
/// performance.
pub fn parallel_map_observed<T, O, F>(jobs: usize, items: &[T], f: F, rec: &dyn Recorder) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        if !rec.enabled() {
            return items.iter().map(f).collect();
        }
        let wall = Stopwatch::start();
        let mut busy = 0u64;
        let out = items
            .iter()
            .map(|item| {
                let item_clock = Stopwatch::start();
                let result = f(item);
                let item_ns = item_clock.elapsed_ns();
                busy += item_ns;
                rec.observe(HistId::ItemNs, item_ns);
                rec.add(CounterId::WorkerItems, 1);
                result
            })
            .collect();
        rec.observe(HistId::WorkerBusyNs, busy);
        rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
        return out;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let enabled = rec.enabled();
                let wall = enabled.then(Stopwatch::start);
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if enabled {
                        let item_clock = Stopwatch::start();
                        let out = f(&items[i]);
                        let item_ns = item_clock.elapsed_ns();
                        busy += item_ns;
                        rec.observe(HistId::ItemNs, item_ns);
                        rec.add(CounterId::WorkerItems, 1);
                        *slots[i].lock().unwrap() = Some(out);
                    } else {
                        let out = f(&items[i]);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                }
                if let Some(wall) = wall {
                    // Everything a worker spends outside `f` is time waiting
                    // on (or contending for) the shared queue.
                    rec.observe(HistId::WorkerBusyNs, busy);
                    rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

/// A panic captured from one item of a [`try_parallel_map`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFailure {
    /// Index of the input item whose closure panicked.
    pub index: usize,
    /// The panic payload, rendered as a string.
    pub message: String,
}

impl fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemFailure {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Process-wide count of in-flight [`try_parallel_map`] runs; while it is
/// nonzero the panic hook stays quiet, so captured per-item panics do not
/// spray stack traces over the tool's output.
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static QUIET_HOOK: Once = Once::new();

struct QuietPanics;

impl QuietPanics {
    fn engage() -> QuietPanics {
        QUIET_HOOK.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.load(Ordering::Relaxed) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_DEPTH.fetch_add(1, Ordering::Relaxed);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// [`parallel_map`] with per-item panic isolation: a panic in `f` is
/// caught and returned as `Err(`[`ItemFailure`]`)` in that item's slot
/// instead of taking down the whole map. Every other item still runs and
/// returns its result; slots stay in input order.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: each item is processed
/// independently and a panicked item's partial state is discarded with its
/// slot, but a closure that mutates caller-visible shared state is itself
/// responsible for keeping that state coherent across a panic.
pub fn try_parallel_map<T, O, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<O, ItemFailure>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    try_parallel_map_observed(jobs, items, f, &NullRecorder)
}

/// [`try_parallel_map`] with the self-profiling of
/// [`parallel_map_observed`]. Panicked items still contribute their item
/// time and `WorkerItems` count — the work was done, it just failed.
pub fn try_parallel_map_observed<T, O, F>(
    jobs: usize,
    items: &[T],
    f: F,
    rec: &dyn Recorder,
) -> Vec<Result<O, ItemFailure>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let _quiet = QuietPanics::engage();
    let run_one = |index: usize| -> Result<O, ItemFailure> {
        panic::catch_unwind(AssertUnwindSafe(|| f(&items[index])))
            .map_err(|payload| ItemFailure { index, message: panic_message(payload) })
    };

    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        if !rec.enabled() {
            return (0..items.len()).map(run_one).collect();
        }
        let wall = Stopwatch::start();
        let mut busy = 0u64;
        let out = (0..items.len())
            .map(|index| {
                let item_clock = Stopwatch::start();
                let result = run_one(index);
                let item_ns = item_clock.elapsed_ns();
                busy += item_ns;
                rec.observe(HistId::ItemNs, item_ns);
                rec.add(CounterId::WorkerItems, 1);
                result
            })
            .collect();
        rec.observe(HistId::WorkerBusyNs, busy);
        rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
        return out;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<O, ItemFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let enabled = rec.enabled();
                let wall = enabled.then(Stopwatch::start);
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if enabled {
                        let item_clock = Stopwatch::start();
                        let out = run_one(i);
                        let item_ns = item_clock.elapsed_ns();
                        busy += item_ns;
                        rec.observe(HistId::ItemNs, item_ns);
                        rec.add(CounterId::WorkerItems, 1);
                        *slots[i].lock().unwrap() = Some(out);
                    } else {
                        let out = run_one(i);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                }
                if let Some(wall) = wall {
                    rec.observe(HistId::WorkerBusyNs, busy);
                    rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = parallel_map(1, &items, |&x| x.wrapping_mul(0x9e37_79b9).rotate_left(7));
        let parallel = parallel_map(8, &items, |&x| x.wrapping_mul(0x9e37_79b9).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(4, &[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn zero_jobs_uses_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(parallel_map(0, &items, |&x| x + 1)[15], 16);
    }

    #[test]
    fn observed_map_records_items_and_worker_times() {
        use vp_obs::MemRecorder;
        for jobs in [1, 4] {
            let rec = MemRecorder::new();
            let items: Vec<u64> = (0..30).collect();
            let out = parallel_map_observed(jobs, &items, |&x| x + 1, &rec);
            assert_eq!(out.len(), 30);
            let counts = rec.snapshot();
            assert_eq!(counts.get(CounterId::WorkerItems), 30, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::ItemNs).count(), 30, "jobs={jobs}");
            let workers = if jobs == 1 { 1 } else { 4 };
            assert_eq!(rec.hist(HistId::WorkerBusyNs).count(), workers, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::WorkerQueueWaitNs).count(), workers, "jobs={jobs}");
        }
    }

    #[test]
    fn try_map_isolates_panics_per_item() {
        let items: Vec<u64> = (0..40).collect();
        for jobs in [1, 4] {
            let out = try_parallel_map(jobs, &items, |&x| {
                if x % 13 == 5 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 40, "jobs={jobs}");
            for (i, slot) in out.iter().enumerate() {
                if i % 13 == 5 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.index, i);
                    assert_eq!(failure.message, format!("boom at {i}"));
                    assert!(failure.to_string().contains("panicked"));
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i as u64 * 2, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn try_map_without_panics_matches_parallel_map() {
        let items: Vec<u64> = (0..23).collect();
        let plain = parallel_map(4, &items, |&x| x + 7);
        let tried: Vec<u64> =
            try_parallel_map(4, &items, |&x| x + 7).into_iter().map(Result::unwrap).collect();
        assert_eq!(plain, tried);
    }

    #[test]
    fn try_map_counts_panicked_items_too() {
        use vp_obs::MemRecorder;
        for jobs in [1, 4] {
            let rec = MemRecorder::new();
            let items: Vec<u64> = (0..10).collect();
            let out = try_parallel_map_observed(
                jobs,
                &items,
                |&x| if x == 3 { panic!("nope") } else { x },
                &rec,
            );
            assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1, "jobs={jobs}");
            assert_eq!(rec.snapshot().get(CounterId::WorkerItems), 10, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::ItemNs).count(), 10, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still come back in order.
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_map(4, &items, |&x| {
            let spins = if x % 7 == 0 { 100_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
