//! A minimal work-stealing-free parallel map over a slice, built on
//! `std::thread::scope` — no external dependencies.
//!
//! The suite-profiling driver fans out one workload per worker: each item
//! is claimed from a shared atomic index and its result written into a
//! dedicated output slot, so results come back in input order regardless
//! of which worker ran which item or in what order they finished.
//!
//! All the maps cooperate with [`cancel`](crate::cancel): the token
//! installed on the calling thread (if any) is re-installed in every
//! worker, workers stop claiming items once it is cancelled, and the map
//! re-raises the cancellation on the calling thread before returning —
//! so a cancelled map never fabricates partial results.
//! [`try_parallel_map_deadline`] additionally arms a watchdog thread that
//! cancels any single item running longer than a per-item wall-clock
//! deadline; such items come back as [`FailureKind::Timeout`] failures,
//! distinct from caught panics.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use vp_obs::recorder::Stopwatch;
use vp_obs::{CounterId, HistId, NullRecorder, Recorder};

use crate::cancel::{self, CancelToken};

/// How often the deadline watchdog samples in-flight items. The deadline
/// is enforced with this granularity; results never depend on it.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// Resolves a `--jobs` argument: `0` means "use the machine's available
/// parallelism" (falling back to 1 when that cannot be determined).
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Applies `f` to every item of `items` on up to `jobs` worker threads
/// (`0` = available parallelism) and returns the results in input order.
///
/// Items are claimed dynamically, so uneven per-item cost balances across
/// workers. With `jobs <= 1` (or a single item) everything runs on the
/// calling thread — no threads are spawned and the result is identical by
/// construction, which is what makes `--jobs N` output comparable to
/// serial runs.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
pub fn parallel_map<T, O, F>(jobs: usize, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    parallel_map_observed(jobs, items, f, &NullRecorder)
}

/// [`parallel_map`] with self-profiling: per-item wall times, per-worker
/// busy and queue-wait times, and an item counter go to `rec`. With a
/// disabled recorder (the default [`NullRecorder`]) no clock is ever read
/// and each site costs one branch, so the uninstrumented path keeps its
/// performance.
pub fn parallel_map_observed<T, O, F>(jobs: usize, items: &[T], f: F, rec: &dyn Recorder) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        // Caller-thread path: the caller's cancel token is already
        // installed, and an unwind from a checkpoint inside `f`
        // propagates with its payload intact.
        if !rec.enabled() {
            return items.iter().map(f).collect();
        }
        let wall = Stopwatch::start();
        let mut busy = 0u64;
        let out = items
            .iter()
            .map(|item| {
                let item_clock = Stopwatch::start();
                let result = f(item);
                let item_ns = item_clock.elapsed_ns();
                busy += item_ns;
                rec.observe(HistId::ItemNs, item_ns);
                rec.add(CounterId::WorkerItems, 1);
                result
            })
            .collect();
        rec.observe(HistId::WorkerBusyNs, busy);
        rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
        return out;
    }

    let parent = cancel::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let work = || {
                    let enabled = rec.enabled();
                    let wall = enabled.then(Stopwatch::start);
                    let mut busy = 0u64;
                    loop {
                        if parent.as_ref().is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item_clock = enabled.then(Stopwatch::start);
                        // Catch so a cancellation unwind inside `f` ends
                        // this worker cleanly instead of being swallowed
                        // by the scope's generic join panic; genuine
                        // panics keep propagating.
                        let out = panic::catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        if let Some(clock) = item_clock {
                            let item_ns = clock.elapsed_ns();
                            busy += item_ns;
                            rec.observe(HistId::ItemNs, item_ns);
                            rec.add(CounterId::WorkerItems, 1);
                        }
                        match out {
                            Ok(out) => *slots[i].lock().unwrap() = Some(out),
                            Err(payload) if cancel::is_cancel_payload(payload.as_ref()) => break,
                            Err(payload) => panic::resume_unwind(payload),
                        }
                    }
                    if let Some(wall) = wall {
                        // Everything a worker spends outside `f` is time
                        // waiting on (or contending for) the shared queue.
                        rec.observe(HistId::WorkerBusyNs, busy);
                        rec.observe(
                            HistId::WorkerQueueWaitNs,
                            wall.elapsed_ns().saturating_sub(busy),
                        );
                    }
                };
                match &parent {
                    Some(token) => cancel::with_token(token, work),
                    None => work(),
                }
            });
        }
    });
    // Re-raise a cancellation on the calling thread *before* touching the
    // slots: a cancelled map may have unfilled slots, and must never
    // return partial results.
    cancel::checkpoint();
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

/// How one item of a `try_parallel_map*` run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The closure panicked; the payload is in
    /// [`message`](ItemFailure::message).
    Panic,
    /// The closure was cancelled cooperatively after exceeding its
    /// wall-clock deadline (see [`try_parallel_map_deadline`]).
    Timeout,
    /// The worker *process* running the item died — killed, aborted, or
    /// gone with a torn result frame. Never produced by the in-process
    /// maps in this module; the distributed suite executor uses it to
    /// keep process death distinct from an in-workload panic or a
    /// cooperative timeout, since it says nothing about the workload
    /// itself and is always worth a retry.
    WorkerDeath,
}

/// A failure captured from one item of a [`try_parallel_map`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFailure {
    /// Index of the input item whose closure failed.
    pub index: usize,
    /// Whether the item panicked or timed out.
    pub kind: FailureKind,
    /// The panic payload rendered as a string, or a fixed description for
    /// timeouts (kept deterministic so failure output is reproducible).
    pub message: String,
}

impl fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FailureKind::Panic => write!(f, "item {} panicked: {}", self.index, self.message),
            FailureKind::Timeout => write!(f, "item {} timed out: {}", self.index, self.message),
            FailureKind::WorkerDeath => {
                write!(f, "item {} lost its worker: {}", self.index, self.message)
            }
        }
    }
}

impl std::error::Error for ItemFailure {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Turns a caught unwind payload into the right kind of [`ItemFailure`]:
/// a cooperative-cancellation payload is a timeout, anything else a panic.
fn classify(index: usize, payload: Box<dyn std::any::Any + Send>) -> ItemFailure {
    if cancel::is_cancel_payload(payload.as_ref()) {
        ItemFailure { index, kind: FailureKind::Timeout, message: cancel::Cancelled.to_string() }
    } else {
        ItemFailure { index, kind: FailureKind::Panic, message: panic_message(payload) }
    }
}

/// Process-wide count of in-flight [`try_parallel_map`] runs; while it is
/// nonzero the panic hook stays quiet, so captured per-item panics do not
/// spray stack traces over the tool's output.
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static QUIET_HOOK: Once = Once::new();

pub(crate) struct QuietPanics;

impl QuietPanics {
    fn engage() -> QuietPanics {
        QUIET_HOOK.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.load(Ordering::Relaxed) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_DEPTH.fetch_add(1, Ordering::Relaxed);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Suppresses panic-hook output for the guard's lifetime — used by
/// [`cancel::run_with_deadline`] so its cooperative unwinds stay quiet
/// exactly like captured per-item panics.
pub(crate) fn quiet_panics() -> QuietPanics {
    QuietPanics::engage()
}

/// [`parallel_map`] with per-item panic isolation: a panic in `f` is
/// caught and returned as `Err(`[`ItemFailure`]`)` in that item's slot
/// instead of taking down the whole map. Every other item still runs and
/// returns its result; slots stay in input order.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: each item is processed
/// independently and a panicked item's partial state is discarded with its
/// slot, but a closure that mutates caller-visible shared state is itself
/// responsible for keeping that state coherent across a panic.
pub fn try_parallel_map<T, O, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<O, ItemFailure>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    try_parallel_map_observed(jobs, items, f, &NullRecorder)
}

/// [`try_parallel_map`] with the self-profiling of
/// [`parallel_map_observed`]. Panicked items still contribute their item
/// time and `WorkerItems` count — the work was done, it just failed.
pub fn try_parallel_map_observed<T, O, F>(
    jobs: usize,
    items: &[T],
    f: F,
    rec: &dyn Recorder,
) -> Vec<Result<O, ItemFailure>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    try_parallel_map_deadline(jobs, items, f, rec, None)
}

/// [`try_parallel_map_observed`] with an optional per-item wall-clock
/// deadline. With `deadline: None` the behavior is identical; with a
/// deadline armed, a watchdog thread samples every in-flight item and
/// cancels (cooperatively — see [`cancel`]) any running longer than the
/// deadline. A cancelled item's slot holds a [`FailureKind::Timeout`]
/// failure; every other item still runs to completion, so one hung item
/// can never stall the map.
///
/// The watchdog needs worker threads to observe, so an armed deadline
/// forces the threaded path even for `jobs == 1`; per-item isolation
/// keeps the results identical to the serial path regardless.
///
/// The deadline bounds items that *cooperate* (reach checkpoints — the
/// instrumentation runner and trace replay do); it cannot interrupt a
/// closure that never checks, and never corrupts one mid-operation.
pub fn try_parallel_map_deadline<T, O, F>(
    jobs: usize,
    items: &[T],
    f: F,
    rec: &dyn Recorder,
    deadline: Option<Duration>,
) -> Vec<Result<O, ItemFailure>>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let _quiet = QuietPanics::engage();
    if items.is_empty() {
        return Vec::new();
    }
    let parent = cancel::current();

    let Some(deadline) = deadline else {
        let run_one = |index: usize| -> Result<O, ItemFailure> {
            panic::catch_unwind(AssertUnwindSafe(|| f(&items[index])))
                .map_err(|payload| classify(index, payload))
        };

        let jobs = effective_jobs(jobs).min(items.len());
        if jobs <= 1 {
            if !rec.enabled() {
                return (0..items.len()).map(run_one).collect();
            }
            let wall = Stopwatch::start();
            let mut busy = 0u64;
            let out = (0..items.len())
                .map(|index| {
                    let item_clock = Stopwatch::start();
                    let result = run_one(index);
                    let item_ns = item_clock.elapsed_ns();
                    busy += item_ns;
                    rec.observe(HistId::ItemNs, item_ns);
                    rec.add(CounterId::WorkerItems, 1);
                    result
                })
                .collect();
            rec.observe(HistId::WorkerBusyNs, busy);
            rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
            return out;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<O, ItemFailure>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let work = || {
                        let enabled = rec.enabled();
                        let wall = enabled.then(Stopwatch::start);
                        let mut busy = 0u64;
                        loop {
                            if parent.as_ref().is_some_and(CancelToken::is_cancelled) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            if enabled {
                                let item_clock = Stopwatch::start();
                                let out = run_one(i);
                                let item_ns = item_clock.elapsed_ns();
                                busy += item_ns;
                                rec.observe(HistId::ItemNs, item_ns);
                                rec.add(CounterId::WorkerItems, 1);
                                *slots[i].lock().unwrap() = Some(out);
                            } else {
                                let out = run_one(i);
                                *slots[i].lock().unwrap() = Some(out);
                            }
                        }
                        if let Some(wall) = wall {
                            rec.observe(HistId::WorkerBusyNs, busy);
                            rec.observe(
                                HistId::WorkerQueueWaitNs,
                                wall.elapsed_ns().saturating_sub(busy),
                            );
                        }
                    };
                    match &parent {
                        Some(token) => cancel::with_token(token, work),
                        None => work(),
                    }
                });
            }
        });
        cancel::checkpoint();
        return slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
            .collect();
    };

    // Deadline armed: threaded path always, one in-flight registry slot
    // per worker for the watchdog to sample. Workers do not stop claiming
    // on parent cancellation here — each item runs under a child token
    // (cancelled transitively), so every slot is filled and `completed`
    // reliably reaches `items.len()`, which is the watchdog's exit
    // condition.
    let jobs = effective_jobs(jobs).min(items.len());
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let inflight: Vec<Mutex<Option<(Instant, CancelToken)>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();
    let slots: Vec<Mutex<Option<Result<O, ItemFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let parent = &parent;
            let next = &next;
            let completed = &completed;
            let inflight = &inflight;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let enabled = rec.enabled();
                let wall = enabled.then(Stopwatch::start);
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let token = match parent {
                        Some(p) => p.child(),
                        None => CancelToken::new(),
                    };
                    *inflight[worker].lock().unwrap() = Some((Instant::now(), token.clone()));
                    let item_clock = enabled.then(Stopwatch::start);
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        cancel::with_token(&token, || f(&items[i]))
                    }));
                    *inflight[worker].lock().unwrap() = None;
                    if let Some(clock) = item_clock {
                        let item_ns = clock.elapsed_ns();
                        busy += item_ns;
                        rec.observe(HistId::ItemNs, item_ns);
                        rec.add(CounterId::WorkerItems, 1);
                    }
                    *slots[i].lock().unwrap() =
                        Some(result.map_err(|payload| classify(i, payload)));
                    completed.fetch_add(1, Ordering::Release);
                }
                if let Some(wall) = wall {
                    rec.observe(HistId::WorkerBusyNs, busy);
                    rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
                }
            });
        }
        // The watchdog: cancel any in-flight item past its deadline, exit
        // once every item has completed (cancelled items complete too).
        scope.spawn(|| {
            while completed.load(Ordering::Acquire) < items.len() {
                for slot in &inflight {
                    if let Some((started, token)) = &*slot.lock().unwrap() {
                        if started.elapsed() >= deadline {
                            token.cancel();
                        }
                    }
                }
                std::thread::sleep(WATCHDOG_POLL);
            }
        });
    });
    cancel::checkpoint();
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = parallel_map(1, &items, |&x| x.wrapping_mul(0x9e37_79b9).rotate_left(7));
        let parallel = parallel_map(8, &items, |&x| x.wrapping_mul(0x9e37_79b9).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(4, &[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn zero_jobs_uses_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(parallel_map(0, &items, |&x| x + 1)[15], 16);
    }

    #[test]
    fn observed_map_records_items_and_worker_times() {
        use vp_obs::MemRecorder;
        for jobs in [1, 4] {
            let rec = MemRecorder::new();
            let items: Vec<u64> = (0..30).collect();
            let out = parallel_map_observed(jobs, &items, |&x| x + 1, &rec);
            assert_eq!(out.len(), 30);
            let counts = rec.snapshot();
            assert_eq!(counts.get(CounterId::WorkerItems), 30, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::ItemNs).count(), 30, "jobs={jobs}");
            let workers = if jobs == 1 { 1 } else { 4 };
            assert_eq!(rec.hist(HistId::WorkerBusyNs).count(), workers, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::WorkerQueueWaitNs).count(), workers, "jobs={jobs}");
        }
    }

    #[test]
    fn try_map_isolates_panics_per_item() {
        let items: Vec<u64> = (0..40).collect();
        for jobs in [1, 4] {
            let out = try_parallel_map(jobs, &items, |&x| {
                if x % 13 == 5 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 40, "jobs={jobs}");
            for (i, slot) in out.iter().enumerate() {
                if i % 13 == 5 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.index, i);
                    assert_eq!(failure.kind, FailureKind::Panic);
                    assert_eq!(failure.message, format!("boom at {i}"));
                    assert!(failure.to_string().contains("panicked"));
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i as u64 * 2, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn try_map_without_panics_matches_parallel_map() {
        let items: Vec<u64> = (0..23).collect();
        let plain = parallel_map(4, &items, |&x| x + 7);
        let tried: Vec<u64> =
            try_parallel_map(4, &items, |&x| x + 7).into_iter().map(Result::unwrap).collect();
        assert_eq!(plain, tried);
    }

    #[test]
    fn try_map_counts_panicked_items_too() {
        use vp_obs::MemRecorder;
        for jobs in [1, 4] {
            let rec = MemRecorder::new();
            let items: Vec<u64> = (0..10).collect();
            let out = try_parallel_map_observed(
                jobs,
                &items,
                |&x| if x == 3 { panic!("nope") } else { x },
                &rec,
            );
            assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1, "jobs={jobs}");
            assert_eq!(rec.snapshot().get(CounterId::WorkerItems), 10, "jobs={jobs}");
            assert_eq!(rec.hist(HistId::ItemNs).count(), 10, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still come back in order.
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_map(4, &items, |&x| {
            let spins = if x % 7 == 0 { 100_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn deadline_map_times_out_only_the_hung_item() {
        let items: Vec<u64> = (0..8).collect();
        for jobs in [1, 4] {
            let out = try_parallel_map_deadline(
                jobs,
                &items,
                |&x| {
                    if x == 3 {
                        loop {
                            cancel::checkpoint();
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    x * 10
                },
                &NullRecorder,
                Some(Duration::from_millis(30)),
            );
            assert_eq!(out.len(), 8, "jobs={jobs}");
            for (i, slot) in out.iter().enumerate() {
                if i == 3 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.kind, FailureKind::Timeout);
                    assert_eq!(failure.message, "deadline exceeded");
                    assert!(failure.to_string().contains("timed out"));
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i as u64 * 10, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let items: Vec<u64> = (0..12).collect();
        let plain = try_parallel_map(4, &items, |&x| x + 1);
        let dead = try_parallel_map_deadline(
            4,
            &items,
            |&x| x + 1,
            &NullRecorder,
            Some(Duration::from_secs(60)),
        );
        assert_eq!(plain, dead);
    }

    #[test]
    fn deadline_map_still_classifies_real_panics() {
        let items: Vec<u64> = (0..4).collect();
        let out = try_parallel_map_deadline(
            2,
            &items,
            |&x| {
                if x == 1 {
                    panic!("genuine failure");
                }
                x
            },
            &NullRecorder,
            Some(Duration::from_secs(60)),
        );
        let failure = out[1].as_ref().unwrap_err();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.message, "genuine failure");
    }

    #[test]
    fn cancelled_parent_aborts_the_map() {
        let token = CancelToken::new();
        let items: Vec<u64> = (0..64).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            cancel::with_token(&token, || {
                parallel_map(4, &items, |&x| {
                    if x == 0 {
                        token.cancel();
                    }
                    cancel::checkpoint();
                    x
                })
            })
        }));
        assert!(cancel::is_cancel_payload(caught.unwrap_err().as_ref()));
    }
}
