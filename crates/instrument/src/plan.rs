//! Selection of instrumentation points.

use std::collections::BTreeSet;

use vp_asm::Program;

/// Which instructions receive an `after_instr` analysis call.
///
/// The paper's profilers differ only in this choice: the load-value profile
/// instruments loads, the full value profile instruments every
/// register-defining instruction, and the convergent profiler dynamically
/// skips calls (that logic lives in the analysis itself — the *static*
/// selection stays fixed, as it did with ATOM, where instrumentation is
/// inserted at link time).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Selection {
    /// Instrument every instruction.
    #[default]
    All,
    /// Instrument only loads.
    LoadsOnly,
    /// Instrument every register-defining instruction (the paper's "all
    /// instructions" universe: excludes stores, branches, jumps and nops).
    RegisterDefining,
    /// Instrument loads and stores (for the memory-location profile).
    MemoryOps,
    /// Instrument an explicit set of instruction indices.
    Custom(BTreeSet<u32>),
    /// Instrument nothing (baseline for overhead measurements).
    None,
}

impl Selection {
    /// Resolves the selection into a per-instruction boolean map for
    /// `program`.
    pub fn resolve(&self, program: &Program) -> Vec<bool> {
        let code = program.code();
        match self {
            Selection::All => vec![true; code.len()],
            Selection::LoadsOnly => code.iter().map(|i| i.is_load()).collect(),
            Selection::RegisterDefining => code.iter().map(|i| i.is_register_defining()).collect(),
            Selection::MemoryOps => code
                .iter()
                .map(|i| i.is_load() || matches!(i, vp_isa::Instruction::Store { .. }))
                .collect(),
            Selection::Custom(set) => (0..code.len() as u32).map(|i| set.contains(&i)).collect(),
            Selection::None => vec![false; code.len()],
        }
    }

    /// Number of instrumented static instructions for `program`.
    pub fn count(&self, program: &Program) -> usize {
        self.resolve(program).iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        vp_asm::assemble(
            r#"
            .data
            x: .quad 1
            .text
            main:
                la  r1, x
                ldd r2, 0(r1)
                std r2, 0(r1)
                beq r2, r0, done
            done:
                sys exit
            "#,
        )
        .unwrap()
    }

    #[test]
    fn selections() {
        let p = sample();
        assert_eq!(Selection::All.count(&p), p.len());
        assert_eq!(Selection::LoadsOnly.count(&p), 1);
        assert_eq!(Selection::MemoryOps.count(&p), 2);
        // la = lui+ori (2 defining) + ldd (1); store/branch/sys define nothing.
        assert_eq!(Selection::RegisterDefining.count(&p), 3);
        assert_eq!(Selection::None.count(&p), 0);
        let custom = Selection::Custom([0u32, 2].into_iter().collect());
        let map = custom.resolve(&p);
        assert!(map[0] && map[2] && !map[1]);
        assert_eq!(custom.count(&p), 2);
    }

    #[test]
    fn default_is_all() {
        assert_eq!(Selection::default(), Selection::All);
    }
}
