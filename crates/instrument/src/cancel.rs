//! Cooperative cancellation: the time half of the resource governor.
//!
//! A [`CancelToken`] is a shared flag a controller sets and a worker
//! polls. Nothing is ever killed: the instrumentation runner, trace
//! replay and the parallel drivers call [`checkpoint`] at chunk
//! boundaries, and a checkpoint on a cancelled token unwinds with the
//! dedicated [`Cancelled`] payload — which the catching layer
//! ([`try_parallel_map_deadline`](crate::parallel::try_parallel_map_deadline),
//! [`run_with_deadline`]) classifies as a *timeout*, distinct from a
//! genuine panic.
//!
//! Tokens chain: a [`child`](CancelToken::child) token is cancelled when
//! either it or any ancestor is, so cancelling a whole run cancels every
//! per-workload token derived from it. The token a piece of code should
//! poll is carried in a thread-local installed by [`with_token`]; code
//! that never runs under a token (every pre-existing call path) sees
//! [`cancelled`] return `false` from one thread-local read, so the
//! checkpoints cost nothing when no deadline is armed.
//!
//! Everything here affects only *whether* work completes, never *what*
//! completed work computes: a workload that finishes before its deadline
//! produces byte-identical output to an un-governed run.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The panic payload of a cooperative-cancellation unwind. Catch sites
/// use [`is_cancel_payload`] to tell a timeout from a real panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline exceeded")
    }
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    parent: Option<CancelToken>,
}

/// A shared cancellation flag, cheap to clone and poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A child token: cancelled when it *or any ancestor* is cancelled.
    /// Cancelling the child does not affect the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner { flag: AtomicBool::new(false), parent: Some(self.clone()) }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut token = self;
        loop {
            if token.inner.flag.load(Ordering::Acquire) {
                return true;
            }
            match &token.inner.parent {
                Some(parent) => token = parent,
                None => return false,
            }
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` installed as this thread's current token (the
/// one [`cancelled`] and [`checkpoint`] consult), restoring the previous
/// token afterwards — including across an unwind.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// The token currently installed on this thread, if any — what a worker
/// captures before spawning threads so children can re-install it.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the current thread's token (if any) has been cancelled.
/// Without an installed token this is a single thread-local read.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// Unwinds with the [`Cancelled`] payload. Call only from code running
/// under a catch site that understands cancellation (the try-map drivers
/// and [`run_with_deadline`]).
pub fn unwind() -> ! {
    panic::panic_any(Cancelled)
}

/// The cooperative cancellation point: returns immediately when the
/// current token is live (or absent), unwinds with [`Cancelled`] when it
/// has been cancelled. Production loops call this at chunk boundaries.
pub fn checkpoint() {
    if cancelled() {
        unwind()
    }
}

/// Whether a caught panic payload is a cooperative-cancellation unwind.
pub fn is_cancel_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

/// Runs `f` under a fresh token that a watchdog thread cancels once
/// `deadline` elapses, returning `Err(Cancelled)` if `f` was cancelled
/// and unwound cooperatively. A genuine panic in `f` propagates.
///
/// The watchdog never kills anything: it only sets the flag, and `f`
/// must reach a [`checkpoint`] to actually stop — so a run that produces
/// output before its deadline produces exactly the output an un-deadlined
/// run would.
pub fn run_with_deadline<R>(deadline: Duration, f: impl FnOnce() -> R) -> Result<R, Cancelled> {
    let token = match current() {
        Some(parent) => parent.child(),
        None => CancelToken::new(),
    };
    // done = (finished flag, wake signal): the watchdog sleeps on the
    // condvar until the deadline or completion, whichever comes first.
    let done = Arc::new((Mutex::new(false), Condvar::new()));
    let watchdog = {
        let token = token.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let (lock, cvar) = &*done;
            let mut finished = lock.lock().unwrap();
            let mut remaining = deadline;
            let start = std::time::Instant::now();
            while !*finished {
                let (guard, timeout) = cvar.wait_timeout(finished, remaining).unwrap();
                finished = guard;
                if *finished {
                    return;
                }
                if timeout.timed_out() || start.elapsed() >= deadline {
                    token.cancel();
                    return;
                }
                remaining = deadline.saturating_sub(start.elapsed());
            }
        })
    };
    let _quiet = crate::parallel::quiet_panics();
    let result = panic::catch_unwind(AssertUnwindSafe(|| with_token(&token, f)));
    {
        let (lock, cvar) = &*done;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    let _ = watchdog.join();
    match result {
        Ok(value) => Ok(value),
        Err(payload) if is_cancel_payload(payload.as_ref()) => Err(Cancelled),
        Err(payload) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancels_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn child_sees_parent_cancellation_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());

        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(current().is_none());
        assert!(!cancelled());
        checkpoint(); // must not unwind
    }

    #[test]
    fn with_token_installs_and_restores() {
        let t = CancelToken::new();
        with_token(&t, || {
            assert!(current().is_some());
            assert!(!cancelled());
            t.cancel();
            assert!(cancelled());
        });
        assert!(current().is_none());
        // Restoration survives an unwind.
        let t2 = CancelToken::new();
        t2.cancel();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| with_token(&t2, checkpoint)));
        assert!(is_cancel_payload(caught.unwrap_err().as_ref()));
        assert!(current().is_none());
    }

    #[test]
    fn checkpoint_unwinds_with_the_cancel_payload() {
        let t = CancelToken::new();
        t.cancel();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| with_token(&t, checkpoint)));
        let payload = caught.unwrap_err();
        assert!(is_cancel_payload(payload.as_ref()));
        assert!(!is_cancel_payload(&"other panic"));
    }

    #[test]
    fn deadline_cancels_a_cooperative_loop() {
        let out = run_with_deadline(Duration::from_millis(20), || loop {
            checkpoint();
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(out, Err(Cancelled));
        assert_eq!(Cancelled.to_string(), "deadline exceeded");
    }

    #[test]
    fn fast_work_beats_its_deadline() {
        let out = run_with_deadline(Duration::from_secs(60), || {
            checkpoint();
            42
        });
        assert_eq!(out, Ok(42));
    }

    #[test]
    fn real_panics_propagate_through_run_with_deadline() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_with_deadline(Duration::from_secs(60), || panic!("genuine"))
        }));
        let payload = caught.unwrap_err();
        assert!(!is_cancel_payload(payload.as_ref()));
    }
}
