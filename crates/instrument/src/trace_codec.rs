//! Compact binary value-trace format: record a workload's `(pc, value)`
//! stream once, replay it many times/ways (ATOM's trace-once,
//! analyze-many methodology, applied to the value profiler's hot path).
//!
//! Where [`crate::trace`] captures *every* instrumentation callback in
//! fixed-width records for full offline replay, this codec stores only
//! the destination-value stream the profilers consume — which is all
//! that batched ingestion and intra-workload sharding need — at a
//! fraction of the size thanks to LEB128 varints.
//!
//! ## Wire format
//!
//! ```text
//! file    := magic chunk* trailer
//! magic   := "VPC1"                          (4 bytes)
//! chunk   := len:u32le count:u32le crc:u32le payload[len]
//!            len   — payload bytes, always > 0
//!            count — events in the payload
//!            crc   — CRC32 of len‖count‖payload
//! payload := count × ( varint(pc) varint(value) )   (LEB128, canonical)
//! trailer := 0:u32le total:u64le crc:u32le
//!            total — events in the whole file
//!            crc   — CRC32 of 0‖total
//! ```
//!
//! A zero `len` field is what distinguishes the trailer from a chunk
//! header, so an empty trace is just `magic + trailer`. Every region of
//! the file is covered by a CRC32 ([`vp_obs::crc32`], the same checksum
//! behind `vp_core::durable`'s profile footers): decoding verifies each
//! chunk's checksum and event count, the trailer's checksum and total,
//! and that the file ends exactly at the trailer — truncated or
//! bit-flipped traces are rejected, never mis-decoded.
//!
//! Varints are **canonical** LEB128: the final byte of a multi-byte
//! encoding must be nonzero, so every `u64` has exactly one wire form
//! and decode∘encode is byte-identity on valid files. Overlong forms
//! (`80 00` for 0, say) are rejected as corruption — without this rule
//! two distinct CRC-valid payloads could decode to identical events.
//!
//! Replay reads the file *in place*: [`TraceFile`] owns the bytes (an
//! `mmap` on Linux, an owned read elsewhere), [`ChunkReader`] borrows
//! them, and [`ChunkReader::next_chunk_into`] decodes each chunk into a
//! caller-reused scratch buffer — no chunk is ever copied into an
//! intermediate `Vec` on the way to `observe_batch`. The varint decoder
//! takes a SWAR (word-at-a-time) fast path for the 1- and 2-byte
//! encodings that dominate real traces; see DESIGN.md §13 for the
//! exactness argument.

use std::fmt;
use std::io;
use std::path::Path;

use vp_obs::{crc32, Crc32};

/// File magic, versioned (`VPC` + format version `1`).
pub const MAGIC: &[u8; 4] = b"VPC1";

/// Default events per chunk — large enough to amortize per-chunk header
/// cost and hash-map dispatch during batched replay, small enough that a
/// buffered reader stays cache-friendly.
pub const DEFAULT_CHUNK_EVENTS: usize = 8192;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends before a complete chunk, trailer, or varint.
    Truncated,
    /// A chunk's checksum or event count does not match its payload.
    CorruptChunk {
        /// Zero-based index of the offending chunk.
        index: usize,
    },
    /// The trailer's checksum or event total does not match the chunks.
    CorruptTrailer,
    /// Bytes follow the trailer.
    TrailingData,
    /// A varint is malformed: more than 10 bytes, overflows u64, or is
    /// a non-canonical overlong encoding.
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a VPC1 value trace (bad magic)"),
            CodecError::Truncated => write!(f, "trace truncated mid-chunk or missing trailer"),
            CodecError::CorruptChunk { index } => {
                write!(f, "trace chunk {index} corrupt (checksum or count mismatch)")
            }
            CodecError::CorruptTrailer => write!(f, "trace trailer corrupt (checksum or total)"),
            CodecError::TrailingData => write!(f, "unexpected data after trace trailer"),
            CodecError::BadVarint => write!(f, "malformed varint in trace payload"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one canonical varint. The SWAR fast path loads eight bytes at
/// once and settles the 1- and 2-byte encodings (pcs and small values —
/// the overwhelming majority of a real trace) branch-lean; anything
/// longer, or too close to the end of `bytes` for a full word, takes the
/// scalar loop. Both paths reject overlong encodings, so they accept
/// exactly the same byte strings.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let p = *pos;
    if let Some(window) = bytes.get(p..p.saturating_add(8)) {
        let word = u64::from_le_bytes(window.try_into().expect("8-byte window"));
        if word & 0x80 == 0 {
            *pos = p + 1;
            return Ok(word & 0x7F);
        }
        if word & 0x8000 == 0 {
            // Two bytes: the terminating byte must be nonzero, or the
            // value fit in one byte and the encoding is overlong.
            let hi = (word >> 8) & 0x7F;
            if hi == 0 {
                return Err(CodecError::BadVarint);
            }
            *pos = p + 2;
            return Ok((word & 0x7F) | (hi << 7));
        }
    }
    read_varint_slow(bytes, pos)
}

fn read_varint_slow(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        // The tenth byte of a u64 varint may only carry the top bit of
        // the value; anything more would overflow.
        if shift == 63 && byte > 1 {
            return Err(CodecError::BadVarint);
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            // Canonical form: a multi-byte encoding never ends in a zero
            // byte — that value already fit in fewer bytes.
            if byte == 0 && shift > 0 {
                return Err(CodecError::BadVarint);
            }
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::BadVarint);
        }
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len()).ok_or(CodecError::Truncated)?;
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().expect("4-byte slice"));
    *pos = end;
    Ok(v)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len()).ok_or(CodecError::Truncated)?;
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8-byte slice"));
    *pos = end;
    Ok(v)
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// Streaming trace encoder: push events as the simulator produces them;
/// each full chunk is sealed (header + checksum) and appended to the
/// output buffer immediately, so peak transient state is one chunk.
#[derive(Debug)]
pub struct TraceEncoder {
    out: Vec<u8>,
    payload: Vec<u8>,
    chunk_events: u32,
    max_chunk_events: usize,
    chunks: u64,
    total: u64,
}

impl TraceEncoder {
    /// Encoder with the default chunk size.
    pub fn new() -> TraceEncoder {
        TraceEncoder::with_chunk_events(DEFAULT_CHUNK_EVENTS)
    }

    /// Encoder sealing a chunk every `chunk_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_events` is zero.
    pub fn with_chunk_events(chunk_events: usize) -> TraceEncoder {
        assert!(chunk_events > 0, "chunk size must be at least one event");
        TraceEncoder {
            out: MAGIC.to_vec(),
            payload: Vec::new(),
            chunk_events: 0,
            max_chunk_events: chunk_events,
            chunks: 0,
            total: 0,
        }
    }

    /// Appends one `(pc, value)` event.
    pub fn push(&mut self, pc: u32, value: u64) {
        push_varint(&mut self.payload, u64::from(pc));
        push_varint(&mut self.payload, value);
        self.chunk_events += 1;
        self.total += 1;
        if self.chunk_events as usize >= self.max_chunk_events {
            self.seal_chunk();
        }
    }

    /// Appends a batch of events.
    pub fn push_all(&mut self, events: &[(u32, u64)]) {
        for &(pc, value) in events {
            self.push(pc, value);
        }
    }

    /// Events encoded so far.
    pub fn events(&self) -> u64 {
        self.total
    }

    /// Chunks sealed so far (the partial chunk, if any, not included).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    fn seal_chunk(&mut self) {
        debug_assert!(!self.payload.is_empty());
        let len = (self.payload.len() as u32).to_le_bytes();
        let count = self.chunk_events.to_le_bytes();
        // Streaming CRC over header + payload, no scratch concatenation.
        let mut crc = Crc32::new();
        crc.update(&len);
        crc.update(&count);
        crc.update(&self.payload);
        self.out.extend_from_slice(&len);
        self.out.extend_from_slice(&count);
        self.out.extend_from_slice(&crc.finish().to_le_bytes());
        self.out.extend_from_slice(&self.payload);
        self.payload.clear();
        self.chunk_events = 0;
        self.chunks += 1;
    }

    /// Seals the final partial chunk, appends the trailer, and returns
    /// the complete file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if !self.payload.is_empty() {
            self.seal_chunk();
        }
        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&0u32.to_le_bytes());
        trailer.extend_from_slice(&self.total.to_le_bytes());
        let crc = crc32(&trailer);
        self.out.extend_from_slice(&trailer);
        self.out.extend_from_slice(&crc.to_le_bytes());
        self.out
    }
}

impl Default for TraceEncoder {
    fn default() -> TraceEncoder {
        TraceEncoder::new()
    }
}

/// One-shot convenience: encodes `events` with the given chunk size.
pub fn encode(events: &[(u32, u64)], chunk_events: usize) -> Vec<u8> {
    let mut enc = TraceEncoder::with_chunk_events(chunk_events);
    enc.push_all(events);
    enc.finish()
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Buffered chunk reader: verifies the magic up front, then yields one
/// decoded chunk at a time so replay never materializes more than one
/// chunk beyond what the caller keeps.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk_index: usize,
    decoded: u64,
    done: bool,
}

impl<'a> ChunkReader<'a> {
    /// Starts reading `bytes`; fails immediately on a bad magic.
    pub fn new(bytes: &'a [u8]) -> Result<ChunkReader<'a>, CodecError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        Ok(ChunkReader { bytes, pos: MAGIC.len(), chunk_index: 0, decoded: 0, done: false })
    }

    /// Decodes the next chunk, or returns `None` once the trailer has
    /// been reached and verified. After `None`, further calls keep
    /// returning `None`.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<(u32, u64)>>, CodecError> {
        let mut events = Vec::new();
        Ok(if self.decode_chunk_append(&mut events)? { Some(events) } else { None })
    }

    /// Zero-copy replay primitive: decodes the next chunk into `events`
    /// (cleared first), so a caller looping over chunks reuses one
    /// scratch allocation for the whole trace. Returns `Ok(true)` when a
    /// chunk was decoded and `Ok(false)` once the trailer has been
    /// reached and verified; after that, further calls keep returning
    /// `Ok(false)`.
    pub fn next_chunk_into(&mut self, events: &mut Vec<(u32, u64)>) -> Result<bool, CodecError> {
        events.clear();
        self.decode_chunk_append(events)
    }

    /// Decodes every remaining chunk, appending the events to `out` —
    /// the whole-stream analogue of [`ChunkReader::next_chunk_into`],
    /// with no per-chunk intermediate `Vec`.
    pub fn read_to_end_into(&mut self, out: &mut Vec<(u32, u64)>) -> Result<(), CodecError> {
        while self.decode_chunk_append(out)? {}
        Ok(())
    }

    fn decode_chunk_append(&mut self, out: &mut Vec<(u32, u64)>) -> Result<bool, CodecError> {
        if self.done {
            return Ok(false);
        }
        let header_start = self.pos;
        let len = read_u32(self.bytes, &mut self.pos)? as usize;
        if len == 0 {
            // Trailer: verify the total and checksum, require exact EOF.
            let total = read_u64(self.bytes, &mut self.pos)?;
            let stored_crc = read_u32(self.bytes, &mut self.pos)?;
            if crc32(&self.bytes[header_start..header_start + 12]) != stored_crc
                || total != self.decoded
            {
                return Err(CodecError::CorruptTrailer);
            }
            if self.pos != self.bytes.len() {
                return Err(CodecError::TrailingData);
            }
            self.done = true;
            return Ok(false);
        }
        let count = read_u32(self.bytes, &mut self.pos)? as usize;
        let stored_crc = read_u32(self.bytes, &mut self.pos)?;
        let payload_end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CodecError::Truncated)?;
        let corrupt = CodecError::CorruptChunk { index: self.chunk_index };
        // Every event is at least two payload bytes (pc varint + value
        // varint), so a count above `len` is corrupt no matter what the
        // payload holds. Reject it *before* trusting it with an
        // allocation: the header is length-prefixed, not authenticated,
        // so an adversarial file can pair a CRC-valid `count` of
        // u32::MAX with a tiny payload.
        if count > len {
            return Err(corrupt);
        }
        let mut crc = Crc32::new();
        crc.update(&self.bytes[header_start..header_start + 8]);
        crc.update(&self.bytes[self.pos..payload_end]);
        if crc.finish() != stored_crc {
            return Err(corrupt);
        }
        // The two-bytes-per-event floor also bounds the preallocation.
        out.reserve(count.min(len / 2));
        let before = out.len();
        let payload = &self.bytes[..payload_end];
        while self.pos < payload_end {
            // Any malformed varint here is chunk corruption: the bytes
            // passed the checksum but do not parse as `count` pairs.
            let pc = read_varint(payload, &mut self.pos).map_err(|_| corrupt.clone())?;
            let value = read_varint(payload, &mut self.pos).map_err(|_| corrupt.clone())?;
            if pc > u64::from(u32::MAX) {
                return Err(corrupt);
            }
            out.push((pc as u32, value));
        }
        if out.len() - before != count {
            return Err(corrupt);
        }
        self.decoded += count as u64;
        self.chunk_index += 1;
        Ok(true)
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> usize {
        self.chunk_index
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.decoded
    }
}

/// Decodes a whole trace, verifying every chunk and the trailer.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, u64)>, CodecError> {
    let mut reader = ChunkReader::new(bytes)?;
    let mut events = Vec::new();
    reader.read_to_end_into(&mut events)?;
    Ok(events)
}

// ---------------------------------------------------------------------
// Raw (still-encoded) chunk access — the serve wire primitives
// ---------------------------------------------------------------------

/// One chunk exactly as it sits in a VPC1 file: header fields plus the
/// undecoded varint payload. `vprof client` frames these over the wire
/// so the daemon verifies the very CRC the recorded file carried —
/// end-to-end integrity, not hop-by-hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawChunk<'a> {
    /// Events the payload claims to encode.
    pub count: u32,
    /// Stored CRC32 over the chunk's len/count header and payload.
    pub crc: u32,
    /// The varint-encoded `(pc, value)` pairs, unverified.
    pub payload: &'a [u8],
}

/// Splits a VPC1 byte stream into its raw chunks without decoding any
/// payload. The magic, every chunk CRC, and the trailer are still fully
/// verified — a corrupt or truncated file is rejected here, never
/// streamed.
pub fn raw_chunks(bytes: &[u8]) -> Result<Vec<RawChunk<'_>>, CodecError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut pos = MAGIC.len();
    let mut chunks = Vec::new();
    let mut total = 0u64;
    loop {
        let header_start = pos;
        let len = read_u32(bytes, &mut pos)? as usize;
        if len == 0 {
            let trailer_total = read_u64(bytes, &mut pos)?;
            let stored_crc = read_u32(bytes, &mut pos)?;
            if crc32(&bytes[header_start..header_start + 12]) != stored_crc
                || trailer_total != total
            {
                return Err(CodecError::CorruptTrailer);
            }
            if pos != bytes.len() {
                return Err(CodecError::TrailingData);
            }
            return Ok(chunks);
        }
        let count = read_u32(bytes, &mut pos)?;
        let stored_crc = read_u32(bytes, &mut pos)?;
        let payload_end =
            pos.checked_add(len).filter(|&e| e <= bytes.len()).ok_or(CodecError::Truncated)?;
        let corrupt = CodecError::CorruptChunk { index: chunks.len() };
        if count as usize > len {
            return Err(corrupt);
        }
        let mut crc = Crc32::new();
        crc.update(&bytes[header_start..header_start + 8]);
        crc.update(&bytes[pos..payload_end]);
        if crc.finish() != stored_crc {
            return Err(corrupt);
        }
        chunks.push(RawChunk { count, crc: stored_crc, payload: &bytes[pos..payload_end] });
        total += u64::from(count);
        pos = payload_end;
    }
}

/// Verifies and decodes one standalone chunk — the daemon's ingest path
/// for a chunk that arrived framed rather than in a file. Identical
/// verification to [`ChunkReader`]: the stored CRC must match the
/// len/count header plus payload, the payload must parse as exactly
/// `count` canonical varint pairs, and nothing may remain. Decoded
/// events are *appended* to `out`; `index` only labels the error.
pub fn decode_chunk(
    index: usize,
    count: u32,
    stored_crc: u32,
    payload: &[u8],
    out: &mut Vec<(u32, u64)>,
) -> Result<(), CodecError> {
    let corrupt = CodecError::CorruptChunk { index };
    if count as usize > payload.len() {
        return Err(corrupt);
    }
    let mut crc = Crc32::new();
    crc.update(&(payload.len() as u32).to_le_bytes());
    crc.update(&count.to_le_bytes());
    crc.update(payload);
    if crc.finish() != stored_crc {
        return Err(corrupt);
    }
    out.reserve((count as usize).min(payload.len() / 2));
    let before = out.len();
    let mut pos = 0usize;
    while pos < payload.len() {
        let pc = read_varint(payload, &mut pos).map_err(|_| corrupt.clone())?;
        let value = read_varint(payload, &mut pos).map_err(|_| corrupt.clone())?;
        if pc > u64::from(u32::MAX) {
            return Err(corrupt);
        }
        out.push((pc as u32, value));
    }
    if out.len() - before != count as usize {
        return Err(corrupt);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Zero-copy trace input
// ---------------------------------------------------------------------

/// Read-only file mapping via raw syscalls, on the supported mmap
/// targets: Linux on the two architectures whose syscall ABI the stub
/// below encodes (everything else takes the owned-buffer fallback). The
/// workspace carries no libc binding, and the two kernel calls a
/// read-only mapping needs (`mmap`, `munmap`) are stable ABI, so they
/// are inlined here rather than pulling in a dependency.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod mmap {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// An owned read-only, private mapping; unmapped on drop.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime and owned by
    // exactly one `Mapping`, so sharing it across threads is sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len` bytes of `file`. `len` must be nonzero
        /// (the kernel rejects zero-length mappings).
        pub fn new(file: &File, len: usize) -> io::Result<Mapping> {
            let ret = unsafe { sys_mmap(len, file.as_raw_fd()) };
            if (-4095..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(Mapping { ptr: ret as *const u8, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // Safety: `ptr` is a live PROT_READ mapping of `len` bytes
            // until drop. MAP_PRIVATE means later writers of the file
            // can at worst change the observed bytes, never the
            // mapping's validity — and changed bytes fail the chunk
            // CRCs.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe { sys_munmap(self.ptr, self.len) };
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // SYS_mmap
            in("rdi") 0usize,               // addr: kernel chooses
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,                // offset
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_munmap(ptr: *const u8, len: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret, // SYS_munmap
            in("rdi") ptr as usize,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") 0isize => ret, // addr in, result out
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize, // offset
            in("x8") 222usize, // SYS_mmap
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_munmap(ptr: *const u8, len: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") ptr as usize as isize => ret,
            in("x1") len,
            in("x8") 215usize, // SYS_munmap
            options(nostack)
        );
        ret
    }
}

/// Owner of a trace's bytes with zero-copy intent: on Linux the file is
/// `mmap`'d read-only, so chunk decoding borrows straight out of the
/// page cache and the trace is never copied onto the heap at all. The
/// fallback — non-Linux platforms, empty files, a failed mapping
/// syscall, or `VP_NO_MMAP=1` in the environment — reads the file into
/// an owned buffer instead. Either way [`TraceFile::reader`] hands out
/// the same borrowing [`ChunkReader`], so the two paths are
/// bit-identical by construction (and checked differentially by
/// `tests/zerocopy_replay.rs`).
#[derive(Debug)]
pub struct TraceFile {
    data: TraceData,
}

#[derive(Debug)]
enum TraceData {
    Owned(Vec<u8>),
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped(mmap::Mapping),
}

impl TraceFile {
    /// Opens `path`, mapping it when the platform supports it and
    /// falling back to a full read otherwise. Set `VP_NO_MMAP=1` to
    /// force the fallback (differential testing, filesystems that
    /// refuse mappings).
    pub fn open(path: &Path) -> io::Result<TraceFile> {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if std::env::var_os("VP_NO_MMAP").is_none_or(|v| v != "1") {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 && len <= usize::MAX as u64 {
                if let Ok(map) = mmap::Mapping::new(&file, len as usize) {
                    return Ok(TraceFile { data: TraceData::Mapped(map) });
                }
            }
            // Zero-length or unmappable: fall through to the read below.
        }
        Ok(TraceFile { data: TraceData::Owned(std::fs::read(path)?) })
    }

    /// Wraps bytes already in memory (a trace recorded this run rather
    /// than loaded from disk) behind the same interface.
    pub fn from_bytes(bytes: Vec<u8>) -> TraceFile {
        TraceFile { data: TraceData::Owned(bytes) }
    }

    /// The raw encoded bytes, wherever they live.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            TraceData::Owned(bytes) => bytes,
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            TraceData::Mapped(map) => map.bytes(),
        }
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the trace is empty (zero bytes — not even a magic).
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// True when the bytes are a kernel mapping rather than a heap copy.
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            TraceData::Owned(_) => false,
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            TraceData::Mapped(_) => true,
        }
    }

    /// Starts decoding; fails immediately on a bad magic.
    pub fn reader(&self) -> Result<ChunkReader<'_>, CodecError> {
        ChunkReader::new(self.bytes())
    }
}

/// Shape of a decoded trace, for `vprof record`/`replay` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in the trace.
    pub events: u64,
    /// Number of chunks.
    pub chunks: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Verifies a trace end-to-end and reports its shape without keeping
/// the decoded events.
pub fn stats(bytes: &[u8]) -> Result<TraceStats, CodecError> {
    let mut reader = ChunkReader::new(bytes)?;
    let mut scratch = Vec::new();
    while reader.next_chunk_into(&mut scratch)? {}
    Ok(TraceStats {
        events: reader.events_read(),
        chunks: reader.chunks_read() as u64,
        bytes: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u32, u64)> {
        (0..1000u32)
            .map(|i| (i % 17, if i % 5 == 0 { 0 } else { u64::from(i) * 0x0123_4567_89AB }))
            .collect()
    }

    #[test]
    fn round_trip_and_chunk_invariance() {
        let events = sample();
        let reference = encode(&events, DEFAULT_CHUNK_EVENTS);
        assert_eq!(decode(&reference).unwrap(), events);
        for chunk in [1, 3, 7, 1000, 5000] {
            assert_eq!(decode(&encode(&events, chunk)).unwrap(), events, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_trace_is_magic_plus_trailer() {
        let bytes = encode(&[], 64);
        assert_eq!(bytes.len(), MAGIC.len() + 16);
        assert_eq!(decode(&bytes).unwrap(), Vec::new());
        let s = stats(&bytes).unwrap();
        assert_eq!((s.events, s.chunks), (0, 0));
    }

    #[test]
    fn streaming_encoder_matches_one_shot() {
        let events = sample();
        let mut enc = TraceEncoder::with_chunk_events(100);
        for &(pc, v) in &events {
            enc.push(pc, v);
        }
        assert_eq!(enc.finish(), encode(&events, 100));
    }

    #[test]
    fn stats_report_shape() {
        let events = sample();
        let bytes = encode(&events, 100);
        let s = stats(&bytes).unwrap();
        assert_eq!(s.events, 1000);
        assert_eq!(s.chunks, 10);
        assert_eq!(s.bytes, bytes.len() as u64);
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&sample(), 100);
        for cut in [0, 2, MAGIC.len(), MAGIC.len() + 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode(&sample(), 100);
        for pos in [0, 4, 5, 9, 13, 40, bytes.len() - 10, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn trailing_data_is_rejected() {
        let mut bytes = encode(&sample(), 100);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingData));
    }

    #[test]
    fn extreme_values_round_trip() {
        let events =
            vec![(0, 0), (u32::MAX, u64::MAX), (1, 1 << 63), (42, 0x7F), (42, 0x80), (42, 0x3FFF)];
        assert_eq!(decode(&encode(&events, 2)).unwrap(), events);
    }

    /// A single-chunk file with a *valid* CRC over an arbitrary header
    /// `count` and payload — the shape an adversarial writer controls.
    fn craft_chunk(count: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = MAGIC.to_vec();
        let len = (payload.len() as u32).to_le_bytes();
        let count_bytes = count.to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&len);
        crc.update(&count_bytes);
        crc.update(payload);
        out.extend_from_slice(&len);
        out.extend_from_slice(&count_bytes);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(payload);
        let mut trailer = Vec::new();
        trailer.extend_from_slice(&0u32.to_le_bytes());
        trailer.extend_from_slice(&u64::from(count).to_le_bytes());
        let trailer_crc = crc32(&trailer);
        out.extend_from_slice(&trailer);
        out.extend_from_slice(&trailer_crc.to_le_bytes());
        out
    }

    #[test]
    fn adversarial_count_is_rejected_before_allocation() {
        // CRC-valid header claiming u32::MAX events over a 4-byte
        // payload. Pre-fix, this asked `Vec::with_capacity` for ~64 GiB
        // before the post-decode count check could fire.
        let bomb = craft_chunk(u32::MAX, &[0x00, 0x01, 0x00, 0x02]);
        assert_eq!(decode(&bomb), Err(CodecError::CorruptChunk { index: 0 }));
    }

    #[test]
    fn count_mismatch_within_bounds_is_still_rejected() {
        // Two events in the payload, three claimed: passes the count
        // ≤ len screen, so only the decoded-count check catches it.
        let bad = craft_chunk(3, &[0x00, 0x01, 0x00, 0x02]);
        assert_eq!(decode(&bad), Err(CodecError::CorruptChunk { index: 0 }));
    }

    #[test]
    fn overlong_varints_are_rejected_as_corruption() {
        // `80 00` is an overlong encoding of pc 0. The CRC is valid, so
        // only the canonical-varint rule distinguishes this payload from
        // `00 07` — without it, two distinct CRC-valid files would
        // decode to the same events.
        let bad = craft_chunk(1, &[0x80, 0x00, 0x07]);
        assert_eq!(decode(&bad), Err(CodecError::CorruptChunk { index: 0 }));
        let good = craft_chunk(1, &[0x00, 0x07]);
        assert_eq!(decode(&good).unwrap(), vec![(0, 7)]);

        // Same overlong form with ≥ 8 payload bytes remaining, so the
        // SWAR fast path (not the scalar tail loop) must reject it.
        let bad = craft_chunk(4, &[0x80, 0x00, 0x07, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03]);
        assert_eq!(decode(&bad), Err(CodecError::CorruptChunk { index: 0 }));

        // Ten-byte zero-extension: the maximal-length overlong form.
        let bad =
            craft_chunk(1, &[0x01, 0xFF, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00]);
        assert_eq!(decode(&bad), Err(CodecError::CorruptChunk { index: 0 }));
    }

    #[test]
    fn next_chunk_into_reuses_one_scratch_buffer() {
        let events = sample();
        let bytes = encode(&events, 64);
        let mut reader = ChunkReader::new(&bytes).unwrap();
        let mut scratch = Vec::new();
        let mut all = Vec::new();
        while reader.next_chunk_into(&mut scratch).unwrap() {
            assert!(scratch.len() <= 64, "scratch holds exactly one chunk");
            all.extend_from_slice(&scratch);
        }
        assert_eq!(all, events);
        assert!(!reader.next_chunk_into(&mut scratch).unwrap(), "stays done");
    }

    #[test]
    fn trace_file_round_trips_from_disk_and_memory() {
        let events = sample();
        let bytes = encode(&events, 128);

        let mem = TraceFile::from_bytes(bytes.clone());
        assert!(!mem.is_mapped());
        let mut out = Vec::new();
        mem.reader().unwrap().read_to_end_into(&mut out).unwrap();
        assert_eq!(out, events);

        let path = std::env::temp_dir().join(format!("vp-trace-file-{}.vpc", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let file = TraceFile::open(&path).unwrap();
        assert_eq!(file.len(), bytes.len());
        assert_eq!(decode(file.bytes()).unwrap(), events);
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(
            file.is_mapped() || std::env::var_os("VP_NO_MMAP").is_some(),
            "linux opens traces as mappings"
        );
        drop(file);
        std::fs::remove_file(&path).ok();
    }
}
