//! Compact binary value-trace format: record a workload's `(pc, value)`
//! stream once, replay it many times/ways (ATOM's trace-once,
//! analyze-many methodology, applied to the value profiler's hot path).
//!
//! Where [`crate::trace`] captures *every* instrumentation callback in
//! fixed-width records for full offline replay, this codec stores only
//! the destination-value stream the profilers consume — which is all
//! that batched ingestion and intra-workload sharding need — at a
//! fraction of the size thanks to LEB128 varints.
//!
//! ## Wire format
//!
//! ```text
//! file    := magic chunk* trailer
//! magic   := "VPC1"                          (4 bytes)
//! chunk   := len:u32le count:u32le crc:u32le payload[len]
//!            len   — payload bytes, always > 0
//!            count — events in the payload
//!            crc   — CRC32 of len‖count‖payload
//! payload := count × ( varint(pc) varint(value) )   (LEB128)
//! trailer := 0:u32le total:u64le crc:u32le
//!            total — events in the whole file
//!            crc   — CRC32 of 0‖total
//! ```
//!
//! A zero `len` field is what distinguishes the trailer from a chunk
//! header, so an empty trace is just `magic + trailer`. Every region of
//! the file is covered by a CRC32 ([`vp_obs::crc32`], the same checksum
//! behind `vp_core::durable`'s profile footers): decoding verifies each
//! chunk's checksum and event count, the trailer's checksum and total,
//! and that the file ends exactly at the trailer — truncated or
//! bit-flipped traces are rejected, never mis-decoded.

use std::fmt;

use vp_obs::crc32;

/// File magic, versioned (`VPC` + format version `1`).
pub const MAGIC: &[u8; 4] = b"VPC1";

/// Default events per chunk — large enough to amortize per-chunk header
/// cost and hash-map dispatch during batched replay, small enough that a
/// buffered reader stays cache-friendly.
pub const DEFAULT_CHUNK_EVENTS: usize = 8192;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends before a complete chunk, trailer, or varint.
    Truncated,
    /// A chunk's checksum or event count does not match its payload.
    CorruptChunk {
        /// Zero-based index of the offending chunk.
        index: usize,
    },
    /// The trailer's checksum or event total does not match the chunks.
    CorruptTrailer,
    /// Bytes follow the trailer.
    TrailingData,
    /// A varint is malformed (more than 10 bytes / overflows u64).
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a VPC1 value trace (bad magic)"),
            CodecError::Truncated => write!(f, "trace truncated mid-chunk or missing trailer"),
            CodecError::CorruptChunk { index } => {
                write!(f, "trace chunk {index} corrupt (checksum or count mismatch)")
            }
            CodecError::CorruptTrailer => write!(f, "trace trailer corrupt (checksum or total)"),
            CodecError::TrailingData => write!(f, "unexpected data after trace trailer"),
            CodecError::BadVarint => write!(f, "malformed varint in trace payload"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        // The tenth byte of a u64 varint may only carry the top bit of
        // the value; anything more would overflow.
        if shift == 63 && byte > 1 {
            return Err(CodecError::BadVarint);
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::BadVarint);
        }
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len()).ok_or(CodecError::Truncated)?;
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().expect("4-byte slice"));
    *pos = end;
    Ok(v)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len()).ok_or(CodecError::Truncated)?;
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8-byte slice"));
    *pos = end;
    Ok(v)
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// Streaming trace encoder: push events as the simulator produces them;
/// each full chunk is sealed (header + checksum) and appended to the
/// output buffer immediately, so peak transient state is one chunk.
#[derive(Debug)]
pub struct TraceEncoder {
    out: Vec<u8>,
    payload: Vec<u8>,
    chunk_events: u32,
    max_chunk_events: usize,
    chunks: u64,
    total: u64,
}

impl TraceEncoder {
    /// Encoder with the default chunk size.
    pub fn new() -> TraceEncoder {
        TraceEncoder::with_chunk_events(DEFAULT_CHUNK_EVENTS)
    }

    /// Encoder sealing a chunk every `chunk_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_events` is zero.
    pub fn with_chunk_events(chunk_events: usize) -> TraceEncoder {
        assert!(chunk_events > 0, "chunk size must be at least one event");
        TraceEncoder {
            out: MAGIC.to_vec(),
            payload: Vec::new(),
            chunk_events: 0,
            max_chunk_events: chunk_events,
            chunks: 0,
            total: 0,
        }
    }

    /// Appends one `(pc, value)` event.
    pub fn push(&mut self, pc: u32, value: u64) {
        push_varint(&mut self.payload, u64::from(pc));
        push_varint(&mut self.payload, value);
        self.chunk_events += 1;
        self.total += 1;
        if self.chunk_events as usize >= self.max_chunk_events {
            self.seal_chunk();
        }
    }

    /// Appends a batch of events.
    pub fn push_all(&mut self, events: &[(u32, u64)]) {
        for &(pc, value) in events {
            self.push(pc, value);
        }
    }

    /// Events encoded so far.
    pub fn events(&self) -> u64 {
        self.total
    }

    /// Chunks sealed so far (the partial chunk, if any, not included).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    fn seal_chunk(&mut self) {
        debug_assert!(!self.payload.is_empty());
        let len = (self.payload.len() as u32).to_le_bytes();
        let count = self.chunk_events.to_le_bytes();
        let mut crc = !0u32;
        for bytes in [&len[..], &count[..], &self.payload] {
            for &b in bytes {
                crc = crc32_step(crc, b);
            }
        }
        self.out.extend_from_slice(&len);
        self.out.extend_from_slice(&count);
        self.out.extend_from_slice(&(!crc).to_le_bytes());
        self.out.extend_from_slice(&self.payload);
        self.payload.clear();
        self.chunk_events = 0;
        self.chunks += 1;
    }

    /// Seals the final partial chunk, appends the trailer, and returns
    /// the complete file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if !self.payload.is_empty() {
            self.seal_chunk();
        }
        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&0u32.to_le_bytes());
        trailer.extend_from_slice(&self.total.to_le_bytes());
        let crc = crc32(&trailer);
        self.out.extend_from_slice(&trailer);
        self.out.extend_from_slice(&crc.to_le_bytes());
        self.out
    }
}

impl Default for TraceEncoder {
    fn default() -> TraceEncoder {
        TraceEncoder::new()
    }
}

// One step of the same reflected IEEE CRC32 `vp_obs::crc32` computes,
// letting the encoder checksum header + payload without concatenating
// them into a scratch buffer.
fn crc32_step(crc: u32, byte: u8) -> u32 {
    // Single-bit-at-a-time update; chunk sealing is not the hot path.
    let mut crc = crc ^ u32::from(byte);
    for _ in 0..8 {
        crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
    }
    crc
}

/// One-shot convenience: encodes `events` with the given chunk size.
pub fn encode(events: &[(u32, u64)], chunk_events: usize) -> Vec<u8> {
    let mut enc = TraceEncoder::with_chunk_events(chunk_events);
    enc.push_all(events);
    enc.finish()
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Buffered chunk reader: verifies the magic up front, then yields one
/// decoded chunk at a time so replay never materializes more than one
/// chunk beyond what the caller keeps.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk_index: usize,
    decoded: u64,
    done: bool,
}

impl<'a> ChunkReader<'a> {
    /// Starts reading `bytes`; fails immediately on a bad magic.
    pub fn new(bytes: &'a [u8]) -> Result<ChunkReader<'a>, CodecError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        Ok(ChunkReader { bytes, pos: MAGIC.len(), chunk_index: 0, decoded: 0, done: false })
    }

    /// Decodes the next chunk, or returns `None` once the trailer has
    /// been reached and verified. After `None`, further calls keep
    /// returning `None`.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<(u32, u64)>>, CodecError> {
        if self.done {
            return Ok(None);
        }
        let header_start = self.pos;
        let len = read_u32(self.bytes, &mut self.pos)? as usize;
        if len == 0 {
            // Trailer: verify the total and checksum, require exact EOF.
            let total = read_u64(self.bytes, &mut self.pos)?;
            let stored_crc = read_u32(self.bytes, &mut self.pos)?;
            if crc32(&self.bytes[header_start..header_start + 12]) != stored_crc
                || total != self.decoded
            {
                return Err(CodecError::CorruptTrailer);
            }
            if self.pos != self.bytes.len() {
                return Err(CodecError::TrailingData);
            }
            self.done = true;
            return Ok(None);
        }
        let count = read_u32(self.bytes, &mut self.pos)? as usize;
        let stored_crc = read_u32(self.bytes, &mut self.pos)?;
        let payload_end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CodecError::Truncated)?;
        let mut crc = !0u32;
        for &b in &self.bytes[header_start..header_start + 8] {
            crc = crc32_step(crc, b);
        }
        for &b in &self.bytes[self.pos..payload_end] {
            crc = crc32_step(crc, b);
        }
        if !crc != stored_crc {
            return Err(CodecError::CorruptChunk { index: self.chunk_index });
        }
        let mut events = Vec::with_capacity(count);
        let payload = &self.bytes[..payload_end];
        let corrupt = CodecError::CorruptChunk { index: self.chunk_index };
        while self.pos < payload_end {
            // Any malformed varint here is chunk corruption: the bytes
            // passed the checksum but do not parse as `count` pairs.
            let pc = read_varint(payload, &mut self.pos).map_err(|_| corrupt.clone())?;
            let value = read_varint(payload, &mut self.pos).map_err(|_| corrupt.clone())?;
            if pc > u64::from(u32::MAX) {
                return Err(corrupt);
            }
            events.push((pc as u32, value));
        }
        if events.len() != count {
            return Err(CodecError::CorruptChunk { index: self.chunk_index });
        }
        self.decoded += events.len() as u64;
        self.chunk_index += 1;
        Ok(Some(events))
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> usize {
        self.chunk_index
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.decoded
    }
}

/// Decodes a whole trace, verifying every chunk and the trailer.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, u64)>, CodecError> {
    let mut reader = ChunkReader::new(bytes)?;
    let mut events = Vec::new();
    while let Some(chunk) = reader.next_chunk()? {
        events.extend_from_slice(&chunk);
    }
    Ok(events)
}

/// Shape of a decoded trace, for `vprof record`/`replay` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in the trace.
    pub events: u64,
    /// Number of chunks.
    pub chunks: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
}

/// Verifies a trace end-to-end and reports its shape without keeping
/// the decoded events.
pub fn stats(bytes: &[u8]) -> Result<TraceStats, CodecError> {
    let mut reader = ChunkReader::new(bytes)?;
    while reader.next_chunk()?.is_some() {}
    Ok(TraceStats {
        events: reader.events_read(),
        chunks: reader.chunks_read() as u64,
        bytes: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u32, u64)> {
        (0..1000u32)
            .map(|i| (i % 17, if i % 5 == 0 { 0 } else { u64::from(i) * 0x0123_4567_89AB }))
            .collect()
    }

    #[test]
    fn round_trip_and_chunk_invariance() {
        let events = sample();
        let reference = encode(&events, DEFAULT_CHUNK_EVENTS);
        assert_eq!(decode(&reference).unwrap(), events);
        for chunk in [1, 3, 7, 1000, 5000] {
            assert_eq!(decode(&encode(&events, chunk)).unwrap(), events, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_trace_is_magic_plus_trailer() {
        let bytes = encode(&[], 64);
        assert_eq!(bytes.len(), MAGIC.len() + 16);
        assert_eq!(decode(&bytes).unwrap(), Vec::new());
        let s = stats(&bytes).unwrap();
        assert_eq!((s.events, s.chunks), (0, 0));
    }

    #[test]
    fn streaming_encoder_matches_one_shot() {
        let events = sample();
        let mut enc = TraceEncoder::with_chunk_events(100);
        for &(pc, v) in &events {
            enc.push(pc, v);
        }
        assert_eq!(enc.finish(), encode(&events, 100));
    }

    #[test]
    fn stats_report_shape() {
        let events = sample();
        let bytes = encode(&events, 100);
        let s = stats(&bytes).unwrap();
        assert_eq!(s.events, 1000);
        assert_eq!(s.chunks, 10);
        assert_eq!(s.bytes, bytes.len() as u64);
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&sample(), 100);
        for cut in [0, 2, MAGIC.len(), MAGIC.len() + 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode(&sample(), 100);
        for pos in [0, 4, 5, 9, 13, 40, bytes.len() - 10, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn trailing_data_is_rejected() {
        let mut bytes = encode(&sample(), 100);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingData));
    }

    #[test]
    fn extreme_values_round_trip() {
        let events =
            vec![(0, 0), (u32::MAX, u64::MAX), (1, 1 << 63), (42, 0x7F), (42, 0x80), (42, 0x3FFF)];
        assert_eq!(decode(&encode(&events, 2)).unwrap(), events);
    }
}
