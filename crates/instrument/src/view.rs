//! Static program queries: the `program → procedure → basic block →
//! instruction` hierarchy ATOM exposed to instrumentation tools.

use vp_asm::{Procedure, Program};
use vp_isa::Instruction;
use vp_sim::{BasicBlock, Cfg};

/// A reference to one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrRef {
    /// Instruction index in the program text.
    pub index: u32,
    /// The instruction.
    pub instr: Instruction,
}

/// A procedure together with its basic blocks.
#[derive(Debug, Clone)]
pub struct ProcView<'p> {
    proc: &'p Procedure,
    blocks: Vec<BasicBlock>,
    program: &'p Program,
}

impl<'p> ProcView<'p> {
    /// Procedure name.
    pub fn name(&self) -> &str {
        &self.proc.name
    }

    /// The underlying procedure record.
    pub fn procedure(&self) -> &Procedure {
        self.proc
    }

    /// Basic blocks fully contained in this procedure.
    pub fn basic_blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Instructions of the procedure, in order.
    pub fn instructions(&self) -> impl Iterator<Item = InstrRef> + '_ {
        let code = self.program.code();
        self.proc.range.clone().map(move |index| InstrRef { index, instr: code[index as usize] })
    }
}

/// The static view of a program, built once and queried many times — the
/// equivalent of ATOM's instrumentation-time object queries.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_instrument::ProgramView;
///
/// let program = vp_asm::assemble(
///     ".text\n.proc main\nmain: li r1, 1\n sys exit\n.endp\n",
/// )?;
/// let view = ProgramView::new(&program);
/// let main = view.procedures().next().unwrap();
/// assert_eq!(main.name(), "main");
/// assert_eq!(main.instructions().count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramView<'p> {
    program: &'p Program,
    cfg: Cfg,
}

impl<'p> ProgramView<'p> {
    /// Builds the view (discovers basic blocks).
    pub fn new(program: &'p Program) -> ProgramView<'p> {
        ProgramView { program, cfg: Cfg::build(program) }
    }

    /// The underlying program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The discovered control-flow structure.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Iterates over declared procedures.
    pub fn procedures(&self) -> impl Iterator<Item = ProcView<'p>> + '_ {
        self.program.procedures().iter().map(move |proc| ProcView {
            proc,
            blocks: self
                .cfg
                .blocks()
                .iter()
                .filter(|b| proc.range.contains(&b.range.start))
                .cloned()
                .collect(),
            program: self.program,
        })
    }

    /// Iterates over every static instruction.
    pub fn instructions(&self) -> impl Iterator<Item = InstrRef> + 'p {
        self.program
            .code()
            .iter()
            .enumerate()
            .map(|(i, &instr)| InstrRef { index: i as u32, instr })
    }

    /// Indices of all load instructions.
    pub fn load_indices(&self) -> Vec<u32> {
        self.instructions().filter(|r| r.instr.is_load()).map(|r| r.index).collect()
    }

    /// Indices of all register-defining instructions (the paper's "all
    /// instructions" profiling universe).
    pub fn register_defining_indices(&self) -> Vec<u32> {
        self.instructions().filter(|r| r.instr.is_register_defining()).map(|r| r.index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        vp_asm::assemble(
            r#"
            .data
            x: .quad 5
            .text
            main:
                la  r1, x
                ldd r2, 0(r1)
                call f
                sys exit
            .proc f
            f:
                add r3, r2, r2
                ret
            .endp
            "#,
        )
        .unwrap()
    }

    #[test]
    fn hierarchy() {
        let p = sample();
        let view = ProgramView::new(&p);
        let procs: Vec<_> = view.procedures().collect();
        assert_eq!(procs.len(), 1);
        assert_eq!(procs[0].name(), "f");
        assert_eq!(procs[0].instructions().count(), 2);
        assert!(!procs[0].basic_blocks().is_empty());
        assert_eq!(procs[0].procedure().name, "f");
    }

    #[test]
    fn instruction_filters() {
        let p = sample();
        let view = ProgramView::new(&p);
        assert_eq!(view.load_indices().len(), 1);
        // la expands to lui+ori (2) + ldd (1) + add (1) = 4 defining instrs.
        assert_eq!(view.register_defining_indices().len(), 4);
        assert_eq!(view.instructions().count(), p.len());
        assert_eq!(view.program().len(), p.len());
        assert!(!view.cfg().blocks().is_empty());
    }
}
