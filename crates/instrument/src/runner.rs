//! Running programs with analyses attached.

use vp_asm::Program;
use vp_isa::{Instruction, Reg, Value};
use vp_sim::{ExecStats, InstrEvent, Machine, MachineConfig, MemAccess, RunOutcome, SimError};

use crate::plan::Selection;

/// An analysis tool: the instrumentation-time code of an ATOM tool.
///
/// All callbacks have empty default bodies, so an analysis implements only
/// the events it cares about. Callbacks receive the [`Machine`] *after* the
/// instruction executed (ATOM's "instrument after" point, which is where
/// the paper reads destination register values).
pub trait Analysis {
    /// Called after every *selected* instruction executes.
    fn after_instr(&mut self, machine: &Machine, event: &InstrEvent) {
        let _ = (machine, event);
    }

    /// Called after every selected load with its effective address/value.
    fn on_load(&mut self, machine: &Machine, index: u32, access: &MemAccess) {
        let _ = (machine, index, access);
    }

    /// Called after every selected store with its effective address/value.
    fn on_store(&mut self, machine: &Machine, index: u32, access: &MemAccess) {
        let _ = (machine, index, access);
    }

    /// Called when control enters a declared procedure via `jal`/`jalr`.
    /// `args` are the four argument registers at entry.
    fn on_proc_entry(&mut self, machine: &Machine, proc_index: usize, args: [Value; 4]) {
        let _ = (machine, proc_index, args);
    }

    /// Called when a procedure entered via `on_proc_entry` returns.
    /// `ret` is the return-value register `v0` at the return point.
    fn on_proc_exit(&mut self, machine: &Machine, proc_index: usize, ret: Value) {
        let _ = (machine, proc_index, ret);
    }
}

/// Counts of analysis invocations — the exact measure of profiling
/// overhead used in experiment E12 (the paper reported slowdowns of its
/// ATOM tools; the event counts are the machine-independent cause).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `after_instr` invocations.
    pub instr_events: u64,
    /// `on_load` invocations.
    pub load_events: u64,
    /// `on_store` invocations.
    pub store_events: u64,
    /// `on_proc_entry` invocations.
    pub entry_events: u64,
    /// `on_proc_exit` invocations.
    pub exit_events: u64,
}

impl EventCounts {
    /// Total analysis invocations of any kind.
    pub fn total(&self) -> u64 {
        self.instr_events
            + self.load_events
            + self.store_events
            + self.entry_events
            + self.exit_events
    }
}

/// Result of an instrumented run.
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// The program's own outcome.
    pub outcome: RunOutcome,
    /// How many analysis events fired.
    pub counts: EventCounts,
    /// Dynamic execution statistics of the run.
    pub stats: ExecStats,
}

/// Configures and executes instrumented runs (the ATOM driver).
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_instrument::{Analysis, Instrumenter, Selection};
///
/// struct Nothing;
/// impl Analysis for Nothing {}
///
/// let program = vp_asm::assemble(".text\nmain: sys exit\n")?;
/// let run = Instrumenter::new()
///     .select(Selection::None)
///     .run(&program, vp_sim::MachineConfig::new(), 100, &mut Nothing)?;
/// assert_eq!(run.counts.total(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Instrumenter {
    selection: Selection,
    procedures: bool,
}

impl Instrumenter {
    /// A new instrumenter that selects all instructions and does not
    /// instrument procedures.
    pub fn new() -> Instrumenter {
        Instrumenter { selection: Selection::All, procedures: false }
    }

    /// Sets which instructions receive `after_instr`/`on_load`/`on_store`.
    pub fn select(mut self, selection: Selection) -> Instrumenter {
        self.selection = selection;
        self
    }

    /// Enables procedure entry/exit instrumentation.
    pub fn with_procedures(mut self, yes: bool) -> Instrumenter {
        self.procedures = yes;
        self
    }

    /// Runs `program` under `config` with `analysis` attached, for at most
    /// `budget` instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the emulator (including budget
    /// exhaustion).
    pub fn run<A: Analysis>(
        &self,
        program: &Program,
        config: MachineConfig,
        budget: u64,
        analysis: &mut A,
    ) -> Result<InstrumentedRun, SimError> {
        let selected = self.selection.resolve(program);
        let mut machine = Machine::new(program.clone(), config)?;
        let mut counts = EventCounts::default();
        // Shadow call stack: (procedure index, expected return instruction).
        let mut call_stack: Vec<(usize, u32)> = Vec::new();
        let procs = self.procedures;
        // Cooperative cancellation point every 4096 executed instructions
        // — frequent enough that a hung (e.g. fault-injected) workload is
        // cut loose within milliseconds, cheap enough to vanish in the
        // uninstrumented path (one counter increment and branch).
        let mut tick = 0u64;

        let outcome = machine.run_with(budget, |m, event| {
            tick += 1;
            if tick & 0xFFF == 0 {
                crate::cancel::checkpoint();
            }
            if selected.get(event.index as usize).copied().unwrap_or(false) {
                counts.instr_events += 1;
                analysis.after_instr(m, event);
                if let Some(access) = &event.mem {
                    if access.store {
                        counts.store_events += 1;
                        analysis.on_store(m, event.index, access);
                    } else {
                        counts.load_events += 1;
                        analysis.on_load(m, event.index, access);
                    }
                }
            }
            if procs {
                track_procedures(m, event, &mut call_stack, &mut counts, analysis);
            }
        })?;

        let stats = machine.stats().clone();
        Ok(InstrumentedRun { outcome, counts, stats })
    }
}

fn track_procedures<A: Analysis>(
    machine: &Machine,
    event: &InstrEvent,
    call_stack: &mut Vec<(usize, u32)>,
    counts: &mut EventCounts,
    analysis: &mut A,
) {
    let program = machine.program();
    match event.instr {
        Instruction::Jal { .. } | Instruction::Jalr { .. } => {
            let target = event.next_index;
            if let Some(pos) = program.procedures().iter().position(|p| p.range.start == target) {
                let args = [
                    machine.reg(Reg::A0),
                    machine.reg(Reg::A1),
                    machine.reg(Reg::A2),
                    machine.reg(Reg::A3),
                ];
                call_stack.push((pos, event.index + 1));
                counts.entry_events += 1;
                analysis.on_proc_entry(machine, pos, args);
            }
        }
        Instruction::Jr { .. } => {
            if let Some(&(proc, ret_to)) = call_stack.last() {
                if ret_to == event.next_index {
                    call_stack.pop();
                    counts.exit_events += 1;
                    analysis.on_proc_exit(machine, proc, machine.reg(Reg::V0));
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALL_PROGRAM: &str = r#"
        .data
        x: .quad 7
        .text
        main:
            li  a0, 3
            call triple
            la  r8, x
            ldd r2, 0(r8)
            std r2, 0(r8)
            mov a0, v0
            sys exit
        .proc triple
        triple:
            add v0, a0, a0
            add v0, v0, a0
            ret
        .endp
    "#;

    #[derive(Default)]
    struct Recorder {
        instrs: Vec<u32>,
        loads: Vec<(u32, u64)>,
        stores: Vec<(u32, u64)>,
        entries: Vec<(usize, [u64; 4])>,
        exits: Vec<(usize, u64)>,
    }

    impl Analysis for Recorder {
        fn after_instr(&mut self, _m: &Machine, ev: &InstrEvent) {
            self.instrs.push(ev.index);
        }
        fn on_load(&mut self, _m: &Machine, index: u32, a: &MemAccess) {
            self.loads.push((index, a.value));
        }
        fn on_store(&mut self, _m: &Machine, index: u32, a: &MemAccess) {
            self.stores.push((index, a.value));
        }
        fn on_proc_entry(&mut self, _m: &Machine, p: usize, args: [u64; 4]) {
            self.entries.push((p, args));
        }
        fn on_proc_exit(&mut self, _m: &Machine, p: usize, ret: u64) {
            self.exits.push((p, ret));
        }
    }

    fn program() -> Program {
        vp_asm::assemble(CALL_PROGRAM).unwrap()
    }

    #[test]
    fn full_instrumentation_sees_everything() {
        let p = program();
        let mut rec = Recorder::default();
        let run = Instrumenter::new()
            .with_procedures(true)
            .run(&p, MachineConfig::new(), 10_000, &mut rec)
            .unwrap();
        assert_eq!(run.outcome.exit_code, 9);
        assert_eq!(rec.instrs.len() as u64, run.outcome.instructions);
        assert_eq!(rec.loads, vec![(4, 7)]);
        assert_eq!(rec.stores, vec![(5, 7)]);
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].0, 0);
        assert_eq!(rec.entries[0].1[0], 3);
        assert_eq!(rec.exits, vec![(0, 9)]);
        assert_eq!(run.counts.entry_events, 1);
        assert_eq!(run.counts.exit_events, 1);
        assert_eq!(run.counts.load_events, 1);
        assert_eq!(run.counts.store_events, 1);
        assert!(run.counts.total() > 4);
    }

    #[test]
    fn loads_only_selection() {
        let p = program();
        let mut rec = Recorder::default();
        let run = Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(&p, MachineConfig::new(), 10_000, &mut rec)
            .unwrap();
        assert_eq!(rec.instrs.len(), 1);
        assert_eq!(rec.loads.len(), 1);
        assert!(rec.stores.is_empty()); // stores not selected
        assert!(rec.entries.is_empty()); // procedures off
        assert_eq!(run.counts.instr_events, 1);
    }

    #[test]
    fn none_selection_costs_nothing() {
        let p = program();
        let mut rec = Recorder::default();
        let run = Instrumenter::new()
            .select(Selection::None)
            .run(&p, MachineConfig::new(), 10_000, &mut rec)
            .unwrap();
        assert_eq!(run.counts.total(), 0);
        assert!(rec.instrs.is_empty());
        assert_eq!(run.outcome.exit_code, 9);
        assert_eq!(run.stats.total(), run.outcome.instructions);
    }

    #[test]
    fn recursive_procedure_tracking() {
        let src = r#"
            .text
            main:
                li a0, 3
                call down
                mov a0, v0
                sys exit
            .proc down
            down:
                addi sp, sp, -16
                std  ra, 0(sp)
                mov  v0, a0
                bz   a0, out
                addi a0, a0, -1
                call down
            out:
                ldd  ra, 0(sp)
                addi sp, sp, 16
                ret
            .endp
        "#;
        let p = vp_asm::assemble(src).unwrap();
        let mut rec = Recorder::default();
        Instrumenter::new()
            .select(Selection::None)
            .with_procedures(true)
            .run(&p, MachineConfig::new(), 10_000, &mut rec)
            .unwrap();
        assert_eq!(rec.entries.len(), 4); // down(3), down(2), down(1), down(0)
        assert_eq!(rec.exits.len(), 4);
        assert_eq!(rec.entries[0].1[0], 3);
        assert_eq!(rec.entries[3].1[0], 0);
    }
}
