//! Length-prefixed, CRC-verified message frames for the worker protocol.
//!
//! The distributed suite runner talks to `vprof worker` subprocesses over
//! pipes. Frames echo the VPC1 chunk shape ([`trace_codec`]) so a torn or
//! corrupted message is *detected*, never silently consumed:
//!
//! ```text
//! stream  := magic frame*
//! magic   := "VPW1"
//! frame   := len:u32le kind:u32le crc:u32le payload[len]
//!            crc — CRC32 of kind‖payload (vp_obs::crc32)
//! ```
//!
//! The error taxonomy matters more than the bytes: a worker killed
//! mid-write leaves a *prefix* of a frame behind, so EOF anywhere
//! *inside* a frame is [`FrameError::Torn`] — the retryable worker-death
//! signature. EOF exactly *at* a frame boundary (zero bytes of the next
//! header arrived) is [`FrameError::PeerClosed`]: the stream ended where
//! a frame could have cleanly ended, which is how an orderly disconnect
//! looks — the daemon (`vprof serve`) uses the distinction to tell a
//! client that hung up from one that crashed mid-send. Bytes that are
//! all present but wrong (bad magic, CRC mismatch, absurd length) are
//! [`FrameError::Corrupt`]. Consumers that treat any EOF as peer death
//! (the worker pool, where a response was always expected) must match
//! both `Torn` and `PeerClosed` — the seam `tests/distributed_suite.rs`
//! pins down.
//!
//! [`trace_codec`]: crate::trace_codec

use std::fmt;
use std::io::{self, Read, Write};

use vp_obs::Crc32;

/// Stream magic, written once before the first frame.
pub const FRAME_MAGIC: [u8; 4] = *b"VPW1";

/// Upper bound on a frame payload — far above any real message, low
/// enough that a corrupted length field fails fast instead of allocating
/// gigabytes.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// One decoded frame: a small `kind` discriminant and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant, protocol-defined.
    pub kind: u32,
    /// Message body (JSON for control messages, raw bytes otherwise).
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary: zero bytes of the
    /// next header had arrived. The signature of an orderly disconnect —
    /// the peer finished a frame (or never sent one) and closed.
    PeerClosed,
    /// The stream ended mid-frame: the signature of a peer that died
    /// mid-write. Retryable — the bytes that did arrive are a clean
    /// prefix, nothing was misinterpreted.
    Torn(String),
    /// The bytes are all present but wrong: bad magic, CRC mismatch, or
    /// an implausible length. Not a death signature — something wrote
    /// garbage into the stream.
    Corrupt(String),
    /// The underlying read failed outright.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::PeerClosed => f.write_str("peer closed the stream at a frame boundary"),
            FrameError::Torn(detail) => write!(f, "torn frame: {detail}"),
            FrameError::Corrupt(detail) => write!(f, "corrupt frame: {detail}"),
            FrameError::Io(e) => write!(f, "frame io: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

fn frame_crc(kind: u32, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&kind.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Encodes one frame (header + payload) into a byte vector.
pub fn encode_frame(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&frame_crc(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes the stream magic.
pub fn write_magic<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&FRAME_MAGIC)
}

/// Writes one frame and flushes, so a crash *after* this call never
/// tears it.
pub fn write_frame<W: Write>(w: &mut W, kind: u32, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()
}

/// Reads frames off a byte stream, distinguishing torn tails from
/// corruption.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream. Call [`expect_magic`](Self::expect_magic)
    /// before the first [`read_frame`](Self::read_frame).
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner }
    }

    // Reads exactly `buf.len()` bytes. EOF mid-read is Torn; EOF before
    // the first byte is PeerClosed only when `at_boundary` — i.e. the
    // bytes being read are the start of a frame (or the magic), where a
    // clean close is a legal end of stream. Zero bytes of a *payload*
    // after a complete header is still mid-frame, still Torn.
    fn read_exact_or_torn(
        &mut self,
        buf: &mut [u8],
        what: &str,
        at_boundary: bool,
    ) -> Result<(), FrameError> {
        let mut have = 0;
        while have < buf.len() {
            match self.inner.read(&mut buf[have..]) {
                Ok(0) if have == 0 && at_boundary => return Err(FrameError::PeerClosed),
                Ok(0) => {
                    return Err(FrameError::Torn(format!(
                        "eof after {have} of {} {what} bytes",
                        buf.len()
                    )));
                }
                Ok(n) => have += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(())
    }

    /// Consumes and verifies the stream magic. A peer that connected and
    /// closed without sending a byte is [`FrameError::PeerClosed`]; EOF
    /// mid-magic is [`FrameError::Torn`].
    pub fn expect_magic(&mut self) -> Result<(), FrameError> {
        let mut magic = [0u8; 4];
        self.read_exact_or_torn(&mut magic, "magic", true)?;
        if magic != FRAME_MAGIC {
            return Err(FrameError::Corrupt(format!(
                "bad magic {magic:02x?}, want {FRAME_MAGIC:02x?}"
            )));
        }
        Ok(())
    }

    /// Reads the next frame. EOF *at* a frame boundary (zero header
    /// bytes arrived) is [`FrameError::PeerClosed`] — an orderly
    /// disconnect; EOF anywhere inside the header or payload is
    /// [`FrameError::Torn`] — a peer that died mid-write.
    pub fn read_frame(&mut self) -> Result<Frame, FrameError> {
        let mut header = [0u8; 12];
        self.read_exact_or_torn(&mut header, "header", true)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let kind = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Corrupt(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact_or_torn(&mut payload, "payload", false)?;
        let want = frame_crc(kind, &payload);
        if crc != want {
            return Err(FrameError::Corrupt(format!(
                "crc mismatch: stored {crc:#010x}, computed {want:#010x}"
            )));
        }
        Ok(Frame { kind, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(frames: &[(u32, &[u8])]) -> Vec<u8> {
        let mut out = FRAME_MAGIC.to_vec();
        for &(kind, payload) in frames {
            out.extend_from_slice(&encode_frame(kind, payload));
        }
        out
    }

    #[test]
    fn round_trips_frames_in_order() {
        let bytes = stream(&[(1, b"hello"), (2, b""), (7, &[0u8; 1000])]);
        let mut r = FrameReader::new(bytes.as_slice());
        r.expect_magic().unwrap();
        assert_eq!(r.read_frame().unwrap(), Frame { kind: 1, payload: b"hello".to_vec() });
        assert_eq!(r.read_frame().unwrap(), Frame { kind: 2, payload: Vec::new() });
        assert_eq!(r.read_frame().unwrap().payload.len(), 1000);
        // The stream is drained: the next read is a clean close, not a
        // tear — nothing of the next frame ever arrived.
        assert!(matches!(r.read_frame(), Err(FrameError::PeerClosed)));
    }

    #[test]
    fn every_proper_prefix_is_torn_not_corrupt() {
        // A killed writer leaves an arbitrary prefix. A cut *inside* the
        // magic, header, or payload must read as Torn — never Corrupt,
        // never Ok. The two cuts that land exactly on a frame boundary
        // (nothing sent; magic only) are indistinguishable from an
        // orderly hang-up and read as PeerClosed instead.
        let bytes = stream(&[(3, b"payload bytes")]);
        for cut in 0..bytes.len() {
            let mut r = FrameReader::new(&bytes[..cut]);
            let outcome = r.expect_magic().and_then(|()| r.read_frame());
            let at_boundary = cut == 0 || cut == FRAME_MAGIC.len();
            match outcome {
                Err(FrameError::PeerClosed) if at_boundary => {}
                Err(FrameError::Torn(_)) if !at_boundary => {}
                other => panic!("prefix of {cut} bytes: got {other:?}"),
            }
        }
        // The full stream parses.
        let mut r = FrameReader::new(bytes.as_slice());
        r.expect_magic().unwrap();
        assert_eq!(r.read_frame().unwrap().payload, b"payload bytes");
    }

    #[test]
    fn clean_eof_at_boundary_is_peer_closed_not_torn() {
        // Orderly disconnect: the peer finished its last frame and
        // closed. Every subsequent read says PeerClosed, repeatably.
        let bytes = stream(&[(9, b"last")]);
        let mut r = FrameReader::new(bytes.as_slice());
        r.expect_magic().unwrap();
        assert_eq!(r.read_frame().unwrap().payload, b"last");
        assert!(matches!(r.read_frame(), Err(FrameError::PeerClosed)));
        assert!(matches!(r.read_frame(), Err(FrameError::PeerClosed)));
        // An empty stream is also a clean close, even before the magic.
        let mut r = FrameReader::new(&b""[..]);
        assert!(matches!(r.expect_magic(), Err(FrameError::PeerClosed)));
    }

    #[test]
    fn eof_mid_frame_is_torn_not_peer_closed() {
        // Crash signature: a complete header whose payload never
        // arrived — even zero payload bytes in is *mid-frame*.
        let full = stream(&[(3, b"payload bytes")]);
        let header_only = &full[..FRAME_MAGIC.len() + 12];
        let mut r = FrameReader::new(header_only);
        r.expect_magic().unwrap();
        match r.read_frame() {
            Err(FrameError::Torn(msg)) => assert!(msg.contains("payload"), "{msg}"),
            other => panic!("want Torn, got {other:?}"),
        }
        // And a half-written header is likewise torn.
        let mut r = FrameReader::new(&full[..FRAME_MAGIC.len() + 5]);
        r.expect_magic().unwrap();
        match r.read_frame() {
            Err(FrameError::Torn(msg)) => assert!(msg.contains("header"), "{msg}"),
            other => panic!("want Torn, got {other:?}"),
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let good = stream(&[(5, b"value profile")]);
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                let mut r = FrameReader::new(bad.as_slice());
                let outcome = r.expect_magic().and_then(|()| r.read_frame());
                match outcome {
                    Err(FrameError::Corrupt(_)) => {}
                    // A flip in the length field can also make the frame
                    // *longer* than the stream — a tear, still rejected.
                    Err(FrameError::Torn(_)) => {}
                    other => {
                        panic!("bit {bit} of byte {byte} flipped: want rejection, got {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_corrupt_without_allocating() {
        let mut bytes = FRAME_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r = FrameReader::new(bytes.as_slice());
        r.expect_magic().unwrap();
        match r.read_frame() {
            Err(FrameError::Corrupt(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("want Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let mut r = FrameReader::new(&b"VPC1rest"[..]);
        assert!(matches!(r.expect_magic(), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn errors_render_their_taxonomy() {
        assert!(FrameError::PeerClosed.to_string().starts_with("peer closed"));
        assert!(FrameError::Torn("eof".into()).to_string().starts_with("torn frame"));
        assert!(FrameError::Corrupt("crc".into()).to_string().starts_with("corrupt frame"));
        let io_err: FrameError = io::Error::other("pipe").into();
        assert!(io_err.to_string().starts_with("frame io"));
    }
}
