//! Session wire protocol and Unix-socket plumbing for `vprof serve`.
//!
//! The ingestion daemon speaks a small session protocol over a Unix-domain
//! socket, framed with the [`frame`](crate::frame) codec (`VPW1` magic +
//! length/kind/CRC frames). This module owns the *wire* layer: the typed
//! message set ([`SessionMsg`]), its encode/decode, the listener, and the
//! SIGTERM drain signal. Session *semantics* — admission, checkpointing,
//! fault domains — live in `vp_bench::serve`.
//!
//! ## Protocol
//!
//! Both directions start with the `VPW1` magic. The client then drives:
//!
//! ```text
//! C→S  HELLO{tenant, workload}          S→C  HELLO_OK{acked} | BUSY{reason}
//! C→S  CHUNK{seq, count, crc, payload}  S→C  ACK{acked}    (cumulative, durable)
//! C→S  QUERY                            S→C  STATS{json}
//! C→S  END                              S→C  END_OK{acked, profile}
//! C→S  SHUTDOWN                         (admin: begin graceful drain)
//!      any protocol violation           S→C  ERR{reason}, connection closed
//! ```
//!
//! `ACK{n}` means *chunks with `seq < n` are durable on the server* — the
//! client may forget them. `HELLO_OK{n}` carries the same cursor, so a
//! client reconnecting after a server crash resumes streaming from the
//! last durable chunk, re-sending anything unacknowledged. Chunk sequence
//! numbers make retransmits idempotent: a chunk below the server's cursor
//! is a duplicate (dropped without re-observing), a chunk above it is a
//! gap (protocol violation).
//!
//! `CHUNK` payloads carry one `VPC1` trace chunk verbatim: the canonical
//! varint event payload plus its event count and payload CRC, verified
//! again on ingest by `trace_codec::decode_chunk`.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::{self, Frame, FrameError, FrameReader};

/// Client → server frame kinds.
pub const K_HELLO: u32 = 20;
pub const K_CHUNK: u32 = 21;
pub const K_QUERY: u32 = 22;
pub const K_END: u32 = 23;
pub const K_SHUTDOWN: u32 = 24;

/// Server → client frame kinds.
pub const K_HELLO_OK: u32 = 30;
pub const K_ACK: u32 = 31;
pub const K_BUSY: u32 = 32;
pub const K_THROTTLE: u32 = 33;
pub const K_STATS: u32 = 34;
pub const K_END_OK: u32 = 35;
pub const K_ERR: u32 = 36;

/// One typed session-protocol message, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionMsg {
    /// Opens a session for `tenant`'s `workload`.
    Hello { tenant: String, workload: String },
    /// One `VPC1` trace chunk: `seq` is the cumulative chunk index,
    /// `count`/`crc` are the chunk's event count and payload CRC from
    /// the trace codec, `payload` the canonical varint event bytes.
    Chunk { seq: u64, count: u32, crc: u32, payload: Vec<u8> },
    /// Requests a `Stats` reply for the current session.
    Query,
    /// Ends the session: the server checkpoints, replies `EndOk`.
    End,
    /// Admin: asks the daemon to drain gracefully and exit.
    Shutdown,
    /// Session admitted; `acked` chunks are already durable server-side.
    HelloOk { acked: u64 },
    /// Chunks with `seq < acked` are durable; the client may drop them.
    Ack { acked: u64 },
    /// Session refused by admission control.
    Busy { reason: String },
    /// The client has overrun the inflight window; wait for `acked` to
    /// advance before sending more.
    Throttle { acked: u64 },
    /// Deterministic per-session statistics as a JSON object.
    Stats { json: String },
    /// Session complete: every chunk durable, rendered profile attached.
    EndOk { acked: u64, profile: String },
    /// The session was killed; `reason` is the typed cause.
    Err { reason: String },
}

/// Reading a session message can fail below the protocol (the frame
/// layer: torn stream, bad CRC, clean EOF) or at it (a well-formed frame
/// whose payload violates the message grammar).
#[derive(Debug)]
pub enum MsgError {
    /// Frame-layer failure; `FrameError::PeerClosed` is the clean
    /// end-of-conversation case.
    Frame(FrameError),
    /// The frame decoded but its kind or payload is not a valid session
    /// message — a protocol violation that kills only this session.
    Malformed(String),
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::Frame(e) => write!(f, "{e}"),
            MsgError::Malformed(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for MsgError {}

impl From<FrameError> for MsgError {
    fn from(e: FrameError) -> MsgError {
        MsgError::Frame(e)
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], MsgError> {
        if self.bytes.len() - self.pos < n {
            return Err(MsgError::Malformed(format!("truncated {what}")));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, MsgError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, MsgError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String, MsgError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MsgError::Malformed(format!("{what} is not UTF-8")))
    }

    fn rest_str(&mut self, what: &str) -> Result<String, MsgError> {
        let bytes = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MsgError::Malformed(format!("{what} is not UTF-8")))
    }

    fn finish(&self, kind: &str) -> Result<(), MsgError> {
        if self.pos != self.bytes.len() {
            return Err(MsgError::Malformed(format!(
                "{} trailing byte(s) after {kind} payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl SessionMsg {
    /// Encodes into `(frame kind, frame payload)`.
    pub fn encode(&self) -> (u32, Vec<u8>) {
        match self {
            SessionMsg::Hello { tenant, workload } => {
                let mut buf = Vec::new();
                push_str(&mut buf, tenant);
                push_str(&mut buf, workload);
                (K_HELLO, buf)
            }
            SessionMsg::Chunk { seq, count, crc, payload } => {
                let mut buf = Vec::with_capacity(16 + payload.len());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
                buf.extend_from_slice(&crc.to_le_bytes());
                buf.extend_from_slice(payload);
                (K_CHUNK, buf)
            }
            SessionMsg::Query => (K_QUERY, Vec::new()),
            SessionMsg::End => (K_END, Vec::new()),
            SessionMsg::Shutdown => (K_SHUTDOWN, Vec::new()),
            SessionMsg::HelloOk { acked } => (K_HELLO_OK, acked.to_le_bytes().to_vec()),
            SessionMsg::Ack { acked } => (K_ACK, acked.to_le_bytes().to_vec()),
            SessionMsg::Busy { reason } => (K_BUSY, reason.as_bytes().to_vec()),
            SessionMsg::Throttle { acked } => (K_THROTTLE, acked.to_le_bytes().to_vec()),
            SessionMsg::Stats { json } => (K_STATS, json.as_bytes().to_vec()),
            SessionMsg::EndOk { acked, profile } => {
                let mut buf = Vec::with_capacity(8 + profile.len());
                buf.extend_from_slice(&acked.to_le_bytes());
                buf.extend_from_slice(profile.as_bytes());
                (K_END_OK, buf)
            }
            SessionMsg::Err { reason } => (K_ERR, reason.as_bytes().to_vec()),
        }
    }

    /// Decodes a frame into a message. A well-formed frame with an
    /// unknown kind or a payload that does not parse is `Malformed`.
    pub fn decode(frame: &Frame) -> Result<SessionMsg, MsgError> {
        let mut c = Cursor { bytes: &frame.payload, pos: 0 };
        let msg = match frame.kind {
            K_HELLO => SessionMsg::Hello {
                tenant: c.str("HELLO tenant")?,
                workload: c.str("HELLO workload")?,
            },
            K_CHUNK => {
                let seq = c.u64("CHUNK seq")?;
                let count = c.u32("CHUNK count")?;
                let crc = c.u32("CHUNK crc")?;
                let payload = c.bytes[c.pos..].to_vec();
                c.pos = c.bytes.len();
                SessionMsg::Chunk { seq, count, crc, payload }
            }
            K_QUERY => SessionMsg::Query,
            K_END => SessionMsg::End,
            K_SHUTDOWN => SessionMsg::Shutdown,
            K_HELLO_OK => SessionMsg::HelloOk { acked: c.u64("HELLO_OK cursor")? },
            K_ACK => SessionMsg::Ack { acked: c.u64("ACK cursor")? },
            K_BUSY => SessionMsg::Busy { reason: c.rest_str("BUSY reason")? },
            K_THROTTLE => SessionMsg::Throttle { acked: c.u64("THROTTLE cursor")? },
            K_STATS => SessionMsg::Stats { json: c.rest_str("STATS body")? },
            K_END_OK => SessionMsg::EndOk {
                acked: c.u64("END_OK cursor")?,
                profile: c.rest_str("END_OK profile")?,
            },
            K_ERR => SessionMsg::Err { reason: c.rest_str("ERR reason")? },
            other => {
                return Err(MsgError::Malformed(format!("unknown session frame kind {other}")))
            }
        };
        c.finish(kind_name(frame.kind))?;
        Ok(msg)
    }
}

fn kind_name(kind: u32) -> &'static str {
    match kind {
        K_HELLO => "HELLO",
        K_CHUNK => "CHUNK",
        K_QUERY => "QUERY",
        K_END => "END",
        K_SHUTDOWN => "SHUTDOWN",
        K_HELLO_OK => "HELLO_OK",
        K_ACK => "ACK",
        K_BUSY => "BUSY",
        K_THROTTLE => "THROTTLE",
        K_STATS => "STATS",
        K_END_OK => "END_OK",
        K_ERR => "ERR",
        _ => "?",
    }
}

/// Writes one session message as a frame (no magic; send
/// [`frame::write_magic`] once per direction first).
pub fn write_msg<W: Write>(w: &mut W, msg: &SessionMsg) -> io::Result<()> {
    let (kind, payload) = msg.encode();
    frame::write_frame(w, kind, &payload)
}

/// Reads and decodes one session message.
pub fn read_msg<R: Read>(r: &mut FrameReader<R>) -> Result<SessionMsg, MsgError> {
    let frame = r.read_frame()?;
    SessionMsg::decode(&frame)
}

/// What to do with an arriving chunk, given the cumulative-acknowledgment
/// cursor: `next` chunks (`seq` 0..next) have already been accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDisposition {
    /// `seq == next`: the next expected chunk — ingest it.
    Accept,
    /// `seq < next`: a retransmit of a durable chunk — drop it without
    /// re-observing (retransmits after a lost ACK must be idempotent).
    Duplicate,
    /// `seq > next`: the client skipped chunks — protocol violation.
    Gap,
}

/// Classifies chunk `seq` against the accepted-chunk cursor `next`.
pub fn classify_chunk(seq: u64, next: u64) -> ChunkDisposition {
    match seq.cmp(&next) {
        std::cmp::Ordering::Equal => ChunkDisposition::Accept,
        std::cmp::Ordering::Less => ChunkDisposition::Duplicate,
        std::cmp::Ordering::Greater => ChunkDisposition::Gap,
    }
}

/// The well-formed prefix of an append-only frame log.
#[derive(Debug)]
pub struct LogScan {
    /// Every complete, CRC-verified frame in the prefix.
    pub frames: Vec<Frame>,
    /// Byte length of the prefix (magic + whole frames). Truncating the
    /// log here leaves the next append on a frame boundary.
    pub good_len: usize,
    /// Whether a torn tail (a crash mid-append) was dropped.
    pub torn: bool,
}

/// Scans an append-only frame log (`VPW1` magic + frames), as written by
/// a session's durable chunk log. A torn tail — the expected artifact of
/// `kill -9` mid-append — is dropped and reported, exploiting the
/// [`FrameError::PeerClosed`]/[`FrameError::Torn`] distinction: clean
/// EOF at a frame boundary ends the scan, EOF mid-frame marks the torn
/// tail. Interior corruption (a full frame whose CRC fails) is *not* a
/// crash artifact and surfaces as an error.
pub fn scan_log(bytes: &[u8]) -> Result<LogScan, FrameError> {
    use std::cell::Cell;

    struct PosReader<'a> {
        bytes: &'a [u8],
        pos: &'a Cell<usize>,
    }
    impl Read for PosReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let at = self.pos.get();
            let n = (self.bytes.len() - at).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[at..at + n]);
            self.pos.set(at + n);
            Ok(n)
        }
    }

    if bytes.is_empty() {
        return Ok(LogScan { frames: Vec::new(), good_len: 0, torn: false });
    }
    let pos = Cell::new(0usize);
    let mut reader = FrameReader::new(PosReader { bytes, pos: &pos });
    match reader.expect_magic() {
        Ok(()) => {}
        // A crash can even tear the magic of a brand-new log.
        Err(FrameError::Torn(_)) => {
            return Ok(LogScan { frames: Vec::new(), good_len: 0, torn: true })
        }
        Err(e) => return Err(e),
    }
    let mut frames = Vec::new();
    let mut good_len = pos.get();
    loop {
        match reader.read_frame() {
            Ok(frame) => {
                frames.push(frame);
                good_len = pos.get();
            }
            Err(FrameError::PeerClosed) => return Ok(LogScan { frames, good_len, torn: false }),
            Err(FrameError::Torn(_)) => return Ok(LogScan { frames, good_len, torn: true }),
            Err(e) => return Err(e),
        }
    }
}

/// A Unix-domain listener that owns its socket path: binding removes a
/// stale socket file left by a killed daemon, dropping removes the live
/// one.
#[derive(Debug)]
pub struct NetListener {
    inner: UnixListener,
    path: PathBuf,
}

impl NetListener {
    /// Binds `path`, replacing any stale socket file at that path (a
    /// `kill -9`'d daemon cannot unlink its own socket).
    pub fn bind(path: &Path) -> io::Result<NetListener> {
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let inner = UnixListener::bind(path)?;
        Ok(NetListener { inner, path: path.to_path_buf() })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accepts one connection, waiting at most `timeout`. `Ok(None)` on
    /// timeout — the accept loop uses short slices so it can notice the
    /// drain flag between them without a dedicated wakeup connection.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<UnixStream>> {
        self.inner.set_nonblocking(true)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Non-destructively asks whether a read on `stream` would return
/// immediately: `Ok(true)` when bytes (or EOF) are waiting, `Ok(false)`
/// when a read would block. The daemon polls this between frames so it
/// can notice the drain flag and the idle budget without ever consuming
/// mid-frame bytes.
///
/// On Linux x86_64/aarch64 this is a raw `recvfrom` with
/// `MSG_PEEK | MSG_DONTWAIT` (`std`'s `UnixStream::peek` is still
/// unstable). Elsewhere it reports `Ok(true)`, degrading the daemon to
/// blocking reads — drain then only lands between client frames.
pub fn data_ready(stream: &UnixStream) -> io::Result<bool> {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        use std::os::fd::AsRawFd;
        const EAGAIN: isize = -11;
        const EINTR: isize = -4;
        let mut probe = [0u8; 1];
        loop {
            let ret = unsafe { peek::sys_recv_peek(stream.as_raw_fd(), probe.as_mut_ptr()) };
            return match ret {
                EINTR => continue,
                EAGAIN => Ok(false),
                n if n >= 0 => Ok(true),
                e => Err(io::Error::from_raw_os_error(-e as i32)),
            };
        }
    }
    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        let _ = stream;
        Ok(true)
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod peek {
    /// MSG_PEEK (leave the byte in the queue) | MSG_DONTWAIT (never block).
    const FLAGS: usize = 0x2 | 0x40;

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn sys_recv_peek(fd: i32, buf: *mut u8) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 45isize => ret, // SYS_recvfrom
            in("rdi") fd as isize,
            in("rsi") buf,
            in("rdx") 1usize,
            in("r10") FLAGS,
            in("r8") 0usize, // src_addr: unwanted
            in("r9") 0usize, // addrlen
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn sys_recv_peek(fd: i32, buf: *mut u8) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") fd as isize => ret,
            in("x1") buf,
            in("x2") 1usize,
            in("x3") FLAGS,
            in("x4") 0usize, // src_addr: unwanted
            in("x5") 0usize, // addrlen
            in("x8") 207usize, // SYS_recvfrom
            options(nostack)
        );
        ret
    }
}

/// Arms a process-wide SIGTERM watcher and returns the drain flag it
/// sets. Call once, early, before spawning worker threads (the signal
/// mask is inherited at `thread::spawn`).
///
/// On Linux x86_64/aarch64 this blocks SIGTERM with `rt_sigprocmask` and
/// reads it from a `signalfd4` descriptor on a watcher thread — no
/// signal handler, so nothing async-signal-unsafe ever runs and there is
/// no `sa_restorer` to hand-roll. Elsewhere (and if the syscalls fail)
/// the flag simply never fires and SIGTERM keeps its default
/// disposition; the daemon still drains on a `SHUTDOWN` frame.
pub fn watch_sigterm() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        if let Ok(fd) = sigterm::arm() {
            let flag = Arc::clone(&flag);
            std::thread::Builder::new()
                .name("vp-sigterm".to_string())
                .spawn(move || {
                    sigterm::wait(fd);
                    flag.store(true, Ordering::SeqCst);
                })
                .ok();
        }
    }
    flag
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sigterm {
    use std::io;

    const SIG_BLOCK: usize = 0;
    const SIGTERM: u64 = 15;
    /// Kernel sigset: one u64, bit `sig - 1`.
    const TERM_MASK: u64 = 1 << (SIGTERM - 1);
    const SIGSET_SIZE: usize = 8;
    const SFD_CLOEXEC: usize = 0o2000000;
    /// `sizeof(struct signalfd_siginfo)` — reads must be exactly this.
    const SIGINFO_SIZE: usize = 128;

    /// Blocks SIGTERM for the calling thread (and all threads it spawns
    /// afterwards) and returns a signalfd that receives it instead.
    pub fn arm() -> io::Result<i32> {
        let mask = TERM_MASK;
        let ret = unsafe { sys_rt_sigprocmask(SIG_BLOCK, &mask) };
        if ret < 0 {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        let fd = unsafe { sys_signalfd4(&mask) };
        if fd < 0 {
            return Err(io::Error::from_raw_os_error(-fd as i32));
        }
        Ok(fd as i32)
    }

    /// Blocks until SIGTERM is delivered to the process.
    pub fn wait(fd: i32) {
        let mut info = [0u8; SIGINFO_SIZE];
        loop {
            let n = unsafe { sys_read(fd, info.as_mut_ptr(), info.len()) };
            // EINTR (-4) retries; any other result means either a
            // delivered signal or an unusable fd — stop waiting.
            if n != -4 {
                return;
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_rt_sigprocmask(how: usize, set: *const u64) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 14isize => ret, // SYS_rt_sigprocmask
            in("rdi") how,
            in("rsi") set,
            in("rdx") 0usize, // oldset: not wanted
            in("r10") SIGSET_SIZE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_signalfd4(mask: *const u64) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 289isize => ret, // SYS_signalfd4
            in("rdi") -1isize,                // new fd
            in("rsi") mask,
            in("rdx") SIGSET_SIZE,
            in("r10") SFD_CLOEXEC,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_read(fd: i32, buf: *mut u8, len: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 0isize => ret, // SYS_read
            in("rdi") fd as isize,
            in("rsi") buf,
            in("rdx") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_rt_sigprocmask(how: usize, set: *const u64) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") how as isize => ret,
            in("x1") set,
            in("x2") 0usize, // oldset: not wanted
            in("x3") SIGSET_SIZE,
            in("x8") 135usize, // SYS_rt_sigprocmask
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_signalfd4(mask: *const u64) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") -1isize => ret, // new fd
            in("x1") mask,
            in("x2") SIGSET_SIZE,
            in("x3") SFD_CLOEXEC,
            in("x8") 74usize, // SYS_signalfd4
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_read(fd: i32, buf: *mut u8, len: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") fd as isize => ret,
            in("x1") buf,
            in("x2") len,
            in("x8") 63usize, // SYS_read
            options(nostack)
        );
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_MAGIC;

    fn all_msgs() -> Vec<SessionMsg> {
        vec![
            SessionMsg::Hello { tenant: "acme".to_string(), workload: "li".to_string() },
            SessionMsg::Chunk { seq: 7, count: 3, crc: 0xdead_beef, payload: vec![1, 2, 3] },
            SessionMsg::Chunk { seq: 0, count: 0, crc: 0, payload: Vec::new() },
            SessionMsg::Query,
            SessionMsg::End,
            SessionMsg::Shutdown,
            SessionMsg::HelloOk { acked: 12 },
            SessionMsg::Ack { acked: u64::MAX },
            SessionMsg::Busy { reason: "max sessions (2) reached".to_string() },
            SessionMsg::Throttle { acked: 5 },
            SessionMsg::Stats { json: "{\"chunks\":4}".to_string() },
            SessionMsg::EndOk { acked: 9, profile: "pc\tinv\n".to_string() },
            SessionMsg::Err { reason: "chunk 4: crc mismatch".to_string() },
        ]
    }

    #[test]
    fn every_message_round_trips_through_the_frame_codec() {
        let mut wire = Vec::new();
        frame::write_magic(&mut wire).unwrap();
        let msgs = all_msgs();
        for m in &msgs {
            write_msg(&mut wire, m).unwrap();
        }
        let mut r = FrameReader::new(&wire[..]);
        r.expect_magic().unwrap();
        for want in &msgs {
            let got = read_msg(&mut r).unwrap();
            assert_eq!(&got, want);
        }
        assert!(matches!(read_msg(&mut r), Err(MsgError::Frame(FrameError::PeerClosed))));
    }

    #[test]
    fn unknown_kind_and_truncated_payloads_are_malformed_not_torn() {
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, 99, b"x").unwrap();
        // ACK payload must be exactly 8 bytes.
        frame::write_frame(&mut wire, K_ACK, &[1, 2, 3]).unwrap();
        // HELLO with a length prefix pointing past the payload.
        frame::write_frame(&mut wire, K_HELLO, &200u32.to_le_bytes()).unwrap();
        // ACK with trailing garbage after a valid cursor.
        let mut long = 4u64.to_le_bytes().to_vec();
        long.push(0xff);
        frame::write_frame(&mut wire, K_ACK, &long).unwrap();
        let mut r = FrameReader::new(&wire[..]);
        for want in [
            "unknown session frame kind 99",
            "truncated ACK cursor",
            "truncated HELLO tenant",
            "trailing byte(s) after ACK payload",
        ] {
            match read_msg(&mut r) {
                Err(MsgError::Malformed(m)) => {
                    assert!(m.contains(want), "`{m}` should contain `{want}`")
                }
                other => panic!("expected Malformed for {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn hello_rejects_non_utf8_names() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        payload.extend_from_slice(&0u32.to_le_bytes());
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, K_HELLO, &payload).unwrap();
        let mut r = FrameReader::new(&wire[..]);
        match read_msg(&mut r) {
            Err(MsgError::Malformed(m)) => assert!(m.contains("not UTF-8")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn classify_chunk_orders_accept_duplicate_gap() {
        assert_eq!(classify_chunk(3, 3), ChunkDisposition::Accept);
        assert_eq!(classify_chunk(0, 3), ChunkDisposition::Duplicate);
        assert_eq!(classify_chunk(2, 3), ChunkDisposition::Duplicate);
        assert_eq!(classify_chunk(4, 3), ChunkDisposition::Gap);
        assert_eq!(classify_chunk(0, 0), ChunkDisposition::Accept);
    }

    #[test]
    fn scan_log_keeps_the_prefix_and_drops_a_torn_tail() {
        let mut log = Vec::new();
        frame::write_magic(&mut log).unwrap();
        write_msg(&mut log, &SessionMsg::Chunk { seq: 0, count: 2, crc: 9, payload: vec![1, 2] })
            .unwrap();
        write_msg(&mut log, &SessionMsg::Chunk { seq: 1, count: 1, crc: 7, payload: vec![3] })
            .unwrap();
        let clean = scan_log(&log).unwrap();
        assert_eq!(clean.frames.len(), 2);
        assert_eq!(clean.good_len, log.len());
        assert!(!clean.torn);
        // Tear the second frame at every possible byte boundary: the
        // first frame always survives, the tail is always dropped.
        let first_end = {
            let mut one = Vec::new();
            frame::write_magic(&mut one).unwrap();
            write_msg(
                &mut one,
                &SessionMsg::Chunk { seq: 0, count: 2, crc: 9, payload: vec![1, 2] },
            )
            .unwrap();
            one.len()
        };
        for cut in first_end + 1..log.len() {
            let scan = scan_log(&log[..cut]).unwrap();
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.good_len, first_end);
            assert!(scan.torn);
        }
        // Empty and magic-torn logs are fresh starts, not errors.
        let empty = scan_log(&[]).unwrap();
        assert_eq!((empty.frames.len(), empty.good_len, empty.torn), (0, 0, false));
        let torn_magic = scan_log(&log[..2]).unwrap();
        assert_eq!((torn_magic.frames.len(), torn_magic.good_len, torn_magic.torn), (0, 0, true));
        // Interior corruption is an error, not a torn tail.
        let mut corrupt = log.clone();
        corrupt[first_end - 1] ^= 0xff;
        assert!(matches!(scan_log(&corrupt), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn listener_replaces_stale_socket_and_cleans_up_on_drop() {
        let dir = std::env::temp_dir().join(format!("vp-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        // A stale socket file from a killed daemon must not block bind.
        drop(NetListener::bind(&sock).unwrap());
        assert!(!sock.exists(), "drop should remove the socket file");
        let listener = NetListener::bind(&sock).unwrap();
        assert!(sock.exists());
        let listener2 = NetListener::bind(&sock).unwrap();
        assert!(sock.exists(), "rebinding replaces the stale socket");
        drop(listener2);
        drop(listener);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accept_timeout_returns_none_then_a_connection() {
        let dir = std::env::temp_dir().join(format!("vp-net-accept-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let listener = NetListener::bind(&sock).unwrap();
        assert!(listener.accept_timeout(Duration::from_millis(20)).unwrap().is_none());
        let client = UnixStream::connect(&sock).unwrap();
        let mut server_side =
            listener.accept_timeout(Duration::from_secs(5)).unwrap().expect("pending connection");
        // Prove the pair is wired up and back in blocking mode.
        let mut c = client;
        c.write_all(&FRAME_MAGIC).unwrap();
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(buf, FRAME_MAGIC);
        drop(listener);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_sigterm_returns_an_unset_flag() {
        // Arming must be safe in a test process; the flag only fires on
        // a real SIGTERM, which we do not send here.
        let flag = watch_sigterm();
        assert!(!flag.load(Ordering::SeqCst));
    }
}
