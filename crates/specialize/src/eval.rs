//! Specialization speedup evaluation, with optional guard-hit accounting.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use vp_asm::Program;
use vp_instrument::{Analysis, Instrumenter, Selection};
use vp_sim::{InputSet, InstrEvent, Machine, MachineConfig, SimError};

use crate::transform::GuardSite;

/// Side-by-side result of running the original and specialized programs on
/// the same input.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Dynamic instructions of the original program.
    pub base_instructions: u64,
    /// Dynamic instructions of the specialized program.
    pub specialized_instructions: u64,
    /// Whether exit codes and outputs matched (they must).
    pub equivalent: bool,
}

impl SpeedupReport {
    /// Speedup in dynamic instructions (>1 means the specialization won).
    pub fn speedup(&self) -> f64 {
        if self.specialized_instructions == 0 {
            return 0.0;
        }
        self.base_instructions as f64 / self.specialized_instructions as f64
    }

    /// Percentage of dynamic instructions removed (negative if the guard
    /// overhead dominated).
    pub fn reduction_pct(&self) -> f64 {
        if self.base_instructions == 0 {
            return 0.0;
        }
        (self.base_instructions as f64 - self.specialized_instructions as f64)
            / self.base_instructions as f64
            * 100.0
    }
}

/// Runs `original` and `specialized` on `input` and reports the dynamic
/// instruction counts plus an output-equivalence check.
///
/// # Errors
///
/// Propagates emulator faults from either run.
pub fn evaluate(
    original: &Program,
    specialized: &Program,
    input: &InputSet,
    budget: u64,
) -> Result<SpeedupReport, SimError> {
    let cfg = MachineConfig::new().input(input.clone());
    let mut base = Machine::new(original.clone(), cfg.clone())?;
    let base_out = base.run(budget)?;
    let mut fast = Machine::new(specialized.clone(), cfg)?;
    let fast_out = fast.run(budget)?;
    Ok(SpeedupReport {
        base_instructions: base_out.instructions,
        specialized_instructions: fast_out.instructions,
        equivalent: base_out.exit_code == fast_out.exit_code && base_out.output == fast_out.output,
    })
}

/// Guard hit/miss totals for one specialized load site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardStats {
    /// Instruction index of the original load.
    pub load_index: u32,
    /// Executions that matched one of the site's guarded values.
    pub hits: u64,
    /// Executions that fell through every guard to the slow path.
    pub misses: u64,
}

impl GuardStats {
    /// Fraction of site executions that took a fast path.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// [`SpeedupReport`] extended with per-site guard accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedReport {
    /// The side-by-side instruction counts and equivalence verdict.
    pub speedup: SpeedupReport,
    /// Guard hit/miss totals per specialized site, in `sites` order.
    pub guards: Vec<GuardStats>,
}

/// Watches the guard branches of specialized sites: a taken conditional is
/// a hit; a fall-through on the *last* guard of a site's chain means every
/// guard missed and the slow path runs.
struct GuardWatcher {
    /// guard instruction index → (site slot, is-last-in-chain).
    map: BTreeMap<u32, (usize, bool)>,
    stats: Vec<GuardStats>,
}

impl Analysis for GuardWatcher {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        if let (Some(&(slot, last)), Some(taken)) = (self.map.get(&event.index), event.taken) {
            if taken {
                self.stats[slot].hits += 1;
            } else if last {
                self.stats[slot].misses += 1;
            }
        }
    }
}

/// Like [`evaluate`], but runs the specialized program under
/// instrumentation selecting exactly the guard branches of `sites`, so the
/// report carries per-site hit/miss rates. Instrumentation observes the
/// same execution the plain machine would run: instruction counts and
/// outputs are unaffected.
///
/// # Errors
///
/// Propagates emulator faults from either run.
pub fn evaluate_guarded(
    original: &Program,
    specialized: &Program,
    sites: &[GuardSite],
    input: &InputSet,
    budget: u64,
) -> Result<GuardedReport, SimError> {
    let cfg = MachineConfig::new().input(input.clone());
    let mut base = Machine::new(original.clone(), cfg.clone())?;
    let base_out = base.run(budget)?;

    let mut watcher = GuardWatcher {
        map: sites
            .iter()
            .enumerate()
            .flat_map(|(slot, site)| {
                let last = site.guard_indices.len().saturating_sub(1);
                site.guard_indices.iter().enumerate().map(move |(k, &g)| (g, (slot, k == last)))
            })
            .collect(),
        stats: sites
            .iter()
            .map(|s| GuardStats { load_index: s.load_index, hits: 0, misses: 0 })
            .collect(),
    };
    let selected: BTreeSet<u32> = watcher.map.keys().copied().collect();
    let run = Instrumenter::new().select(Selection::Custom(selected)).run(
        specialized,
        cfg,
        budget,
        &mut watcher,
    )?;
    let fast_out = run.outcome;

    Ok(GuardedReport {
        speedup: SpeedupReport {
            base_instructions: base_out.instructions,
            specialized_instructions: fast_out.instructions,
            equivalent: base_out.exit_code == fast_out.exit_code
                && base_out.output == fast_out.output,
        },
        guards: watcher.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_arithmetic() {
        let r = SpeedupReport {
            base_instructions: 200,
            specialized_instructions: 100,
            equivalent: true,
        };
        assert!((r.speedup() - 2.0).abs() < 1e-12);
        assert!((r.reduction_pct() - 50.0).abs() < 1e-12);
        let degenerate =
            SpeedupReport { base_instructions: 0, specialized_instructions: 0, equivalent: true };
        assert_eq!(degenerate.speedup(), 0.0);
        assert_eq!(degenerate.reduction_pct(), 0.0);
    }

    #[test]
    fn evaluate_identical_programs() {
        let p = vp_asm::assemble(".text\nmain: li a0, 1\n sys exit\n").unwrap();
        let r = evaluate(&p, &p, &InputSet::empty(), 1000).unwrap();
        assert!(r.equivalent);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn guarded_eval_counts_hits_and_misses_exactly() {
        use crate::demo;
        use crate::transform::{specialize_all_sites, Candidate};

        let program = demo::program();
        let iterations = 1_000;
        let period = 100;
        let input = demo::input(iterations, period);
        let candidate = Candidate {
            load_index: demo::config_load_index(&program),
            value: 0x1234, // the demo kernel's base configuration value
            invariance: 1.0,
            executions: iterations,
        };
        let (specialized, sites) = specialize_all_sites(&program, &[candidate]).unwrap();
        let report = evaluate_guarded(&program, &specialized, &sites, &input, 100_000_000).unwrap();
        assert!(report.speedup.equivalent);
        assert_eq!(report.guards.len(), 1);
        let g = report.guards[0];
        // The load runs once per iteration; every guard outcome is a hit
        // or a miss, and exactly the perturbed iterations (i % period == 0
        // for 0 < i < iterations) miss.
        assert_eq!(g.hits + g.misses, iterations);
        assert_eq!(g.misses, (iterations - 1) / period);
        assert!(g.hit_rate() > 0.98);

        // Instrumentation must not change the measured execution.
        let plain = evaluate(&program, &specialized, &input, 100_000_000).unwrap();
        assert_eq!(plain, report.speedup);
    }
}
