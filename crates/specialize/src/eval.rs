//! Specialization speedup evaluation.

use vp_asm::Program;
use vp_sim::{InputSet, Machine, MachineConfig, SimError};

/// Side-by-side result of running the original and specialized programs on
/// the same input.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Dynamic instructions of the original program.
    pub base_instructions: u64,
    /// Dynamic instructions of the specialized program.
    pub specialized_instructions: u64,
    /// Whether exit codes and outputs matched (they must).
    pub equivalent: bool,
}

impl SpeedupReport {
    /// Speedup in dynamic instructions (>1 means the specialization won).
    pub fn speedup(&self) -> f64 {
        if self.specialized_instructions == 0 {
            return 0.0;
        }
        self.base_instructions as f64 / self.specialized_instructions as f64
    }

    /// Percentage of dynamic instructions removed (negative if the guard
    /// overhead dominated).
    pub fn reduction_pct(&self) -> f64 {
        if self.base_instructions == 0 {
            return 0.0;
        }
        (self.base_instructions as f64 - self.specialized_instructions as f64)
            / self.base_instructions as f64
            * 100.0
    }
}

/// Runs `original` and `specialized` on `input` and reports the dynamic
/// instruction counts plus an output-equivalence check.
///
/// # Errors
///
/// Propagates emulator faults from either run.
pub fn evaluate(
    original: &Program,
    specialized: &Program,
    input: &InputSet,
    budget: u64,
) -> Result<SpeedupReport, SimError> {
    let cfg = MachineConfig::new().input(input.clone());
    let mut base = Machine::new(original.clone(), cfg.clone())?;
    let base_out = base.run(budget)?;
    let mut fast = Machine::new(specialized.clone(), cfg)?;
    let fast_out = fast.run(budget)?;
    Ok(SpeedupReport {
        base_instructions: base_out.instructions,
        specialized_instructions: fast_out.instructions,
        equivalent: base_out.exit_code == fast_out.exit_code && base_out.output == fast_out.output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_arithmetic() {
        let r = SpeedupReport {
            base_instructions: 200,
            specialized_instructions: 100,
            equivalent: true,
        };
        assert!((r.speedup() - 2.0).abs() < 1e-12);
        assert!((r.reduction_pct() - 50.0).abs() < 1e-12);
        let degenerate =
            SpeedupReport { base_instructions: 0, specialized_instructions: 0, equivalent: true };
        assert_eq!(degenerate.speedup(), 0.0);
        assert_eq!(degenerate.reduction_pct(), 0.0);
    }

    #[test]
    fn evaluate_identical_programs() {
        let p = vp_asm::assemble(".text\nmain: li a0, 1\n sys exit\n").unwrap();
        let r = evaluate(&p, &p, &InputSet::empty(), 1000).unwrap();
        assert!(r.equivalent);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }
}
