//! The optimize pipeline: plan → specialize → guarded re-evaluation.
//!
//! This module closes the loop the paper builds toward (ch. VI): given a
//! load-value profile gathered on a *train* input, pick the semi-invariant
//! sites worth specializing, build guarded fast paths (multi-way where the
//! profiled distribution justifies extra guards), and re-run original vs
//! specialized on an unseen *test* input, accounting every guard hit and
//! miss. Everything here is deterministic: same program + same profile +
//! same input → identical plan, identical code, identical report.
//!
//! The driver that profiles whole suite workloads and renders reports
//! lives in `vp-bench`; this module is pure program-level machinery.

use vp_asm::Program;
use vp_core::{track::ValueTracker, EntityMetrics};
use vp_isa::Instruction;
use vp_sim::{InputSet, Machine, MachineConfig, SimError};

use crate::eval::{evaluate_guarded, GuardStats, GuardedReport, SpeedupReport};
use crate::multiway::{specialize_multi_all, MultiCandidate};
use crate::transform::{estimate, CandidateOptions, GuardSite, SpecializeError};

/// Options controlling the optimize pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeOptions {
    /// Thresholds for single-value candidate selection.
    pub candidates: CandidateOptions,
    /// Maximum guards per site (1 = single-way only).
    pub max_ways: usize,
    /// Minimum share of a site's executions a secondary TNV value must
    /// hold to earn its own guard (the guard chain taxes every miss, so
    /// rare values do not pay for themselves).
    pub min_way_share: f64,
    /// Instruction budget for each evaluation run.
    pub budget: u64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            candidates: CandidateOptions::default(),
            max_ways: 2,
            min_way_share: 0.15,
            budget: 100_000_000,
        }
    }
}

/// Extracts a tracker's `(value, count)` pairs, most frequent first —
/// exact from the full profile when kept, ranked TNV entries (an
/// under-count) otherwise. This is the `top_values` source suite drivers
/// hand to [`plan_candidates`]/[`optimize_program`].
pub fn tracker_top_values(tracker: &ValueTracker, n: usize) -> Vec<(u64, u64)> {
    if let Some(full) = tracker.full() {
        return full.top(n);
    }
    tracker.tnv().top(n).iter().map(|e| (e.value, e.count)).collect()
}

/// Why the planner passed on a profiled load site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Executions below `min_executions`.
    Cold,
    /// `Inv-Top(1)` below `min_invariance`.
    LowInvariance,
    /// The profile kept no top value for the site.
    NoTopValue,
    /// The fold would not remove enough instructions to pay for the guard.
    UnprofitableFold,
    /// The entity id does not name a load instruction.
    NotALoad,
    /// The program uses the guard scratch register; nothing can be
    /// specialized.
    ScratchInUse,
}

impl RejectReason {
    /// Stable snake_case name used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Cold => "cold",
            RejectReason::LowInvariance => "low_invariance",
            RejectReason::NoTopValue => "no_top_value",
            RejectReason::UnprofitableFold => "unprofitable_fold",
            RejectReason::NotALoad => "not_a_load",
            RejectReason::ScratchInUse => "scratch_in_use",
        }
    }
}

/// A load site the planner considered and passed on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejectedCandidate {
    /// Entity id (instruction index) of the load.
    pub load_index: u32,
    /// Why it was rejected.
    pub reason: RejectReason,
    /// Profiled execution count.
    pub executions: u64,
    /// Profiled `Inv-Top(1)`.
    pub invariance: f64,
}

/// The planner's verdict over a whole profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePlan {
    /// Sites to specialize, hottest first. Values per site are ordered
    /// most frequent first.
    pub selected: Vec<MultiCandidate>,
    /// Sites considered and rejected, in entity-id order.
    pub rejected: Vec<RejectedCandidate>,
}

/// Selects multi-way specialization candidates from a load-value profile,
/// recording a reason for every site it passes on.
///
/// `metrics` must come from an
/// [`InstructionProfiler`](vp_core::InstructionProfiler) run (entity ids
/// are instruction indices). `top_values` maps a load's instruction index
/// to its profiled `(value, count)` pairs, most frequent first — the
/// pipeline uses it to grant secondary guards only to values whose own
/// fold is profitable and whose share clears `min_way_share`.
pub fn plan_candidates(
    program: &Program,
    metrics: &[EntityMetrics],
    top_values: &dyn Fn(u32) -> Vec<(u64, u64)>,
    options: &OptimizeOptions,
) -> CandidatePlan {
    let mut considered: Vec<(u32, &EntityMetrics)> =
        metrics.iter().filter_map(|m| u32::try_from(m.id).ok().map(|index| (index, m))).collect();
    considered.sort_by_key(|&(index, _)| index);

    let mut selected = Vec::new();
    let mut rejected = Vec::new();
    let opts = &options.candidates;
    for (index, m) in considered {
        let mut reject = |reason| {
            rejected.push(RejectedCandidate {
                load_index: index,
                reason,
                executions: m.executions,
                invariance: m.inv_top1,
            });
        };
        let is_load = matches!(
            program.code().get(index as usize),
            Some(Instruction::Load { .. } | Instruction::LoadSigned { .. })
        );
        if !is_load {
            reject(RejectReason::NotALoad);
            continue;
        }
        if m.executions < opts.min_executions {
            reject(RejectReason::Cold);
            continue;
        }
        if m.inv_top1 < opts.min_invariance {
            reject(RejectReason::LowInvariance);
            continue;
        }
        let Some(primary) = m.top_value else {
            reject(RejectReason::NoTopValue);
            continue;
        };
        let profitable = |value: u64| {
            estimate(program, index, value)
                .is_some_and(|fold| fold.folded >= opts.min_folded && fold.emitted < fold.consumed)
        };
        if !profitable(primary) {
            reject(RejectReason::UnprofitableFold);
            continue;
        }
        // Secondary guards: top-k TNV values that individually clear the
        // share threshold AND fold profitably on their own.
        let mut values = vec![primary];
        for (value, count) in top_values(index) {
            if values.len() >= options.max_ways.max(1) {
                break;
            }
            if values.contains(&value) {
                continue;
            }
            let share = if m.executions == 0 { 0.0 } else { count as f64 / m.executions as f64 };
            if share >= options.min_way_share && profitable(value) {
                values.push(value);
            }
        }
        selected.push(MultiCandidate {
            load_index: index,
            values,
            invariance: m.inv_top1,
            executions: m.executions,
        });
    }
    selected.sort_by(|a, b| b.executions.cmp(&a.executions).then(a.load_index.cmp(&b.load_index)));
    CandidatePlan { selected, rejected }
}

/// Outcome for one specialized site after the test-input evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteOutcome {
    /// Where the guards ended up and which values they test.
    pub site: GuardSite,
    /// Profiled `Inv-Top(1)` on the train input.
    pub invariance: f64,
    /// Profiled executions on the train input.
    pub executions: u64,
    /// Guard hit/miss totals measured on the test input.
    pub guards: GuardStats,
}

/// The full program-level pipeline result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOptimize {
    /// Specialized sites with guard accounting, hottest (by train
    /// profile) first.
    pub sites: Vec<SiteOutcome>,
    /// Sites rejected by the planner, in entity-id order.
    pub rejected: Vec<RejectedCandidate>,
    /// Original-vs-specialized instruction counts and equivalence on the
    /// evaluation input.
    pub eval: SpeedupReport,
}

impl ProgramOptimize {
    /// Total guard hits across all sites.
    pub fn guard_hits(&self) -> u64 {
        self.sites.iter().map(|s| s.guards.hits).sum()
    }

    /// Total guard misses across all sites.
    pub fn guard_misses(&self) -> u64 {
        self.sites.iter().map(|s| s.guards.misses).sum()
    }
}

/// Runs the program-level pipeline: plan candidates from the train-input
/// profile, specialize, and evaluate original vs specialized on `input`
/// (normally the *test* input) with guard accounting.
///
/// The pipeline is total over [`SpecializeError`]: a program that cannot
/// be specialized (it uses the scratch register, say) demotes every
/// selected site to a rejection and reports an identity evaluation rather
/// than failing, so suite drivers can run it over arbitrary workloads.
///
/// # Errors
///
/// Propagates emulator faults from the evaluation runs.
pub fn optimize_program(
    program: &Program,
    metrics: &[EntityMetrics],
    top_values: &dyn Fn(u32) -> Vec<(u64, u64)>,
    input: &InputSet,
    options: &OptimizeOptions,
) -> Result<ProgramOptimize, SimError> {
    let mut plan = plan_candidates(program, metrics, top_values, options);

    if plan.selected.is_empty() {
        let eval = identity_eval(program, input, options.budget)?;
        return Ok(ProgramOptimize { sites: Vec::new(), rejected: plan.rejected, eval });
    }

    match specialize_multi_all(program, &plan.selected) {
        Ok((specialized, sites)) => {
            let GuardedReport { speedup, guards } =
                evaluate_guarded(program, &specialized, &sites, input, options.budget)?;
            let outcomes = sites
                .into_iter()
                .zip(&plan.selected)
                .zip(guards)
                .map(|((site, cand), stats)| SiteOutcome {
                    site,
                    invariance: cand.invariance,
                    executions: cand.executions,
                    guards: stats,
                })
                .collect();
            Ok(ProgramOptimize { sites: outcomes, rejected: plan.rejected, eval: speedup })
        }
        Err(err) => {
            // Demote everything we picked and fall back to the original
            // program: the report stays honest (zero sites, reasons named).
            let reason = match err {
                SpecializeError::ScratchInUse => RejectReason::ScratchInUse,
                SpecializeError::NotALoad { .. } => RejectReason::NotALoad,
                SpecializeError::ProgramTooLarge => RejectReason::UnprofitableFold,
            };
            for c in &plan.selected {
                plan.rejected.push(RejectedCandidate {
                    load_index: c.load_index,
                    reason,
                    executions: c.executions,
                    invariance: c.invariance,
                });
            }
            plan.rejected.sort_by_key(|r| r.load_index);
            let eval = identity_eval(program, input, options.budget)?;
            Ok(ProgramOptimize { sites: Vec::new(), rejected: plan.rejected, eval })
        }
    }
}

/// Runs the original program once and reports it against itself.
fn identity_eval(
    program: &Program,
    input: &InputSet,
    budget: u64,
) -> Result<SpeedupReport, SimError> {
    let cfg = MachineConfig::new().input(input.clone());
    let mut machine = Machine::new(program.clone(), cfg)?;
    let out = machine.run(budget)?;
    Ok(SpeedupReport {
        base_instructions: out.instructions,
        specialized_instructions: out.instructions,
        equivalent: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;
    use vp_core::{track::TrackerConfig, InstructionProfiler};
    use vp_instrument::{Instrumenter, Selection};

    fn profile(program: &Program, input: &InputSet) -> InstructionProfiler {
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(program, MachineConfig::new().input(input.clone()), 100_000_000, &mut profiler)
            .unwrap();
        profiler
    }

    fn top_values_of(profiler: &InstructionProfiler) -> impl Fn(u32) -> Vec<(u64, u64)> + '_ {
        move |index| profiler.tracker(index).map(|t| tracker_top_values(t, 8)).unwrap_or_default()
    }

    #[test]
    fn demo_kernel_optimizes_end_to_end() {
        let program = demo::program();
        let train = demo::input(2_000, 0);
        let test = demo::input(2_000, 200);
        let profiler = profile(&program, &train);
        let metrics = profiler.metrics();
        let out = optimize_program(
            &program,
            &metrics,
            &top_values_of(&profiler),
            &test,
            &OptimizeOptions::default(),
        )
        .unwrap();
        assert_eq!(out.sites.len(), 1);
        assert!(out.eval.equivalent);
        assert!(out.eval.specialized_instructions < out.eval.base_instructions);
        let g = out.sites[0].guards;
        assert!(g.hits > 0);
        assert!(g.misses > 0, "the perturbed test input must miss sometimes");
        assert_eq!(out.guard_hits() + out.guard_misses(), g.hits + g.misses);
    }

    #[test]
    fn planner_names_rejection_reasons() {
        let program = demo::program();
        let train = demo::input(2_000, 0);
        let profiler = profile(&program, &train);
        let metrics = profiler.metrics();

        // An impossible invariance bar rejects the hot site as
        // low-invariance and selects nothing.
        let strict = OptimizeOptions {
            candidates: CandidateOptions { min_invariance: 1.1, ..CandidateOptions::default() },
            ..OptimizeOptions::default()
        };
        let plan = plan_candidates(&program, &metrics, &top_values_of(&profiler), &strict);
        assert!(plan.selected.is_empty());
        assert!(plan.rejected.iter().any(|r| r.reason == RejectReason::LowInvariance));

        // A prohibitive execution floor marks them cold instead.
        let cold = OptimizeOptions {
            candidates: CandidateOptions {
                min_executions: u64::MAX,
                ..CandidateOptions::default()
            },
            ..OptimizeOptions::default()
        };
        let plan = plan_candidates(&program, &metrics, &top_values_of(&profiler), &cold);
        assert!(plan.selected.is_empty());
        assert!(plan.rejected.iter().all(|r| r.reason == RejectReason::Cold));
    }

    #[test]
    fn scratch_using_program_demotes_to_rejections() {
        let program = vp_asm::assemble(
            r#"
            .data
            x: .quad 7
            .text
            main:
                la  r31, x
                li  r9, 200
            loop:
                ldd  r2, 0(r31)
                srli r3, r2, 1
                muli r3, r3, 5
                addi r3, r3, 1
                addi r9, r9, -1
                bnz  r9, loop
                andi a0, r3, 255
                sys  exit
            "#,
        )
        .unwrap();
        let input = InputSet::empty();
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(&program, MachineConfig::new().input(input.clone()), 100_000_000, &mut profiler)
            .unwrap();
        let metrics = profiler.metrics();
        let out = optimize_program(
            &program,
            &metrics,
            &|index| profiler.tracker(index).map(|t| tracker_top_values(t, 8)).unwrap_or_default(),
            &input,
            &OptimizeOptions::default(),
        )
        .unwrap();
        assert!(out.sites.is_empty());
        assert!(out.rejected.iter().any(|r| r.reason == RejectReason::ScratchInUse));
        assert!(out.eval.equivalent);
        assert_eq!(out.eval.base_instructions, out.eval.specialized_instructions);
    }
}
