//! The specialization demonstration kernel used by experiment E13 and the
//! `specialize_dispatch` example.
//!
//! Modelled on the paper's m88ksim case study: a simulator-style loop
//! reloads a configuration word from memory on every iteration and decodes
//! against it through a chain of pure ALU operations. The input stream can
//! occasionally rewrite the configuration, making the load *semi*-invariant
//! with a controllable invariance level.

use vp_asm::Program;
use vp_sim::InputSet;

/// The kernel's assembly source.
pub fn source() -> String {
    r#"
    .data
    config: .quad 0x1234
    .text
    .proc main
    main:
        la   r10, config
        sys  getinput             # N = iterations
        mov  r9, v0
        li   r18, 0               # checksum
    loop:
        bz   r9, done
        sys  getinput             # 0 = keep config, else new config value
        bz   v0, keep
        std  v0, 0(r10)
    keep:
        ldd  r2, 0(r10)           # the semi-invariant configuration load
        srli r3, r2, 3            # ... feeding a pure decode chain
        andi r3, r3, 1023
        muli r4, r3, 37
        addi r4, r4, 11
        xori r5, r4, 0x5a
        slli r6, r5, 2
        add  r7, r6, r4
        srli r8, r7, 1
        add  r18, r18, r8         # accumulate (r18 varies)
        addi r9, r9, -1
        j    loop
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// Assembles the kernel.
///
/// # Panics
///
/// Panics if the built-in source fails to assemble (covered by tests).
pub fn program() -> Program {
    vp_asm::assemble(&source()).expect("demo kernel assembles")
}

/// Builds an input with `iterations` loop trips where the configuration is
/// *perturbed* every `change_period` iterations (0 = never): set to a fresh
/// value for one iteration, then restored to the base configuration.
/// Smaller periods mean lower load invariance (roughly `1 - 1/period`).
pub fn input(iterations: u64, change_period: u64) -> InputSet {
    const BASE_CONFIG: u64 = 0x1234;
    let mut values = vec![iterations];
    for i in 0..iterations {
        if change_period != 0 && i > 0 && i % change_period == 0 {
            values.push(0x4000 + i); // transient perturbation
        } else if change_period != 0 && i > 0 && i % change_period == 1 {
            values.push(BASE_CONFIG); // restore the base configuration
        } else {
            values.push(0); // keep
        }
    }
    InputSet::named(format!("demo-p{change_period}"), values)
}

/// Instruction index of the configuration load in [`program`].
///
/// # Panics
///
/// Panics if the kernel unexpectedly has no load (covered by tests).
pub fn config_load_index(program: &Program) -> u32 {
    program.code().iter().position(|i| i.is_load()).expect("kernel has a load") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{Machine, MachineConfig};

    #[test]
    fn kernel_runs() {
        let p = program();
        let cfg = MachineConfig::new().input(input(500, 0));
        let out = Machine::new(p, cfg).unwrap().run(1_000_000).unwrap();
        assert!(out.instructions > 500 * 10);
    }

    #[test]
    fn change_period_controls_invariance() {
        use vp_core::{track::TrackerConfig, InstructionProfiler};
        use vp_instrument::{Instrumenter, Selection};
        let p = program();
        let idx = config_load_index(&p);
        let inv_of = |period: u64| {
            let mut prof = InstructionProfiler::new(TrackerConfig::with_full());
            Instrumenter::new()
                .select(Selection::LoadsOnly)
                .run(&p, MachineConfig::new().input(input(2_000, period)), 10_000_000, &mut prof)
                .unwrap();
            prof.metrics_for(idx).unwrap().inv_all1.unwrap()
        };
        let never = inv_of(0);
        let rare = inv_of(200);
        let often = inv_of(5);
        assert!(never > 0.999, "never: {never}");
        assert!(rare > 0.95 && rare < never, "rare: {rare}");
        assert!(often < rare, "often: {often}, rare: {rare}");
    }
}
