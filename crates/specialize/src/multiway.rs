//! Multi-way specialization: guarded fast paths for the top *k* values.
//!
//! The TNV table keeps the top **N** values of an entity precisely so an
//! optimizer can act on more than the single most frequent one. When a
//! load's value distribution is, say, 50/40/10, a one-way guard covers
//! only half the executions; a two-way dispatch covers 90%. This module
//! generalizes [`specialize`](crate::specialize) to a chain of guards:
//!
//! ```text
//! site i:   j trampoline
//! tramp:    ld rD, off(rB)
//!           li r31, V1 ; beq rD, r31, fast1
//!           li r31, V2 ; beq rD, r31, fast2
//!           ...
//!           j  i+1                  (slow path)
//! fast1:    <region folded with rD = V1> ; j resume
//! fast2:    <region folded with rD = V2> ; j resume
//! ```

use vp_asm::Program;
use vp_core::EntityMetrics;
use vp_isa::{BranchCond, Instruction};

use crate::fold::{fold_region, materialize};
use crate::liveness::Liveness;
use crate::transform::{Candidate, GuardSite, SpecializeError, SCRATCH};

/// A multi-way candidate: one load site, the top `values` to specialize on
/// (most frequent first).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCandidate {
    /// Instruction index of the load.
    pub load_index: u32,
    /// Values to build fast paths for, most frequent first.
    pub values: Vec<u64>,
    /// Combined profiled invariance of those values (`Inv-Top(k)`).
    pub invariance: f64,
    /// Profiled execution count of the load.
    pub executions: u64,
}

impl MultiCandidate {
    /// Builds a multi-way candidate from a profiled load's TNV metrics,
    /// taking the top values resident in `tracker`.
    pub fn from_metrics(metrics: &EntityMetrics, top_values: &[u64], k: usize) -> MultiCandidate {
        MultiCandidate {
            load_index: metrics.id as u32,
            values: top_values.iter().take(k).copied().collect(),
            invariance: metrics.inv_topn,
            executions: metrics.executions,
        }
    }

    /// The equivalent one-way candidate for the most frequent value.
    pub fn primary(&self) -> Option<Candidate> {
        self.values.first().map(|&value| Candidate {
            load_index: self.load_index,
            value,
            invariance: self.invariance,
            executions: self.executions,
        })
    }
}

/// Applies a multi-way specialization.
///
/// # Errors
///
/// Same failure conditions as [`specialize`](crate::specialize); also
/// fails with [`SpecializeError::NotALoad`] when `values` is empty (there
/// is nothing to guard).
pub fn specialize_multi(
    program: &Program,
    candidate: &MultiCandidate,
) -> Result<Program, SpecializeError> {
    if program
        .code()
        .iter()
        .any(|i| i.source_registers().contains(&SCRATCH) || i.dest_register() == Some(SCRATCH))
    {
        return Err(SpecializeError::ScratchInUse);
    }
    specialize_multi_unchecked(program, candidate).map(|(p, _)| p)
}

/// Applies a list of multi-way candidates in order (each on the result of
/// the previous transform), reporting where each transform placed its
/// guard chain. The scratch-register check runs once against the input
/// program: later transforms legitimately read the scratch writes of their
/// own trampolines, exactly like [`specialize_all`](crate::specialize_all).
///
/// # Errors
///
/// Same conditions as [`specialize_multi`].
pub fn specialize_multi_all(
    program: &Program,
    candidates: &[MultiCandidate],
) -> Result<(Program, Vec<GuardSite>), SpecializeError> {
    if !candidates.is_empty()
        && program
            .code()
            .iter()
            .any(|i| i.source_registers().contains(&SCRATCH) || i.dest_register() == Some(SCRATCH))
    {
        return Err(SpecializeError::ScratchInUse);
    }
    let mut current = program.clone();
    let mut sites = Vec::with_capacity(candidates.len());
    for c in candidates {
        let (next, site) = specialize_multi_unchecked(&current, c)?;
        current = next;
        sites.push(site);
    }
    Ok((current, sites))
}

fn specialize_multi_unchecked(
    program: &Program,
    candidate: &MultiCandidate,
) -> Result<(Program, GuardSite), SpecializeError> {
    if candidate.values.is_empty() {
        return Err(SpecializeError::NotALoad { index: candidate.load_index });
    }
    let code = program.code();
    let index = candidate.load_index as usize;
    let load = *code.get(index).ok_or(SpecializeError::NotALoad { index: candidate.load_index })?;
    let rd = match load {
        Instruction::Load { rd, .. } | Instruction::LoadSigned { rd, .. } => rd,
        _ => return Err(SpecializeError::NotALoad { index: candidate.load_index }),
    };

    let liveness = Liveness::compute(program);
    let mut region_len = 0u32;
    for &instr in &code[index + 1..] {
        if instr.is_control_transfer() || matches!(instr, Instruction::Sys { .. }) {
            break;
        }
        region_len += 1;
    }
    let resume = candidate.load_index + 1 + region_len;
    let live = liveness.live_at(resume);

    // Fold the region once per guarded value.
    let folds: Vec<Vec<Instruction>> = candidate
        .values
        .iter()
        .map(|&v| fold_region(code, index + 1, rd, v, live).emitted)
        .collect();

    let mut new_code = code.to_vec();
    let trampoline = new_code.len() as u32;
    new_code.push(load);

    // Guard chain. Branch displacements depend on downstream sizes, so lay
    // out the guards first with placeholder displacements, then the fast
    // paths, then patch.
    let mut guard_starts = Vec::new();
    for &value in &candidate.values {
        let mut constant = Vec::new();
        materialize(SCRATCH, value, &mut constant);
        new_code.extend_from_slice(&constant);
        guard_starts.push(new_code.len());
        new_code.push(Instruction::Branch { cond: BranchCond::Eq, rs: rd, rt: SCRATCH, disp: 0 });
    }
    new_code.push(Instruction::Jump { target: candidate.load_index + 1 }); // slow path

    let mut fast_starts = Vec::new();
    for fold in &folds {
        fast_starts.push(new_code.len() as u32);
        new_code.extend_from_slice(fold);
        new_code.push(Instruction::Jump { target: resume });
    }
    // Patch the guard displacements to their fast paths.
    for (guard_at, fast_at) in guard_starts.iter().zip(&fast_starts) {
        let disp = i64::from(*fast_at) - (*guard_at as i64 + 1);
        let disp = i16::try_from(disp).map_err(|_| SpecializeError::ProgramTooLarge)?;
        if let Instruction::Branch { cond, rs, rt, .. } = new_code[*guard_at] {
            new_code[*guard_at] = Instruction::Branch { cond, rs, rt, disp };
        }
    }

    if new_code.len() >= (1 << 26) {
        return Err(SpecializeError::ProgramTooLarge);
    }
    new_code[index] = Instruction::Jump { target: trampoline };

    let site = GuardSite {
        load_index: candidate.load_index,
        values: candidate.values.clone(),
        guard_indices: guard_starts.iter().map(|&g| g as u32).collect(),
    };
    Ok((
        Program::from_parts(
            new_code,
            program.data().to_vec(),
            program.symbols().clone(),
            program.procedures().to_vec(),
            program.entry(),
        ),
        site,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{InputSet, Machine, MachineConfig};

    /// A kernel whose load cycles between two dominant values (60/40), so
    /// one-way specialization covers 60% of executions but two-way covers
    /// all of them.
    fn kernel() -> Program {
        vp_asm::assemble(
            r#"
            .data
            which: .quad 0
            vals:  .quad 80, 120
            .text
            main:
                la  r10, which
                la  r11, vals
                li  r9, 1000
                li  r18, 0
            loop:
                # flip `which` with duty cycle 3:2
                ldd  r12, 0(r10)
                addi r12, r12, 1
                remi r12, r12, 5
                std  r12, 0(r10)
                slti r13, r12, 3
                xori r13, r13, 1
                slli r13, r13, 3
                add  r13, r13, r11
                ldd  r2, 0(r13)      # the bimodal load (80 or 120)
                srli r3, r2, 2
                muli r3, r3, 7
                addi r3, r3, 3
                xori r3, r3, 44
                slli r4, r3, 1
                add  r5, r4, r3
                srli r5, r5, 1
                andi r5, r5, 2047
                muli r5, r5, 13
                addi r5, r5, 29
                xori r5, r5, 333
                srli r5, r5, 1
                add  r18, r18, r5
                addi r9, r9, -1
                bnz  r9, loop
                andi a0, r18, 255
                sys  exit
            "#,
        )
        .unwrap()
    }

    fn bimodal_load_index(p: &Program) -> u32 {
        // The second load in the loop body (after the `which` load).
        p.code()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_load())
            .map(|(i, _)| i as u32)
            .nth(1)
            .unwrap()
    }

    fn run(p: &Program) -> (i64, u64) {
        let mut m = Machine::new(p.clone(), MachineConfig::new().input(InputSet::empty())).unwrap();
        let out = m.run(10_000_000).unwrap();
        (out.exit_code, out.instructions)
    }

    #[test]
    fn two_way_beats_one_way_on_bimodal_loads() {
        let program = kernel();
        let load = bimodal_load_index(&program);
        let (base_code, base_n) = run(&program);

        let one_way = crate::specialize(
            &program,
            &Candidate { load_index: load, value: 80, invariance: 0.6, executions: 1000 },
        )
        .unwrap();
        let (one_code, one_n) = run(&one_way);
        assert_eq!(base_code, one_code);

        let two_way = specialize_multi(
            &program,
            &MultiCandidate {
                load_index: load,
                values: vec![80, 120],
                invariance: 1.0,
                executions: 1000,
            },
        )
        .unwrap();
        let (two_code, two_n) = run(&two_way);
        assert_eq!(base_code, two_code, "two-way must preserve behaviour");

        assert!(one_n < base_n, "one-way should win: {one_n} vs {base_n}");
        assert!(two_n < one_n, "two-way should beat one-way: {two_n} vs {one_n}");
    }

    #[test]
    fn unmatched_values_fall_through_to_slow_path() {
        let program = kernel();
        let load = bimodal_load_index(&program);
        let (base_code, base_n) = run(&program);
        let wrong = specialize_multi(
            &program,
            &MultiCandidate {
                load_index: load,
                values: vec![1, 2, 3],
                invariance: 0.0,
                executions: 1000,
            },
        )
        .unwrap();
        let (code, n) = run(&wrong);
        assert_eq!(base_code, code);
        assert!(n > base_n, "three dead guards cost instructions");
    }

    #[test]
    fn empty_values_rejected_and_primary_projection() {
        let program = kernel();
        let load = bimodal_load_index(&program);
        let empty =
            MultiCandidate { load_index: load, values: vec![], invariance: 0.0, executions: 0 };
        assert!(specialize_multi(&program, &empty).is_err());
        assert!(empty.primary().is_none());
        let mc = MultiCandidate {
            load_index: load,
            values: vec![9, 8],
            invariance: 0.5,
            executions: 10,
        };
        assert_eq!(mc.primary().unwrap().value, 9);
    }

    #[test]
    fn from_metrics_takes_top_k() {
        use vp_core::EntityMetrics;
        let m = EntityMetrics {
            id: 12,
            executions: 100,
            lvp: 0.0,
            inv_top1: 0.5,
            inv_topn: 0.9,
            inv_all1: None,
            inv_alln: None,
            pct_zero: 0.0,
            distinct: None,
            top_value: Some(7),
        };
        let mc = MultiCandidate::from_metrics(&m, &[7, 9, 11, 13], 2);
        assert_eq!(mc.load_index, 12);
        assert_eq!(mc.values, vec![7, 9]);
        assert!((mc.invariance - 0.9).abs() < 1e-12);
    }
}
