//! Backward register liveness over the basic-block CFG.
//!
//! The specializer's constant folder must materialize a folded register at
//! the end of its fast path only if that register is *live* at the resume
//! point. This module computes classic iterative backward liveness.
//!
//! Conservatism: indirect jumps (`jr`/`jalr`) and calls (`jal`) are treated
//! as reading every register (their continuation is unknown or belongs to
//! another procedure), so nothing live across them is ever lost.

use vp_asm::Program;
use vp_isa::{Instruction, Reg, Syscall};
use vp_sim::Cfg;

/// A set of registers, as a 32-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// Every register.
    pub const ALL: RegSet = RegSet(u32::MAX);

    /// Whether `r` is in the set.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Adds `r`.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }
}

/// Registers an instruction reads, with the conservative treatment of
/// calls, indirect jumps and syscalls described in the module docs.
pub fn uses(instr: Instruction) -> RegSet {
    let mut set = RegSet::EMPTY;
    match instr {
        Instruction::Jal { .. } | Instruction::Jalr { .. } | Instruction::Jr { .. } => {
            return RegSet::ALL;
        }
        Instruction::Sys { call } => {
            set.insert(Reg::A0);
            if call == Syscall::Exit {
                // Exit terminates: nothing else matters, but A0 is read.
            }
            return set;
        }
        _ => {}
    }
    for r in instr.source_registers() {
        set.insert(r);
    }
    set
}

/// Register an instruction writes (architecturally).
pub fn defs(instr: Instruction) -> RegSet {
    let mut set = RegSet::EMPTY;
    if let Some(r) = instr.dest_register() {
        if !r.is_zero() {
            set.insert(r);
        }
    }
    set
}

/// Liveness query results for a program.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live-in set per instruction index.
    live_in: Vec<RegSet>,
}

impl Liveness {
    /// Computes liveness for `program`.
    pub fn compute(program: &Program) -> Liveness {
        let code = program.code();
        let n = code.len();
        let cfg = Cfg::build(program);
        let blocks = cfg.blocks();

        // Successor block leaders for each block.
        let successors: Vec<Vec<u32>> = blocks
            .iter()
            .map(|b| {
                if b.range.end == 0 {
                    return Vec::new();
                }
                let last_idx = b.range.end - 1;
                let last = code[last_idx as usize];
                let mut succ = Vec::new();
                match last {
                    Instruction::Branch { disp, .. } => {
                        let target = i64::from(last_idx) + 1 + i64::from(disp);
                        if (0..n as i64).contains(&target) {
                            succ.push(target as u32);
                        }
                        if (last_idx + 1) < n as u32 {
                            succ.push(last_idx + 1);
                        }
                    }
                    Instruction::Jump { target } => {
                        if (target as usize) < n {
                            succ.push(target);
                        }
                    }
                    Instruction::Sys { call: Syscall::Exit } => {}
                    // Indirect control flow and calls: uses() already makes
                    // everything live, so successors can stay empty.
                    Instruction::Jr { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. } => {
                    }
                    _ => {
                        if (last_idx + 1) < n as u32 {
                            succ.push(last_idx + 1);
                        }
                    }
                }
                succ
            })
            .collect();

        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out_block = vec![RegSet::EMPTY; blocks.len()];
        // Iterate to fixpoint.
        loop {
            let mut changed = false;
            for (bi, block) in blocks.iter().enumerate().rev() {
                let mut out = RegSet::EMPTY;
                for &succ_leader in &successors[bi] {
                    out = out.union(live_in[succ_leader as usize]);
                }
                if out != live_out_block[bi] {
                    live_out_block[bi] = out;
                    changed = true;
                }
                let mut live = out;
                for idx in block.range.clone().rev() {
                    let instr = code[idx as usize];
                    let mut next = live;
                    for r in Reg::all() {
                        if defs(instr).contains(r) {
                            next.remove(r);
                        }
                    }
                    next = next.union(uses(instr));
                    if next != live_in[idx as usize] {
                        live_in[idx as usize] = next;
                        changed = true;
                    }
                    live = next;
                }
            }
            if !changed {
                break;
            }
        }
        Liveness { live_in }
    }

    /// Registers live immediately before the instruction at `index`.
    /// Out-of-range indices conservatively report everything live.
    pub fn live_at(&self, index: u32) -> RegSet {
        self.live_in.get(index as usize).copied().unwrap_or(RegSet::ALL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn liveness(src: &str) -> (Program, Liveness) {
        let p = vp_asm::assemble(src).unwrap();
        let l = Liveness::compute(&p);
        (p, l)
    }

    #[test]
    fn dead_after_last_read() {
        let (_, l) = liveness(
            r#"
            .text
            main:
                addi r2, r0, 5      # 0: defines r2
                add  r3, r2, r2     # 1: last read of r2
                mov  a0, r3         # 2
                sys  exit           # 3
            "#,
        );
        assert!(l.live_at(1).contains(Reg::R2));
        assert!(!l.live_at(2).contains(Reg::R2), "r2 dead after its last read");
        assert!(l.live_at(2).contains(Reg::R3));
        assert!(l.live_at(3).contains(Reg::A0));
    }

    #[test]
    fn loop_carried_liveness() {
        let (_, l) = liveness(
            r#"
            .text
            main:
                addi r9, r0, 10     # 0
            loop:
                addi r9, r9, -1     # 1: reads and writes r9
                bnz  r9, loop       # 2
                sys  exit           # 3
            "#,
        );
        assert!(l.live_at(1).contains(Reg::R9));
        assert!(l.live_at(2).contains(Reg::R9), "r9 live around the back edge");
    }

    #[test]
    fn calls_keep_everything_live() {
        let (_, l) = liveness(
            r#"
            .text
            main:
                addi r20, r0, 1     # 0: r20 never read afterwards...
                call f              # 1: ...but the call is conservative
                sys  exit
            .proc f
            f:
                ret
            .endp
            "#,
        );
        assert!(l.live_at(1).contains(Reg::R20));
    }

    #[test]
    fn regset_operations() {
        let mut s = RegSet::EMPTY;
        assert!(!s.contains(Reg::R5));
        s.insert(Reg::R5);
        assert!(s.contains(Reg::R5));
        s.remove(Reg::R5);
        assert!(!s.contains(Reg::R5));
        assert!(RegSet::ALL.contains(Reg::R31));
        let mut a = RegSet::EMPTY;
        a.insert(Reg::R1);
        let mut b = RegSet::EMPTY;
        b.insert(Reg::R2);
        let u = a.union(b);
        assert!(u.contains(Reg::R1) && u.contains(Reg::R2));
    }

    #[test]
    fn uses_and_defs() {
        use vp_isa::{AluOp, MemWidth};
        let st = Instruction::Store { rs: Reg::R3, base: Reg::R4, offset: 0, width: MemWidth::D };
        assert!(uses(st).contains(Reg::R3) && uses(st).contains(Reg::R4));
        assert_eq!(defs(st), RegSet::EMPTY);
        let add = Instruction::Alu { op: AluOp::Add, rd: Reg::R2, rs: Reg::R3, rt: Reg::R4 };
        assert!(defs(add).contains(Reg::R2));
        let to_zero = Instruction::AluImm { op: AluOp::Add, rd: Reg::R0, rs: Reg::R1, imm: 0 };
        assert_eq!(defs(to_zero), RegSet::EMPTY);
        assert_eq!(uses(Instruction::Jr { rs: Reg::RA }), RegSet::ALL);
        assert!(uses(Instruction::Sys { call: Syscall::PutInt }).contains(Reg::A0));
    }
}
