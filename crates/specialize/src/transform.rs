//! The specialization transform: guarded fast paths for semi-invariant
//! loads.
//!
//! For a candidate load `ld rD, off(rB)` whose profiled top value is `V`:
//!
//! ```text
//! original site:            i: j trampoline          (replaces the load)
//!
//! appended trampoline:      t+0: ld rD, off(rB)      (the original load)
//!                           t+1: li r31, V           (guard constant)
//!                           t+k: beq rD, r31, fast
//!                                j  i+1               (slow path: resume)
//!                           fast: <folded fast path>
//!                                j  resume            (after the region)
//! ```
//!
//! The fast path is the load's basic-block suffix constant-folded against
//! `V` (see [`crate::fold`]), materializing only registers that are live
//! at the resume point. Cold/slow executions pay the guard; hot executions
//! skip the folded computation — the paper's specialization trade-off,
//! measurable in dynamic instructions.

use std::fmt;

use vp_asm::Program;
use vp_core::EntityMetrics;
use vp_isa::{BranchCond, Instruction, Reg};

use crate::fold::{fold_region, materialize};
use crate::liveness::Liveness;

/// The register the generated guard uses for its comparison constant.
/// Programs to be specialized must not use it (checked by
/// [`specialize`]).
pub const SCRATCH: Reg = Reg::R31;

/// A specialization candidate: a load site and its dominant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Instruction index of the load.
    pub load_index: u32,
    /// The profiled top value to specialize on.
    pub value: u64,
    /// Profiled `Inv-Top(1)` of the load.
    pub invariance: f64,
    /// Profiled execution count of the load.
    pub executions: u64,
}

/// Options controlling candidate selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateOptions {
    /// Minimum `Inv-Top(1)` for a load to qualify (the paper specializes
    /// on *semi-invariant* entities; 0.8–0.99 is the useful band).
    pub min_invariance: f64,
    /// Minimum dynamic executions (don't specialize cold code).
    pub min_executions: u64,
    /// Minimum number of instructions the fold must eliminate for the
    /// guard to pay for itself.
    pub min_folded: usize,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        CandidateOptions { min_invariance: 0.85, min_executions: 100, min_folded: 2 }
    }
}

/// Errors of the specialization transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecializeError {
    /// The candidate index does not hold a load instruction.
    NotALoad {
        /// The offending instruction index.
        index: u32,
    },
    /// The program already uses the scratch register the guard needs.
    ScratchInUse,
    /// The program is too large to append a trampoline.
    ProgramTooLarge,
}

impl fmt::Display for SpecializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecializeError::NotALoad { index } => {
                write!(f, "instruction {index} is not a load")
            }
            SpecializeError::ScratchInUse => {
                write!(f, "program uses the scratch register {SCRATCH}")
            }
            SpecializeError::ProgramTooLarge => write!(f, "program too large to specialize"),
        }
    }
}

impl std::error::Error for SpecializeError {}

/// Where a specialization transform placed its runtime guards.
///
/// Guard indices are instruction indices of the conditional `beq`
/// instructions in the appended trampoline, one per specialized value
/// (single-way transforms have exactly one). Later transforms only append
/// code and overwrite their own load site, so indices recorded by earlier
/// transforms stay valid across a chained [`specialize_all_sites`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSite {
    /// Instruction index of the original (now redirected) load.
    pub load_index: u32,
    /// The values the guards test, in chain order.
    pub values: Vec<u64>,
    /// Instruction indices of the guard branches, in chain order. The
    /// slow path is taken iff the *last* guard falls through.
    pub guard_indices: Vec<u32>,
}

/// Cost estimate of specializing one load site (see [`estimate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldEstimate {
    /// Original instructions the foldable region covers.
    pub consumed: usize,
    /// Instructions the fast path would execute instead.
    pub emitted: usize,
    /// Original instructions whose execution the fast path avoids.
    pub folded: usize,
}

impl FoldEstimate {
    /// Instructions saved per fast-path execution: the slow path runs the
    /// region plus a jump back; the fast path runs the emitted sequence
    /// plus a resume jump.
    pub fn net_gain(&self) -> i64 {
        self.consumed as i64 - self.emitted as i64
    }
}

/// Estimates the cost/benefit of specializing the load at `load_index` on
/// `value`, without transforming anything. Returns `None` if the index
/// does not hold a load.
pub fn estimate(program: &Program, load_index: u32, value: u64) -> Option<FoldEstimate> {
    let instr = *program.code().get(load_index as usize)?;
    let rd = match instr {
        Instruction::Load { rd, .. } | Instruction::LoadSigned { rd, .. } => rd,
        _ => return None,
    };
    let liveness = Liveness::compute(program);
    let resume = load_index + 1 + probe_region_len(program, load_index);
    let fold =
        fold_region(program.code(), load_index as usize + 1, rd, value, liveness.live_at(resume));
    Some(FoldEstimate { consumed: fold.consumed, emitted: fold.emitted.len(), folded: fold.folded })
}

/// Selects specialization candidates from a load-value profile.
///
/// `metrics` must come from an
/// [`InstructionProfiler`](vp_core::InstructionProfiler) run (entity ids
/// are instruction indices). Candidates are returned hottest-first.
pub fn find_candidates(
    program: &Program,
    metrics: &[EntityMetrics],
    options: CandidateOptions,
) -> Vec<Candidate> {
    let liveness = Liveness::compute(program);
    let mut out: Vec<Candidate> = metrics
        .iter()
        .filter(|m| m.executions >= options.min_executions)
        .filter(|m| m.inv_top1 >= options.min_invariance)
        .filter_map(|m| {
            let index = m.load_index()?;
            let instr = *program.code().get(index as usize)?;
            let rd = match instr {
                Instruction::Load { rd, .. } | Instruction::LoadSigned { rd, .. } => rd,
                _ => return None,
            };
            let value = m.top_value?;
            // Dry-run the fold: it must remove enough instructions AND the
            // fast path must be strictly shorter than the slow path (wide
            // constants can make materialization outweigh the fold).
            let resume_region_start = index as usize + 1;
            let result = fold_region(
                program.code(),
                resume_region_start,
                rd,
                value,
                liveness.live_at(index + 1 + probe_region_len(program, index)),
            );
            (result.folded >= options.min_folded && result.emitted.len() < result.consumed)
                .then_some(Candidate {
                    load_index: index,
                    value,
                    invariance: m.inv_top1,
                    executions: m.executions,
                })
        })
        .collect();
    out.sort_by(|a, b| b.executions.cmp(&a.executions).then(a.load_index.cmp(&b.load_index)));
    out
}

trait LoadIndex {
    fn load_index(&self) -> Option<u32>;
}

impl LoadIndex for EntityMetrics {
    fn load_index(&self) -> Option<u32> {
        u32::try_from(self.id).ok()
    }
}

/// Length of the foldable region following the load at `index`.
fn probe_region_len(program: &Program, index: u32) -> u32 {
    let code = program.code();
    let mut len = 0u32;
    for &instr in &code[(index as usize + 1)..] {
        if instr.is_control_transfer() || matches!(instr, Instruction::Sys { .. }) {
            break;
        }
        len += 1;
    }
    len
}

/// Applies one specialization, returning the transformed program.
///
/// # Errors
///
/// Fails when the candidate is not a load, the program uses the scratch
/// register [`SCRATCH`], or jump targets would overflow.
pub fn specialize(program: &Program, candidate: &Candidate) -> Result<Program, SpecializeError> {
    if uses_scratch(program) {
        return Err(SpecializeError::ScratchInUse);
    }
    specialize_unchecked(program, candidate).map(|(p, _)| p)
}

/// [`specialize`] without the scratch-register check — used internally by
/// [`specialize_all`], whose own trampolines legitimately use the scratch
/// register (each one writes it before its only read).
fn specialize_unchecked(
    program: &Program,
    candidate: &Candidate,
) -> Result<(Program, GuardSite), SpecializeError> {
    let code = program.code();
    let index = candidate.load_index as usize;
    let load = *code.get(index).ok_or(SpecializeError::NotALoad { index: candidate.load_index })?;
    let rd = match load {
        Instruction::Load { rd, .. } | Instruction::LoadSigned { rd, .. } => rd,
        _ => return Err(SpecializeError::NotALoad { index: candidate.load_index }),
    };

    let liveness = Liveness::compute(program);
    let region_len = probe_region_len(program, candidate.load_index);
    let resume = candidate.load_index + 1 + region_len;
    let fold = fold_region(code, index + 1, rd, candidate.value, liveness.live_at(resume));

    let mut new_code = code.to_vec();
    let trampoline = new_code.len() as u32;

    // Trampoline: original load, guard, slow jump, fast path, resume jump.
    new_code.push(load);
    let mut guard = Vec::new();
    materialize(SCRATCH, candidate.value, &mut guard);
    new_code.extend_from_slice(&guard);
    let guard_index = new_code.len() as u32;
    new_code.push(Instruction::Branch { cond: BranchCond::Eq, rs: rd, rt: SCRATCH, disp: 1 });
    new_code.push(Instruction::Jump { target: candidate.load_index + 1 }); // slow path
    new_code.extend_from_slice(&fold.emitted); // fast path
    new_code.push(Instruction::Jump { target: resume });

    if new_code.len() >= (1 << 26) {
        return Err(SpecializeError::ProgramTooLarge);
    }
    // Redirect the load site into the trampoline.
    new_code[index] = Instruction::Jump { target: trampoline };

    let site = GuardSite {
        load_index: candidate.load_index,
        values: vec![candidate.value],
        guard_indices: vec![guard_index],
    };
    Ok((
        Program::from_parts(
            new_code,
            program.data().to_vec(),
            program.symbols().clone(),
            program.procedures().to_vec(),
            program.entry(),
        ),
        site,
    ))
}

/// Applies a list of candidates in order (each on the result of the
/// previous transform). Candidates at the same load site are rejected by
/// the `NotALoad` check, since the first transform replaces the load.
///
/// # Errors
///
/// Same conditions as [`specialize`].
pub fn specialize_all(
    program: &Program,
    candidates: &[Candidate],
) -> Result<Program, SpecializeError> {
    specialize_all_sites(program, candidates).map(|(p, _)| p)
}

/// [`specialize_all`] that also reports where each transform placed its
/// guard, so callers can instrument guard hit/miss rates (see
/// [`crate::eval::evaluate_guarded`]).
///
/// # Errors
///
/// Same conditions as [`specialize`].
pub fn specialize_all_sites(
    program: &Program,
    candidates: &[Candidate],
) -> Result<(Program, Vec<GuardSite>), SpecializeError> {
    if !candidates.is_empty() && uses_scratch(program) {
        return Err(SpecializeError::ScratchInUse);
    }
    let mut current = program.clone();
    let mut sites = Vec::with_capacity(candidates.len());
    for c in candidates {
        let (next, site) = specialize_unchecked(&current, c)?;
        current = next;
        sites.push(site);
    }
    Ok((current, sites))
}

fn uses_scratch(program: &Program) -> bool {
    program
        .code()
        .iter()
        .any(|i| i.source_registers().contains(&SCRATCH) || i.dest_register() == Some(SCRATCH))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{Machine, MachineConfig};

    /// A kernel with a semi-invariant load feeding a foldable chain.
    fn kernel() -> Program {
        vp_asm::assemble(
            r#"
            .data
            config: .quad 80
            .text
            main:
                la  r10, config
                li  r9, 1000
                li  r18, 0
            loop:
                ldd  r2, 0(r10)      # semi-invariant load
                srli r3, r2, 3
                andi r3, r3, 1023
                muli r4, r3, 37
                addi r4, r4, 11
                xori r5, r4, 90
                slli r6, r5, 2
                add  r7, r6, r4
                srli r8, r7, 1
                add  r18, r18, r8    # r18 unknown: chain ends here
                addi r9, r9, -1
                bnz  r9, loop
                andi a0, r18, 255
                sys  exit
            "#,
        )
        .unwrap()
    }

    fn load_index(p: &Program) -> u32 {
        p.code().iter().position(|i| i.is_load()).unwrap() as u32
    }

    #[test]
    fn specialized_program_is_equivalent_and_faster() {
        let program = kernel();
        let candidate = Candidate {
            load_index: load_index(&program),
            value: 80,
            invariance: 1.0,
            executions: 1000,
        };
        let specialized = specialize(&program, &candidate).unwrap();

        let mut base = Machine::new(program, MachineConfig::new()).unwrap();
        let base_out = base.run(10_000_000).unwrap();
        let mut fast = Machine::new(specialized, MachineConfig::new()).unwrap();
        let fast_out = fast.run(10_000_000).unwrap();

        assert_eq!(base_out.exit_code, fast_out.exit_code);
        assert_eq!(base_out.output, fast_out.output);
        assert!(
            fast_out.instructions < base_out.instructions,
            "specialized {} should beat base {}",
            fast_out.instructions,
            base_out.instructions
        );
    }

    #[test]
    fn guard_falls_back_when_value_changes() {
        // Specialize on the WRONG value: the guard must route every
        // iteration through the slow path, and results must still match.
        let program = kernel();
        let candidate = Candidate {
            load_index: load_index(&program),
            value: 9999,
            invariance: 1.0,
            executions: 1000,
        };
        let specialized = specialize(&program, &candidate).unwrap();
        let mut base = Machine::new(program, MachineConfig::new()).unwrap();
        let base_out = base.run(10_000_000).unwrap();
        let mut slow = Machine::new(specialized, MachineConfig::new()).unwrap();
        let slow_out = slow.run(10_000_000).unwrap();
        assert_eq!(base_out.exit_code, slow_out.exit_code);
        assert!(slow_out.instructions > base_out.instructions, "guard adds overhead");
    }

    #[test]
    fn rejects_non_loads_and_scratch_users() {
        let program = kernel();
        let c = Candidate { load_index: 0, value: 1, invariance: 1.0, executions: 1 };
        assert_eq!(specialize(&program, &c).unwrap_err(), SpecializeError::NotALoad { index: 0 });

        let scratchy = vp_asm::assemble(
            ".data\nx: .quad 1\n.text\nmain: la r31, x\n ldd r2, 0(r31)\n sys exit\n",
        )
        .unwrap();
        let idx = load_index(&scratchy);
        let c = Candidate { load_index: idx, value: 1, invariance: 1.0, executions: 1 };
        assert_eq!(specialize(&scratchy, &c).unwrap_err(), SpecializeError::ScratchInUse);
    }

    #[test]
    fn find_candidates_filters() {
        use vp_core::{track::TrackerConfig, InstructionProfiler};
        use vp_instrument::{Instrumenter, Selection};
        let program = kernel();
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(&program, MachineConfig::new(), 10_000_000, &mut profiler)
            .unwrap();
        let candidates =
            find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].load_index, load_index(&program));
        assert_eq!(candidates[0].value, 80);
        assert!(candidates[0].invariance > 0.99);

        // Raising the invariance bar above 1.0 rejects everything.
        let none = find_candidates(
            &program,
            &profiler.metrics(),
            CandidateOptions { min_invariance: 1.1, ..CandidateOptions::default() },
        );
        assert!(none.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(SpecializeError::NotALoad { index: 3 }.to_string().contains("3"));
        assert!(SpecializeError::ScratchInUse.to_string().contains("r31"));
    }
}
