//! Constant folding of the straight-line region following a specialized
//! load, given that the load's destination register holds a known value.

use std::collections::HashMap;

use vp_isa::{AluOp, Instruction, Reg};
use vp_sim::{alu_eval, fp_eval};

use crate::liveness::RegSet;

/// Emits the canonical instruction sequence materializing `value` into
/// `rd` (the same expansion the assembler uses for `li`).
pub fn materialize(rd: Reg, value: u64, out: &mut Vec<Instruction>) {
    if let Ok(imm) = i16::try_from(value as i64) {
        out.push(Instruction::AluImm { op: AluOp::Add, rd, rs: Reg::R0, imm });
    } else if let Ok(v) = u32::try_from(value) {
        out.push(Instruction::Lui { rd, imm: (v >> 16) as u16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: (v & 0xffff) as u16 as i16,
        });
    } else {
        out.push(Instruction::Lui { rd, imm: (value >> 48) as u16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: ((value >> 32) & 0xffff) as u16 as i16,
        });
        out.push(Instruction::AluImm { op: AluOp::Sll, rd, rs: rd, imm: 16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: ((value >> 16) & 0xffff) as u16 as i16,
        });
        out.push(Instruction::AluImm { op: AluOp::Sll, rd, rs: rd, imm: 16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: (value & 0xffff) as u16 as i16,
        });
    }
}

/// Result of folding a region.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// Replacement instruction sequence for the fast path.
    pub emitted: Vec<Instruction>,
    /// How many original instructions the region covered.
    pub consumed: usize,
    /// Original instructions whose execution was avoided (folded).
    pub folded: usize,
}

#[derive(Debug)]
struct FoldState {
    /// Registers with statically known values.
    known: HashMap<Reg, u64>,
    /// Known registers whose value is currently present at run time.
    materialized: RegSet,
    emitted: Vec<Instruction>,
    folded: usize,
}

impl FoldState {
    fn value_of(&self, r: Reg) -> Option<u64> {
        if r.is_zero() {
            return Some(0);
        }
        self.known.get(&r).copied()
    }

    fn is_available(&self, r: Reg) -> bool {
        r.is_zero() || !self.known.contains_key(&r) || self.materialized.contains(r)
    }

    /// Ensures a known register's value is present at run time before an
    /// emitted instruction reads it.
    fn ensure_materialized(&mut self, r: Reg) {
        if r.is_zero() || self.is_available(r) {
            return;
        }
        let value = self.known[&r];
        materialize(r, value, &mut self.emitted);
        self.materialized.insert(r);
    }

    /// Records that an emitted instruction wrote `r` at run time: its
    /// static value (if any) is no longer valid.
    fn clobber(&mut self, r: Reg) {
        self.known.remove(&r);
        self.materialized.remove(r);
    }

    /// Records a folded (not emitted) write of a known value.
    fn fold_write(&mut self, r: Reg, value: u64) {
        if r.is_zero() {
            return;
        }
        self.known.insert(r, value);
        self.materialized.remove(r);
        self.folded += 1;
    }

    fn emit(&mut self, instr: Instruction) {
        for r in instr.source_registers() {
            self.ensure_materialized(r);
        }
        if let Some(rd) = instr.dest_register() {
            self.clobber(rd);
        }
        self.emitted.push(instr);
    }
}

/// Folds the straight-line region of `code` starting at `start`, assuming
/// `seed_reg` holds `seed_value`. The region ends at the first
/// control-transfer or syscall instruction (exclusive). Registers still
/// known-but-unmaterialized at the end are materialized only if they are
/// in `live_at_resume`.
pub fn fold_region(
    code: &[Instruction],
    start: usize,
    seed_reg: Reg,
    seed_value: u64,
    live_at_resume: RegSet,
) -> FoldResult {
    let mut state = FoldState {
        known: HashMap::new(),
        materialized: RegSet::EMPTY,
        emitted: Vec::new(),
        folded: 0,
    };
    state.known.insert(seed_reg, seed_value);
    state.materialized.insert(seed_reg); // the guard verified it at run time

    let mut consumed = 0usize;
    for &instr in &code[start..] {
        if instr.is_control_transfer() || matches!(instr, Instruction::Sys { .. }) {
            break;
        }
        match instr {
            Instruction::Nop => {}
            Instruction::Alu { op, rd, rs, rt } => match (state.value_of(rs), state.value_of(rt)) {
                (Some(a), Some(b)) => state.fold_write(rd, alu_eval(op, a, b)),
                _ => state.emit(instr),
            },
            Instruction::AluImm { op, rd, rs, imm } => {
                let b = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Nor => imm as u16 as u64,
                    _ => imm as i64 as u64,
                };
                match state.value_of(rs) {
                    Some(a) => state.fold_write(rd, alu_eval(op, a, b)),
                    None => state.emit(instr),
                }
            }
            Instruction::Lui { rd, imm } => state.fold_write(rd, u64::from(imm) << 16),
            Instruction::Fp { op, rd, rs, rt } => {
                let b = if op.uses_rt() { state.value_of(rt) } else { Some(0) };
                match (state.value_of(rs), b) {
                    (Some(a), Some(b)) => state.fold_write(rd, fp_eval(op, a, b)),
                    _ => state.emit(instr),
                }
            }
            // Memory contents are not static: loads and stores always run.
            Instruction::Load { .. }
            | Instruction::LoadSigned { .. }
            | Instruction::Store { .. } => state.emit(instr),
            // Control transfers were handled by the loop break above.
            _ => state.emit(instr),
        }
        consumed += 1;
    }

    // Materialize live leftovers, in register order for determinism.
    let pending: Vec<(Reg, u64)> = {
        let mut v: Vec<(Reg, u64)> = state
            .known
            .iter()
            .filter(|(r, _)| !state.materialized.contains(**r) && live_at_resume.contains(**r))
            .map(|(&r, &v)| (r, v))
            .collect();
        v.sort_by_key(|(r, _)| r.index());
        v
    };
    for (r, v) in pending {
        materialize(r, v, &mut state.emitted);
    }

    FoldResult { emitted: state.emitted, consumed, folded: state.folded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::MemWidth;

    fn r(i: usize) -> Reg {
        Reg::from_index(i).unwrap()
    }

    #[test]
    fn materialize_sizes() {
        let mut out = Vec::new();
        materialize(r(1), 7, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        materialize(r(1), 0x12345, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        materialize(r(1), u64::MAX - 5, &mut out);
        assert_eq!(out.len(), 1, "negative-representable values fit one addi");
        out.clear();
        materialize(r(1), 0x1234_5678_9abc_def0, &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn pure_chain_folds_to_live_materializations() {
        // r2 known; chain r3 = r2>>3, r4 = r3*5, r5 = r4+1; only r5 live.
        let code = vec![
            Instruction::AluImm { op: AluOp::Srl, rd: r(3), rs: r(2), imm: 3 },
            Instruction::AluImm { op: AluOp::Mul, rd: r(4), rs: r(3), imm: 5 },
            Instruction::AluImm { op: AluOp::Add, rd: r(5), rs: r(4), imm: 1 },
        ];
        let mut live = RegSet::EMPTY;
        live.insert(r(5));
        let result = fold_region(&code, 0, r(2), 80, live);
        assert_eq!(result.consumed, 3);
        assert_eq!(result.folded, 3);
        // 80>>3 = 10; 10*5 = 50; 50+1 = 51 -> one addi r5, r0, 51.
        assert_eq!(
            result.emitted,
            vec![Instruction::AluImm { op: AluOp::Add, rd: r(5), rs: r(0), imm: 51 }]
        );
    }

    #[test]
    fn unknown_source_forces_emission_with_materialization() {
        // r3 = r2 + 4 folds; r5 = r3 + r9 (r9 unknown) must emit, first
        // materializing r3.
        let code = vec![
            Instruction::AluImm { op: AluOp::Add, rd: r(3), rs: r(2), imm: 4 },
            Instruction::Alu { op: AluOp::Add, rd: r(5), rs: r(3), rt: r(9) },
        ];
        let result = fold_region(&code, 0, r(2), 10, RegSet::EMPTY);
        assert_eq!(
            result.emitted,
            vec![
                Instruction::AluImm { op: AluOp::Add, rd: r(3), rs: r(0), imm: 14 },
                Instruction::Alu { op: AluOp::Add, rd: r(5), rs: r(3), rt: r(9) },
            ]
        );
        assert_eq!(result.folded, 1);
    }

    #[test]
    fn region_stops_at_control_transfer() {
        let code = vec![
            Instruction::AluImm { op: AluOp::Add, rd: r(3), rs: r(2), imm: 1 },
            Instruction::Jump { target: 0 },
            Instruction::AluImm { op: AluOp::Add, rd: r(4), rs: r(2), imm: 2 },
        ];
        let result = fold_region(&code, 0, r(2), 1, RegSet::EMPTY);
        assert_eq!(result.consumed, 1);
    }

    #[test]
    fn loads_and_stores_always_emit() {
        let code = vec![
            Instruction::Load { rd: r(3), base: r(2), offset: 0, width: MemWidth::D },
            Instruction::Store { rs: r(3), base: r(2), offset: 8, width: MemWidth::D },
        ];
        // The seed register was verified by the guard, so it already holds
        // its value at run time: no materialization needed before the load.
        let result = fold_region(&code, 0, r(2), 0x2000, RegSet::EMPTY);
        assert_eq!(result.emitted.len(), 2); // ld + st, no li
        assert_eq!(result.folded, 0);
        assert!(matches!(result.emitted[0], Instruction::Load { .. }));
    }

    #[test]
    fn dead_known_registers_are_not_materialized() {
        let code = vec![Instruction::AluImm { op: AluOp::Add, rd: r(3), rs: r(2), imm: 1 }];
        let result = fold_region(&code, 0, r(2), 5, RegSet::EMPTY);
        assert!(result.emitted.is_empty(), "r3 is dead: nothing to emit");
        let mut live = RegSet::EMPTY;
        live.insert(r(3));
        let result = fold_region(&code, 0, r(2), 5, live);
        assert_eq!(result.emitted.len(), 1);
    }

    #[test]
    fn emitted_write_invalidates_known_value() {
        // r3 folds to 6, then an emitted load overwrites r3, then r4 = r3+1
        // must be emitted (r3 no longer known).
        let code = vec![
            Instruction::AluImm { op: AluOp::Add, rd: r(3), rs: r(2), imm: 1 },
            Instruction::Load { rd: r(3), base: r(9), offset: 0, width: MemWidth::D },
            Instruction::AluImm { op: AluOp::Add, rd: r(4), rs: r(3), imm: 1 },
        ];
        let result = fold_region(&code, 0, r(2), 5, RegSet::EMPTY);
        assert!(matches!(result.emitted[0], Instruction::Load { .. }));
        assert!(matches!(result.emitted[1], Instruction::AluImm { rd, .. } if rd == r(4)));
    }

    #[test]
    fn fp_folding_matches_machine_semantics() {
        use vp_isa::FpOp;
        // r2 = bits of 2.0; r3 = r2 * r2 = 4.0 (folded); r3 live.
        let code = vec![Instruction::Fp { op: FpOp::FMul, rd: r(3), rs: r(2), rt: r(2) }];
        let mut live = RegSet::EMPTY;
        live.insert(r(3));
        let result = fold_region(&code, 0, r(2), 2.0f64.to_bits(), live);
        assert_eq!(result.folded, 1);
        // 4.0's bit pattern doesn't fit i16/u32 -> 6-instruction materialization.
        assert_eq!(result.emitted.len(), 6);
    }
}
