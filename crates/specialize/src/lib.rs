//! # vp-specialize — profile-guided code specialization
//!
//! The Value Profiling paper's end-to-end payoff (thesis Chapter X):
//! identify a *semi-invariant* value with the profiler, clone the code
//! that consumes it, constant-fold the clone against the dominant value,
//! and guard entry to the clone with a cheap run-time comparison.
//!
//! The transform here works on assembled [`vp_asm::Program`]s:
//!
//! * [`find_candidates`] — pick specializable loads from a value profile,
//! * [`specialize`] / [`specialize_all`] — build the guarded fast path
//!   (see [`transform`] for the trampoline layout),
//! * [`fold`] — the constant folder, backed by a real backward
//!   [`liveness`] analysis over the CFG so dead folded registers are never
//!   materialized,
//! * [`evaluate`] — measure the dynamic-instruction speedup and verify
//!   output equivalence,
//! * [`multiway`] — multi-way specialization on the top *k* TNV values
//!   (the reason the table keeps N values, not one),
//! * [`demo`] — the m88ksim-style kernel used by experiment E13.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use vp_core::{track::TrackerConfig, InstructionProfiler};
//! use vp_instrument::{Instrumenter, Selection};
//! use vp_sim::MachineConfig;
//! use vp_specialize::{demo, evaluate, find_candidates, specialize_all, CandidateOptions};
//!
//! let program = demo::program();
//! let input = demo::input(2_000, 0); // fully invariant configuration
//!
//! // 1. Profile.
//! let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
//! Instrumenter::new().select(Selection::LoadsOnly).run(
//!     &program,
//!     MachineConfig::new().input(input.clone()),
//!     10_000_000,
//!     &mut profiler,
//! )?;
//!
//! // 2. Specialize on what the profile found.
//! let candidates = find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
//! let specialized = specialize_all(&program, &candidates)?;
//!
//! // 3. Measure.
//! let report = evaluate(&program, &specialized, &input, 10_000_000)?;
//! assert!(report.equivalent);
//! assert!(report.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod demo;
pub mod eval;
pub mod fold;
pub mod liveness;
pub mod multiway;
pub mod pipeline;
pub mod transform;

pub use eval::{evaluate, evaluate_guarded, GuardStats, GuardedReport, SpeedupReport};
pub use liveness::{Liveness, RegSet};
pub use multiway::{specialize_multi, specialize_multi_all, MultiCandidate};
pub use pipeline::{
    optimize_program, plan_candidates, tracker_top_values, CandidatePlan, OptimizeOptions,
    ProgramOptimize, RejectReason, RejectedCandidate, SiteOutcome,
};
pub use transform::{
    estimate, find_candidates, specialize, specialize_all, specialize_all_sites, Candidate,
    CandidateOptions, FoldEstimate, GuardSite, SpecializeError, SCRATCH,
};
