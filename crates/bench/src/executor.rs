//! Process-level suite execution: a pool of `vprof worker` subprocesses,
//! each a crash domain of its own.
//!
//! The in-process suite runner fans workloads out across *threads*; this
//! module fans them out across *processes*, talking to each worker over a
//! length-prefixed, CRC-verified frame protocol ([`vp_instrument::frame`])
//! on its stdin/stdout:
//!
//! ```text
//! parent → worker   VPW1  run(name) …  exit
//! worker → parent   VPW1  ready  (result(record) | failure(json))* bye
//! ```
//!
//! A result frame's payload is exactly one checkpoint record (bit-exact
//! `f64::to_bits` floats — see `crate::checkpoint`), so a profile that
//! crossed a process boundary is indistinguishable from one computed in
//! process, and `--workers N` output is byte-identical to the in-process
//! path by construction.
//!
//! # Failure domains
//!
//! Anything that goes wrong with the *process* — SIGKILL, panic-abort, a
//! torn half-written frame, a CRC mismatch, a closed pipe — surfaces as
//! [`FailureKind::WorkerDeath`]: the pool reaps the corpse's exit status,
//! spawns a replacement with a fresh identity, and the failed assignment
//! flows through the ordinary retry → quarantine pipeline. A workload
//! that panics or times out *inside* a healthy worker comes back as a
//! failure frame carrying the same kind and message the in-process
//! runner would have produced, so those outcomes stay byte-identical
//! too. Worker indices are monotonic across restarts (`worker:0` dies,
//! `worker:2` replaces it), which is what lets
//! `VP_FAULTS_SCOPE=worker:0` kill one specific process exactly once.
//!
//! Hangs have two layers: a cooperative hang inside a workload is cut
//! loose by the *worker's own* deadline watchdog and reported as an
//! ordinary timeout failure frame; a worker that stops responding
//! entirely is hard-killed by the parent's reaper after a grace period
//! (`2 × deadline + 2s`, overridable via `VP_WORKER_GRACE_MS`) and
//! surfaces as a worker death.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vp_core::fault::{self, FaultAction};
use vp_core::FaultPlan;
use vp_instrument::frame::{self, FrameError, FrameReader};
use vp_instrument::{effective_jobs, FailureKind};
use vp_obs::recorder::Stopwatch;
use vp_obs::{CounterId, HistId, Json, Recorder};
use vp_workloads::{DataSet, Workload};

use crate::checkpoint;
use crate::suite::{SuiteRunner, WorkloadProfile};

/// Frame kinds, worker → parent.
pub const FRAME_READY: u32 = 1;
/// Result frame: payload is one checkpoint record.
pub const FRAME_RESULT: u32 = 2;
/// Failure frame: payload is `{name, failure_kind, error}`.
pub const FRAME_FAILURE: u32 = 3;
/// Orderly-shutdown acknowledgment.
pub const FRAME_BYE: u32 = 4;
/// Frame kinds, parent → worker: run one workload (payload = name).
pub const FRAME_RUN: u32 = 10;
/// Orderly shutdown request.
pub const FRAME_EXIT: u32 = 11;

/// Environment variable overriding the parent's hard-kill grace period
/// for unresponsive workers, in milliseconds.
pub const GRACE_ENV: &str = "VP_WORKER_GRACE_MS";

/// How a dead worker process ended, as reaped by the parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerExit {
    /// The worker's pool index (monotonic across restarts).
    pub worker: u64,
    /// Rendered wait status: `signal 9`, `signal 6`, `exit 1`, or
    /// `spawn failed` when the process never started.
    pub status: String,
}

/// Why one assignment handed to an executor failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Panic / timeout relayed from a healthy worker, or the death of
    /// the worker process itself.
    pub kind: FailureKind,
    /// Deterministic description (for relayed failures, byte-identical
    /// to the in-process runner's message).
    pub message: String,
    /// Exit details, present exactly when `kind` is
    /// [`FailureKind::WorkerDeath`].
    pub exit: Option<WorkerExit>,
}

/// Lifecycle counters of an executor, merged into suite fault counters
/// (and thence telemetry) when any worker died.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Worker processes successfully spawned.
    pub spawns: u64,
    /// Worker processes that died mid-assignment, plus spawn attempts
    /// that never produced a process.
    pub deaths: u64,
    /// Spawns that replaced a death.
    pub restarts: u64,
}

/// Something that can execute one workload per call on behalf of the
/// suite runner — the seam between the retry/quarantine loop and the
/// process pool (tests substitute an in-memory fake).
pub trait WorkerExecutor: Sync {
    /// Maximum concurrent assignments the executor can hold.
    fn slots(&self) -> usize;

    /// Tops capacity up for a round of `items` assignments. Called once
    /// per retry round, before any [`run`](WorkerExecutor::run).
    fn prepare(&self, items: usize);

    /// Runs one workload to completion somewhere, returning its full
    /// profile or the failure that stopped it.
    fn run(&self, workload: &str) -> Result<WorkloadProfile, WorkerFailure>;

    /// Lifecycle counters so far.
    fn counters(&self) -> WorkerCounters;

    /// Releases every held resource (kills what will not exit).
    fn shutdown(&self);
}

/// How to launch worker processes.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The `vprof` binary.
    pub bin: PathBuf,
    /// Arguments selecting the hidden `worker` subcommand plus every
    /// profiling flag the run needs (data set, mode, shards, deadline…).
    pub args: Vec<String>,
    /// Pool size — the process-level analogue of `--jobs`.
    pub workers: usize,
}

struct PoolWorker {
    index: u64,
    child: Child,
    stdin: ChildStdin,
    reader: FrameReader<ChildStdout>,
    greeted: bool,
}

#[derive(Default)]
struct PoolState {
    idle: Vec<PoolWorker>,
    live: usize,
    next_index: u64,
    spawns: u64,
    deaths: u64,
    restarts: u64,
    closed: bool,
}

fn status_str(status: &ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("signal {sig}");
        }
    }
    match status.code() {
        Some(code) => format!("exit {code}"),
        None => "unknown status".to_string(),
    }
}

/// The local-process [`WorkerExecutor`]: spawns `vprof worker` children,
/// assigns workloads over pipes, replaces the dead.
pub struct ProcessPool {
    spec: WorkerSpec,
    faults: Arc<FaultPlan>,
    state: Mutex<PoolState>,
    idle_cv: Condvar,
    inflight: Arc<Mutex<HashMap<u64, (Instant, u32)>>>,
    reaper_stop: Arc<AtomicBool>,
    reaper: Mutex<Option<std::thread::JoinHandle<()>>>,
    grace: Option<Duration>,
}

impl ProcessPool {
    /// A pool of up to `spec.workers` processes. `deadline` is the
    /// per-workload deadline the workers enforce themselves; it sizes
    /// the parent's hard-kill grace period for workers that stop
    /// responding entirely. The plan fires
    /// [`worker/spawn`](fault::WORKER_SPAWN_POINT) before every spawn.
    pub fn new(
        spec: WorkerSpec,
        faults: Arc<FaultPlan>,
        deadline: Option<Duration>,
    ) -> ProcessPool {
        let grace = match std::env::var(GRACE_ENV).ok().and_then(|v| v.parse::<u64>().ok()) {
            Some(ms) => Some(Duration::from_millis(ms)),
            None => deadline.map(|d| d * 2 + Duration::from_secs(2)),
        };
        let pool = ProcessPool {
            spec,
            faults,
            state: Mutex::new(PoolState::default()),
            idle_cv: Condvar::new(),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            reaper_stop: Arc::new(AtomicBool::new(false)),
            reaper: Mutex::new(None),
            grace,
        };
        if let Some(grace) = pool.grace {
            let inflight = Arc::clone(&pool.inflight);
            let stop = Arc::clone(&pool.reaper_stop);
            *pool.reaper.lock().unwrap() = Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    let overdue: Vec<u32> = inflight
                        .lock()
                        .unwrap()
                        .values()
                        .filter(|(since, _)| since.elapsed() > grace)
                        .map(|&(_, pid)| pid)
                        .collect();
                    for pid in overdue {
                        // std cannot signal an arbitrary pid; the child
                        // handle is owned by the assignment thread that
                        // is blocked reading from it. /bin/kill is
                        // universally present where this runs.
                        let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
                    }
                }
            }));
        }
        pool
    }

    fn spawn_locked(&self, state: &mut PoolState) -> Result<(), WorkerFailure> {
        let index = state.next_index;
        state.next_index += 1;
        let dead = |message: String| WorkerFailure {
            kind: FailureKind::WorkerDeath,
            message,
            exit: Some(WorkerExit { worker: index, status: "spawn failed".to_string() }),
        };
        if let Err(e) = self.faults.fire(fault::WORKER_SPAWN_POINT) {
            state.deaths += 1;
            return Err(dead(format!("worker {index} spawn: {e}")));
        }
        let mut child = match Command::new(&self.spec.bin)
            .args(&self.spec.args)
            .env(fault::SELF_ENV, format!("worker:{index}"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(child) => child,
            Err(e) => {
                state.deaths += 1;
                return Err(dead(format!("worker {index} spawn: {e}")));
            }
        };
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        state.spawns += 1;
        if state.deaths > state.restarts {
            state.restarts += 1;
        }
        state.live += 1;
        state.idle.push(PoolWorker {
            index,
            child,
            stdin,
            reader: FrameReader::new(stdout),
            greeted: false,
        });
        self.idle_cv.notify_one();
        Ok(())
    }

    // Takes an idle worker, waiting while every live worker is busy.
    // With the pool empty (every worker dead and its replacement spawn
    // failed), attempts one emergency spawn so waiters fail loudly
    // instead of blocking forever.
    fn acquire(&self) -> Result<PoolWorker, WorkerFailure> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(w) = state.idle.pop() {
                return Ok(w);
            }
            if state.live == 0 {
                self.spawn_locked(&mut state)?;
                continue;
            }
            state = self.idle_cv.wait(state).unwrap();
        }
    }

    fn release(&self, worker: PoolWorker) {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            let mut worker = worker;
            let _ = worker.child.kill();
            let _ = worker.child.wait();
            state.live -= 1;
            return;
        }
        state.idle.push(worker);
        drop(state);
        self.idle_cv.notify_one();
    }

    // Reaps a dead (or insane) worker: kill, collect the wait status,
    // count the death, and spawn a replacement so the pool never shrinks
    // below demand. Returns the failure for the assignment in flight.
    fn bury(&self, mut worker: PoolWorker, detail: &str) -> WorkerFailure {
        let _ = worker.child.kill();
        let status = worker
            .child
            .wait()
            .map(|s| status_str(&s))
            .unwrap_or_else(|e| format!("wait failed: {e}"));
        let failure = WorkerFailure {
            kind: FailureKind::WorkerDeath,
            message: format!("worker {} died ({status}): {detail}", worker.index),
            exit: Some(WorkerExit { worker: worker.index, status }),
        };
        let mut state = self.state.lock().unwrap();
        state.live -= 1;
        state.deaths += 1;
        if !state.closed {
            // Replace the capacity immediately (and deterministically:
            // one death, one restart). A failed replacement spawn was
            // already counted by spawn_locked; waiters will retry.
            let _ = self.spawn_locked(&mut state);
        }
        drop(state);
        self.idle_cv.notify_all();
        failure
    }

    fn run_on(&self, worker: &mut PoolWorker, workload: &str) -> Result<RunReply, FrameError> {
        if !worker.greeted {
            worker.reader.expect_magic()?;
            let ready = worker.reader.read_frame()?;
            if ready.kind != FRAME_READY {
                return Err(FrameError::Corrupt(format!(
                    "expected ready frame, got kind {}",
                    ready.kind
                )));
            }
            frame::write_magic(&mut worker.stdin).map_err(FrameError::Io)?;
            worker.greeted = true;
        }
        frame::write_frame(&mut worker.stdin, FRAME_RUN, workload.as_bytes())
            .map_err(FrameError::Io)?;
        let reply = {
            let pid = worker.child.id();
            let _guard = InflightGuard::enter(&self.inflight, worker.index, pid);
            worker.reader.read_frame()?
        };
        match reply.kind {
            FRAME_RESULT => {
                let text = String::from_utf8_lossy(&reply.payload);
                let rec = Json::parse(&text)
                    .map_err(|e| FrameError::Corrupt(format!("result payload: {e}")))?;
                let profile = checkpoint::profile_from_record(&rec)
                    .map_err(|e| FrameError::Corrupt(format!("result payload: {e}")))?;
                if profile.name != workload {
                    return Err(FrameError::Corrupt(format!(
                        "result for `{}`, expected `{workload}`",
                        profile.name
                    )));
                }
                Ok(RunReply::Profile(Box::new(profile)))
            }
            FRAME_FAILURE => {
                let text = String::from_utf8_lossy(&reply.payload);
                let rec = Json::parse(&text)
                    .map_err(|e| FrameError::Corrupt(format!("failure payload: {e}")))?;
                let kind = match rec.get("failure_kind").and_then(Json::as_str) {
                    Some("timeout") => FailureKind::Timeout,
                    Some("panic") => FailureKind::Panic,
                    other => {
                        return Err(FrameError::Corrupt(format!("failure payload kind {other:?}")))
                    }
                };
                let message = rec
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure")
                    .to_string();
                Ok(RunReply::Relayed(kind, message))
            }
            other => Err(FrameError::Corrupt(format!("unexpected frame kind {other}"))),
        }
    }
}

// What a healthy worker said back to a run request.
enum RunReply {
    Profile(Box<WorkloadProfile>),
    // A workload panic/timeout inside the worker, with the worker's own
    // message — byte-identical to the in-process failure.
    Relayed(FailureKind, String),
}

// RAII registration of an in-flight assignment for the reaper.
struct InflightGuard<'a> {
    inflight: &'a Mutex<HashMap<u64, (Instant, u32)>>,
    index: u64,
}

impl<'a> InflightGuard<'a> {
    fn enter(
        inflight: &'a Mutex<HashMap<u64, (Instant, u32)>>,
        index: u64,
        pid: u32,
    ) -> InflightGuard<'a> {
        inflight.lock().unwrap().insert(index, (Instant::now(), pid));
        InflightGuard { inflight, index }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.lock().unwrap().remove(&self.index);
    }
}

impl WorkerExecutor for ProcessPool {
    fn slots(&self) -> usize {
        self.spec.workers
    }

    fn prepare(&self, items: usize) {
        let want = effective_jobs(self.spec.workers).min(items);
        let mut state = self.state.lock().unwrap();
        while state.live < want {
            if self.spawn_locked(&mut state).is_err() {
                // Degraded capacity; the round still runs on whatever
                // spawned. A totally empty pool fails assignments in
                // acquire, loudly.
                break;
            }
        }
    }

    fn run(&self, workload: &str) -> Result<WorkloadProfile, WorkerFailure> {
        let mut worker = self.acquire()?;
        match self.run_on(&mut worker, workload) {
            Ok(RunReply::Profile(profile)) => {
                self.release(worker);
                Ok(*profile)
            }
            Ok(RunReply::Relayed(kind, message)) => {
                // The worker is healthy — the *workload* failed, with
                // the same kind and message the in-process path yields.
                self.release(worker);
                Err(WorkerFailure { kind, message, exit: None })
            }
            // A response was expected, so a clean close is as dead as a
            // torn one — the worker exited between frames.
            Err(FrameError::PeerClosed) => {
                Err(self.bury(worker, "worker closed its pipe mid-assignment"))
            }
            Err(FrameError::Torn(detail)) => {
                Err(self.bury(worker, &format!("torn frame ({detail})")))
            }
            Err(FrameError::Corrupt(detail)) => Err(self.bury(worker, &detail)),
            Err(FrameError::Io(e)) => Err(self.bury(worker, &format!("pipe error: {e}"))),
        }
    }

    fn counters(&self) -> WorkerCounters {
        let state = self.state.lock().unwrap();
        WorkerCounters { spawns: state.spawns, deaths: state.deaths, restarts: state.restarts }
    }

    fn shutdown(&self) {
        let workers: Vec<PoolWorker> = {
            let mut state = self.state.lock().unwrap();
            if state.closed {
                return;
            }
            state.closed = true;
            std::mem::take(&mut state.idle)
        };
        for mut w in workers {
            // Best-effort orderly exit; a worker that ignores it (or
            // hangs in worker/exit) is killed after a short patience.
            // A worker that never got an assignment is still waiting for
            // the magic greeting — send it so EXIT parses as a frame.
            if !w.greeted {
                let _ = frame::write_magic(&mut w.stdin);
            }
            let _ = frame::write_frame(&mut w.stdin, FRAME_EXIT, b"");
            drop(w.stdin);
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match w.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => break,
                }
            }
            self.state.lock().unwrap().live -= 1;
        }
        self.reaper_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.reaper.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Dispatches one retry round of workloads across an executor, mirroring
/// the in-process parallel map's observation discipline *exactly* — the
/// same thread count, the same per-item `ItemNs`/`WorkerItems`
/// observations (failures included), the same one busy/queue-wait pair
/// per thread — so a clean `--workers N` run's masked telemetry is
/// byte-identical to in-process `--jobs N`.
pub(crate) fn dispatch_round<F>(
    workers: usize,
    items: &[&Workload],
    item_fn: F,
    rec: &dyn Recorder,
) -> Vec<Result<WorkloadProfile, WorkerFailure>>
where
    F: Fn(&Workload) -> Result<WorkloadProfile, WorkerFailure> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let run_one = |index: usize| -> Result<WorkloadProfile, WorkerFailure> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| item_fn(items[index]))) {
            Ok(out) => out,
            // A parent-side panic (checkpoint append failure) classifies
            // like the in-process map would classify it.
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic with non-string payload".to_string()
                };
                Err(WorkerFailure { kind: FailureKind::Panic, message, exit: None })
            }
        }
    };
    let threads = effective_jobs(workers).min(items.len());
    if threads <= 1 {
        if !rec.enabled() {
            return (0..items.len()).map(run_one).collect();
        }
        let wall = Stopwatch::start();
        let mut busy = 0u64;
        let out = (0..items.len())
            .map(|index| {
                let item_clock = Stopwatch::start();
                let result = run_one(index);
                let item_ns = item_clock.elapsed_ns();
                busy += item_ns;
                rec.observe(HistId::ItemNs, item_ns);
                rec.add(CounterId::WorkerItems, 1);
                result
            })
            .collect();
        rec.observe(HistId::WorkerBusyNs, busy);
        rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<WorkloadProfile, WorkerFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let enabled = rec.enabled();
                let wall = enabled.then(Stopwatch::start);
                let mut busy = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if enabled {
                        let item_clock = Stopwatch::start();
                        let out = run_one(i);
                        let item_ns = item_clock.elapsed_ns();
                        busy += item_ns;
                        rec.observe(HistId::ItemNs, item_ns);
                        rec.add(CounterId::WorkerItems, 1);
                        *slots[i].lock().unwrap() = Some(out);
                    } else {
                        let out = run_one(i);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                }
                if let Some(wall) = wall {
                    rec.observe(HistId::WorkerBusyNs, busy);
                    rec.observe(HistId::WorkerQueueWaitNs, wall.elapsed_ns().saturating_sub(busy));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("thread filled every claimed slot"))
        .collect()
}

// Writes one result frame the fault-aware way: a `kill` armed on
// worker/frame writes *half* the frame, flushes, and aborts — the
// deterministic model of a SIGKILL mid-write, leaving a genuinely torn
// tail for the parent to classify.
fn write_result_frame<W: Write>(
    out: &mut W,
    plan: &FaultPlan,
    kind: u32,
    payload: &[u8],
) -> io::Result<()> {
    match plan.check(fault::WORKER_FRAME_POINT) {
        None | Some(FaultAction::Slow) => {}
        Some(FaultAction::Kill) => {
            let bytes = frame::encode_frame(kind, payload);
            let _ = out.write_all(&bytes[..bytes.len() / 2]);
            let _ = out.flush();
            std::process::abort();
        }
        Some(FaultAction::Panic) => panic!("fault injected: {}", fault::WORKER_FRAME_POINT),
        // A worker has no socket to drop; treat a disconnect like an
        // injected write error so the plan never passes silently.
        Some(FaultAction::Err) | Some(FaultAction::Disconnect) => {
            return Err(io::Error::other(format!("fault injected: {}", fault::WORKER_FRAME_POINT)));
        }
        Some(FaultAction::Hang) => loop {
            // Only the parent's hard-kill reaper ends this.
            std::thread::sleep(Duration::from_millis(50));
        },
    }
    frame::write_frame(out, kind, payload)
}

/// The worker side of the protocol: serve assignments from stdin until
/// an exit frame (or the parent's death) ends the session. `runner` must
/// be configured exactly like the parent's (mode, shards, budget,
/// deadline, baseline) with [`crate::suite::RetryPolicy::none`] — the
/// parent owns retries — and `plan` is the worker's own scope-filtered
/// fault plan.
pub fn serve_worker(runner: &SuiteRunner, ds: DataSet, plan: &FaultPlan) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_worker_on(runner, ds, plan, stdin.lock(), stdout.lock())
}

fn serve_worker_on<R: Read, W: Write>(
    runner: &SuiteRunner,
    ds: DataSet,
    plan: &FaultPlan,
    input: R,
    mut out: W,
) -> io::Result<()> {
    let mut reader = FrameReader::new(input);
    frame::write_magic(&mut out)?;
    frame::write_frame(&mut out, FRAME_READY, b"")?;
    reader.expect_magic().map_err(|e| io::Error::other(e.to_string()))?;
    loop {
        let request = match reader.read_frame() {
            Ok(f) => f,
            // Parent gone: a clean close between frames or a tear from a
            // crash mid-write both mean nothing is left to serve.
            Err(FrameError::PeerClosed) | Err(FrameError::Torn(_)) => return Ok(()),
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        match request.kind {
            FRAME_RUN => {
                let name = String::from_utf8_lossy(&request.payload).to_string();
                let reply = match Workload::by_name(&name) {
                    None => failure_payload(&name, "panic", &format!("unknown workload `{name}`")),
                    Some(w) => {
                        let outcome = runner.try_run_workloads(std::slice::from_ref(&w), ds);
                        match outcome.profile.workloads.into_iter().next() {
                            Some(profile) => {
                                let payload = checkpoint::checkpoint_record(&profile).render();
                                write_result_frame(
                                    &mut out,
                                    plan,
                                    FRAME_RESULT,
                                    payload.as_bytes(),
                                )?;
                                continue;
                            }
                            None => {
                                let f = &outcome.failures[0];
                                failure_payload(&name, f.kind_str(), &f.error)
                            }
                        }
                    }
                };
                frame::write_frame(&mut out, FRAME_FAILURE, reply.as_bytes())?;
            }
            FRAME_EXIT => {
                plan.fire(fault::WORKER_EXIT_POINT)?;
                frame::write_frame(&mut out, FRAME_BYE, b"")?;
                return Ok(());
            }
            other => {
                return Err(io::Error::other(format!("unexpected request frame kind {other}")))
            }
        }
    }
}

fn failure_payload(name: &str, kind: &str, error: &str) -> String {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("failure_kind".to_string(), Json::Str(kind.to_string())),
        ("error".to_string(), Json::Str(error.to_string())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::RetryPolicy;
    use std::sync::atomic::AtomicU64;

    // A loopback "process": the worker side served over in-memory pipes,
    // no subprocess involved — proves the protocol round-trips profiles
    // bit-exactly and failures verbatim.
    fn serve_to_bytes(requests: &[(u32, &[u8])], plan: &FaultPlan) -> (Vec<u8>, io::Result<()>) {
        let mut input = frame::FRAME_MAGIC.to_vec();
        for &(kind, payload) in requests {
            input.extend_from_slice(&frame::encode_frame(kind, payload));
        }
        let runner = SuiteRunner::new().retry(RetryPolicy::none());
        let mut out = Vec::new();
        let result = serve_worker_on(&runner, DataSet::Test, plan, input.as_slice(), &mut out);
        (out, result)
    }

    fn read_reply_frames(bytes: &[u8]) -> Vec<frame::Frame> {
        let mut reader = FrameReader::new(bytes);
        reader.expect_magic().unwrap();
        let ready = reader.read_frame().unwrap();
        assert_eq!(ready.kind, FRAME_READY);
        let mut frames = Vec::new();
        while let Ok(f) = reader.read_frame() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn loopback_result_frame_is_bit_exact() {
        let reference = SuiteRunner::new()
            .run_workloads(&vp_workloads::suite()[..1], DataSet::Test)
            .workloads
            .remove(0);
        let (bytes, result) = serve_to_bytes(
            &[(FRAME_RUN, reference.name.as_bytes()), (FRAME_EXIT, b"")],
            &FaultPlan::empty(),
        );
        result.unwrap();
        let frames = read_reply_frames(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, FRAME_RESULT);
        assert_eq!(frames[1].kind, FRAME_BYE);
        let rec = Json::parse(&String::from_utf8_lossy(&frames[0].payload)).unwrap();
        let roundtripped = checkpoint::profile_from_record(&rec).unwrap();
        assert_eq!(roundtripped.name, reference.name);
        assert_eq!(roundtripped.metrics, reference.metrics);
        assert_eq!(roundtripped.instructions, reference.instructions);
        assert_eq!(roundtripped.events, reference.events);
        assert_eq!(
            roundtripped.profile_fraction.to_bits(),
            reference.profile_fraction.to_bits(),
            "floats cross the wire bit-exactly"
        );
    }

    #[test]
    fn loopback_relays_workload_panic_verbatim() {
        let plan = FaultPlan::parse("panic:workload/gcc").unwrap();
        let runner = SuiteRunner::new()
            .retry(RetryPolicy::none())
            .faults(Arc::new(FaultPlan::parse("panic:workload/gcc").unwrap()));
        let mut input = frame::FRAME_MAGIC.to_vec();
        input.extend_from_slice(&frame::encode_frame(FRAME_RUN, b"gcc"));
        input.extend_from_slice(&frame::encode_frame(FRAME_EXIT, b""));
        let mut out = Vec::new();
        serve_worker_on(&runner, DataSet::Test, &plan, input.as_slice(), &mut out).unwrap();
        let frames = read_reply_frames(&out);
        assert_eq!(frames[0].kind, FRAME_FAILURE);
        let rec = Json::parse(&String::from_utf8_lossy(&frames[0].payload)).unwrap();
        assert_eq!(rec.get("name").and_then(Json::as_str), Some("gcc"));
        assert_eq!(rec.get("failure_kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(
            rec.get("error").and_then(Json::as_str),
            Some("fault injected: workload/gcc"),
            "the in-process message crosses the wire byte-identically"
        );
    }

    #[test]
    fn loopback_unknown_workload_fails_without_dying() {
        let (bytes, result) =
            serve_to_bytes(&[(FRAME_RUN, b"no-such-load"), (FRAME_EXIT, b"")], &FaultPlan::empty());
        result.unwrap();
        let frames = read_reply_frames(&bytes);
        assert_eq!(frames[0].kind, FRAME_FAILURE);
        assert_eq!(frames[1].kind, FRAME_BYE);
    }

    #[test]
    fn kill_on_frame_point_leaves_a_genuinely_torn_frame() {
        // Can't abort the test process — exercise the torn-write shape
        // directly: half of an encoded frame must classify as Torn.
        let payload = failure_payload("li", "panic", "x");
        let bytes = frame::encode_frame(FRAME_RESULT, payload.as_bytes());
        let mut stream = frame::FRAME_MAGIC.to_vec();
        stream.extend_from_slice(&bytes[..bytes.len() / 2]);
        let mut reader = FrameReader::new(stream.as_slice());
        reader.expect_magic().unwrap();
        assert!(matches!(reader.read_frame(), Err(FrameError::Torn(_))));
    }

    // An in-memory executor whose first `fail_first` assignments die —
    // drives the retry loop's WorkerDeath path without real processes.
    struct FlakyExecutor {
        fail_first: u64,
        calls: AtomicU64,
        runner: SuiteRunner,
    }

    impl WorkerExecutor for FlakyExecutor {
        fn slots(&self) -> usize {
            2
        }
        fn prepare(&self, _items: usize) {}
        fn run(&self, workload: &str) -> Result<WorkloadProfile, WorkerFailure> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.fail_first {
                return Err(WorkerFailure {
                    kind: FailureKind::WorkerDeath,
                    message: "worker 0 died (signal 9): torn frame".to_string(),
                    exit: Some(WorkerExit { worker: 0, status: "signal 9".to_string() }),
                });
            }
            let w = Workload::by_name(workload).unwrap();
            Ok(self
                .runner
                .run_workloads(std::slice::from_ref(&w), DataSet::Test)
                .workloads
                .remove(0))
        }
        fn counters(&self) -> WorkerCounters {
            WorkerCounters {
                spawns: self.fail_first.saturating_add(2),
                deaths: self.fail_first,
                restarts: self.fail_first,
            }
        }
        fn shutdown(&self) {}
    }

    #[test]
    fn worker_death_is_retried_and_counted() {
        let workloads = &vp_workloads::suite()[..3];
        let clean = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
        let exec =
            FlakyExecutor { fail_first: 1, calls: AtomicU64::new(0), runner: SuiteRunner::new() };
        let outcome = SuiteRunner::new()
            .retry(RetryPolicy { max_retries: 2, backoff_base_ms: 0, backoff_cap_ms: 0 })
            .try_run_executor(workloads, &exec);
        assert!(outcome.is_clean(), "{:?}", outcome.failures);
        for (a, b) in outcome.profile.workloads.iter().zip(&clean.workloads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.metrics, b.metrics);
        }
        assert_eq!(outcome.faults.get(CounterId::WorkerDeaths), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkerRestarts), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkerSpawns), 3);
        assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 0);
    }

    #[test]
    fn persistent_worker_death_quarantines_with_exit_details() {
        let workloads = &vp_workloads::suite()[..2];
        let exec = FlakyExecutor {
            fail_first: u64::MAX,
            calls: AtomicU64::new(0),
            runner: SuiteRunner::new(),
        };
        let outcome =
            SuiteRunner::new().retry(RetryPolicy::none()).try_run_executor(workloads, &exec);
        assert_eq!(outcome.failures.len(), 2);
        for f in &outcome.failures {
            assert_eq!(f.kind, FailureKind::WorkerDeath);
            assert_eq!(f.kind_str(), "worker-death");
            let exit = f.worker.as_ref().expect("death carries exit details");
            assert_eq!(exit.status, "signal 9");
        }
        let table = outcome.render_failures();
        assert!(table.contains("worker-death(w0:signal 9)"), "{table}");
    }
}
