//! Checkpoint/resume for suite runs: each completed [`WorkloadProfile`]
//! is persisted as one JSONL record the moment it finishes, so a run
//! killed part-way can resume without re-profiling the workloads already
//! done — and produce output identical to an uninterrupted run.
//!
//! Identical means *bit*-identical: the TSV profile format rounds floats
//! to nine decimals, which is fine for humans but would make a resumed
//! run drift from an uninterrupted one. Checkpoint records therefore
//! store every `f64` as its IEEE-754 bit pattern (a JSON integer via
//! [`f64::to_bits`]), so a restored profile is indistinguishable from the
//! freshly computed one. The execution-weighted [`Aggregate`] is
//! recomputed from the restored metrics rather than stored.
//!
//! Appends go through [`vp_core::durable::append_jsonl_with`], and loads
//! use the lenient JSONL parser, so a record torn by a crash mid-append
//! is dropped (that workload simply re-runs) instead of poisoning the
//! checkpoint.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vp_core::{aggregate, durable, EntityMetrics, FaultPlan, GovernorStats, PhaseStats};
use vp_obs::telemetry::{parse_jsonl_lenient, record, to_jsonl};
use vp_obs::{Counts, Json};

use crate::suite::WorkloadProfile;

/// Record kind used for checkpoint entries.
const KIND: &str = "checkpoint";

/// Fault point fired after each durably appended checkpoint record — the
/// hook the kill-and-resume tests use to die at an exact point.
pub const APPENDED_FAULT_POINT: &str = "checkpoint/appended";

fn bits(v: f64) -> Json {
    Json::U64(v.to_bits())
}

fn opt_bits(v: Option<f64>) -> Json {
    v.map_or(Json::Null, bits)
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::U64)
}

fn metric_to_json(m: &EntityMetrics) -> Json {
    Json::Arr(vec![
        Json::U64(m.id),
        Json::U64(m.executions),
        bits(m.lvp),
        bits(m.inv_top1),
        bits(m.inv_topn),
        opt_bits(m.inv_all1),
        opt_bits(m.inv_alln),
        bits(m.pct_zero),
        opt_u64(m.distinct),
        opt_u64(m.top_value),
    ])
}

fn from_bits(j: &Json) -> Option<f64> {
    j.as_u64().map(f64::from_bits)
}

fn opt_from_bits(j: &Json) -> Result<Option<f64>, String> {
    match j {
        Json::Null => Ok(None),
        other => from_bits(other).map(Some).ok_or_else(|| "bad float bits".to_string()),
    }
}

fn opt_from_u64(j: &Json) -> Result<Option<u64>, String> {
    match j {
        Json::Null => Ok(None),
        other => other.as_u64().map(Some).ok_or_else(|| "bad integer".to_string()),
    }
}

fn metric_from_json(j: &Json) -> Result<EntityMetrics, String> {
    let Json::Arr(v) = j else { return Err("metric is not an array".to_string()) };
    if v.len() != 10 {
        return Err(format!("metric has {} fields, expected 10", v.len()));
    }
    let u = |i: usize| v[i].as_u64().ok_or_else(|| format!("bad integer in field {i}"));
    let f = |i: usize| from_bits(&v[i]).ok_or_else(|| format!("bad float bits in field {i}"));
    Ok(EntityMetrics {
        id: u(0)?,
        executions: u(1)?,
        lvp: f(2)?,
        inv_top1: f(3)?,
        inv_topn: f(4)?,
        inv_all1: opt_from_bits(&v[5])?,
        inv_alln: opt_from_bits(&v[6])?,
        pct_zero: f(7)?,
        distinct: opt_from_u64(&v[8])?,
        top_value: opt_from_u64(&v[9])?,
    })
}

/// Serializes one finished workload as a checkpoint record. The governor
/// field is emitted only on governed runs, so ungoverned checkpoint files
/// stay byte-identical to the pre-governor format.
///
/// Crate-visible because this is also the worker protocol's result-frame
/// payload: a `vprof worker` ships each finished profile as exactly this
/// record, so the parent restores it with the same bit-exact float
/// handling checkpoint resume uses.
pub(crate) fn checkpoint_record(profile: &WorkloadProfile) -> Json {
    let mut fields = vec![
        ("profile_fraction", bits(profile.profile_fraction)),
        ("instructions", Json::U64(profile.instructions)),
        ("wall_ns", Json::U64(profile.wall_ns)),
        ("baseline_wall_ns", opt_u64(profile.baseline_wall_ns)),
        ("events", profile.events.to_json()),
        ("metrics", Json::Arr(profile.metrics.iter().map(metric_to_json).collect())),
    ];
    if let Some(gov) = &profile.governor {
        fields.push((
            "governor",
            Json::Arr(vec![
                Json::U64(gov.bytes_peak),
                Json::U64(gov.entities_degraded),
                Json::U64(gov.entities_dropped),
                Json::U64(gov.observations_dropped),
            ]),
        ));
    }
    if let Some(ph) = &profile.phase {
        fields.push((
            "phase",
            Json::Arr(vec![
                Json::U64(ph.windows),
                Json::U64(ph.shifts_detected),
                Json::U64(ph.rearms),
                Json::U64(ph.rearms_denied),
            ]),
        ));
    }
    record(KIND, profile.name, fields)
}

/// Everything a checkpoint record stores about one workload — the name is
/// re-attached from the live [`Workload`](vp_workloads::Workload) at
/// restore time (profiles carry `&'static str` names).
#[derive(Debug, Clone)]
struct Restored {
    metrics: Vec<EntityMetrics>,
    profile_fraction: f64,
    instructions: u64,
    events: Counts,
    wall_ns: u64,
    baseline_wall_ns: Option<u64>,
    governor: Option<GovernorStats>,
    phase: Option<PhaseStats>,
}

fn governor_from_json(j: &Json) -> Result<GovernorStats, String> {
    let Json::Arr(v) = j else { return Err("governor is not an array".to_string()) };
    if v.len() != 4 {
        return Err(format!("governor has {} fields, expected 4", v.len()));
    }
    let u = |i: usize| v[i].as_u64().ok_or_else(|| format!("bad integer in governor field {i}"));
    Ok(GovernorStats {
        bytes_peak: u(0)?,
        entities_degraded: u(1)?,
        entities_dropped: u(2)?,
        observations_dropped: u(3)?,
    })
}

fn phase_from_json(j: &Json) -> Result<PhaseStats, String> {
    let Json::Arr(v) = j else { return Err("phase is not an array".to_string()) };
    if v.len() != 4 {
        return Err(format!("phase has {} fields, expected 4", v.len()));
    }
    let u = |i: usize| v[i].as_u64().ok_or_else(|| format!("bad integer in phase field {i}"));
    Ok(PhaseStats { windows: u(0)?, shifts_detected: u(1)?, rearms: u(2)?, rearms_denied: u(3)? })
}

/// Rebuilds a full [`WorkloadProfile`] from one serialized record —
/// the deserializing half of the worker result frame. The name must
/// match a known workload (profiles carry `&'static str` names).
pub(crate) fn profile_from_record(rec: &Json) -> Result<WorkloadProfile, String> {
    let (name, r) = parse_checkpoint(rec)?;
    let w = vp_workloads::Workload::by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}` in result record"))?;
    Ok(WorkloadProfile {
        name: w.name(),
        aggregate: aggregate(&r.metrics),
        metrics: r.metrics,
        profile_fraction: r.profile_fraction,
        instructions: r.instructions,
        events: r.events,
        wall_ns: r.wall_ns,
        baseline_wall_ns: r.baseline_wall_ns,
        governor: r.governor,
        phase: r.phase,
    })
}

fn parse_checkpoint(rec: &Json) -> Result<(String, Restored), String> {
    let name = rec
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| "checkpoint record without name".to_string())?
        .to_string();
    let field = |key: &str| rec.get(key).ok_or_else(|| format!("{name}: missing {key}"));
    let metrics = match field("metrics")? {
        Json::Arr(items) => items
            .iter()
            .map(metric_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("{name}: {e}"))?,
        _ => return Err(format!("{name}: metrics is not an array")),
    };
    let restored = Restored {
        metrics,
        profile_fraction: from_bits(field("profile_fraction")?)
            .ok_or_else(|| format!("{name}: bad profile_fraction"))?,
        instructions: field("instructions")?
            .as_u64()
            .ok_or_else(|| format!("{name}: bad instructions"))?,
        events: Counts::from_json(field("events")?),
        wall_ns: field("wall_ns")?.as_u64().ok_or_else(|| format!("{name}: bad wall_ns"))?,
        baseline_wall_ns: opt_from_u64(field("baseline_wall_ns")?)
            .map_err(|e| format!("{name}: {e}"))?,
        governor: rec
            .get("governor")
            .map(governor_from_json)
            .transpose()
            .map_err(|e| format!("{name}: {e}"))?,
        phase: rec
            .get("phase")
            .map(phase_from_json)
            .transpose()
            .map_err(|e| format!("{name}: {e}"))?,
    };
    Ok((name, restored))
}

/// A checkpoint file being written to (and, on resume, read from).
///
/// Appends are serialized through a mutex, so workloads finishing
/// concurrently on different workers each land as one complete record.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    restored: HashMap<String, Restored>,
    append: Mutex<()>,
}

/// What [`Checkpoint::resume`] recovered from an existing file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Workloads restored (completed in the interrupted run).
    pub restored: usize,
    /// `Some(reason)` when a torn final record was dropped.
    pub dropped_tail: Option<String>,
}

impl Checkpoint {
    /// Starts a fresh checkpoint at `path`, discarding any existing file.
    pub fn create(path: &Path) -> io::Result<Checkpoint> {
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            restored: HashMap::new(),
            append: Mutex::new(()),
        })
    }

    /// Opens `path` for resuming: already-checkpointed workloads are
    /// restored and skipped by the runner; new completions keep appending
    /// to the same file. A missing file resumes from nothing. A torn
    /// final record (crash mid-append) is dropped, not an error.
    pub fn resume(path: &Path) -> io::Result<(Checkpoint, ResumeSummary)> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let parsed = parse_jsonl_lenient(&text).map_err(io::Error::other)?;
        let mut restored = HashMap::new();
        for rec in &parsed.records {
            if rec.get("kind").and_then(Json::as_str) != Some(KIND) {
                continue;
            }
            let (name, data) = parse_checkpoint(rec).map_err(io::Error::other)?;
            restored.insert(name, data);
        }
        let summary = ResumeSummary { restored: restored.len(), dropped_tail: parsed.dropped_tail };
        let checkpoint = Checkpoint { path: path.to_path_buf(), restored, append: Mutex::new(()) };
        Ok((checkpoint, summary))
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of workloads restored from the file at open time.
    pub fn restored_count(&self) -> usize {
        self.restored.len()
    }

    /// The restored profile for `name`, if the interrupted run completed
    /// it. The aggregate is recomputed from the restored metrics.
    pub fn restored(&self, name: &'static str) -> Option<WorkloadProfile> {
        let r = self.restored.get(name)?;
        Some(WorkloadProfile {
            name,
            aggregate: aggregate(&r.metrics),
            metrics: r.metrics.clone(),
            profile_fraction: r.profile_fraction,
            instructions: r.instructions,
            events: r.events,
            wall_ns: r.wall_ns,
            baseline_wall_ns: r.baseline_wall_ns,
            governor: r.governor,
            phase: r.phase,
        })
    }

    /// Durably appends one finished workload, then fires the
    /// [`APPENDED_FAULT_POINT`] hook (where the kill-and-resume tests
    /// abort the process).
    pub fn record(&self, plan: &FaultPlan, profile: &WorkloadProfile) -> io::Result<()> {
        let line = to_jsonl(&[checkpoint_record(profile)]);
        let _guard = self.append.lock().unwrap();
        durable::append_jsonl_with(plan, &self.path, &line)?;
        plan.fire(APPENDED_FAULT_POINT)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteRunner;
    use vp_workloads::{suite, DataSet};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vp_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn profile_round_trips_bit_exactly() {
        let path = tmp("round_trip.jsonl");
        let profile = SuiteRunner::new().run_workloads(&suite()[..2], DataSet::Test);
        let checkpoint = Checkpoint::create(&path).unwrap();
        let plan = FaultPlan::empty();
        for w in &profile.workloads {
            checkpoint.record(&plan, w).unwrap();
        }
        let (resumed, summary) = Checkpoint::resume(&path).unwrap();
        assert_eq!(summary, ResumeSummary { restored: 2, dropped_tail: None });
        for w in &profile.workloads {
            let r = resumed.restored(w.name).unwrap();
            assert_eq!(r.metrics, w.metrics, "{}", w.name);
            assert_eq!(r.profile_fraction.to_bits(), w.profile_fraction.to_bits());
            assert_eq!(r.instructions, w.instructions);
            assert_eq!(r.events, w.events);
            assert_eq!(r.wall_ns, w.wall_ns);
            assert_eq!(r.aggregate, w.aggregate, "aggregate recomputed identically");
        }
        assert!(resumed.restored("no_such_workload").is_none());
    }

    #[test]
    fn adaptive_phase_stats_round_trip() {
        use crate::suite::ProfileMode;
        use vp_core::{ConvergentConfig, PhaseBudget};
        let path = tmp("adaptive_round_trip.jsonl");
        let budget = PhaseBudget { max_rearms: 4, window: 256 };
        let profile = SuiteRunner::new()
            .mode(ProfileMode::Adaptive(ConvergentConfig::default(), budget))
            .run_workloads(&suite()[..2], DataSet::Test);
        let checkpoint = Checkpoint::create(&path).unwrap();
        let plan = FaultPlan::empty();
        for w in &profile.workloads {
            assert!(w.phase.is_some());
            checkpoint.record(&plan, w).unwrap();
        }
        let (resumed, _) = Checkpoint::resume(&path).unwrap();
        for w in &profile.workloads {
            let r = resumed.restored(w.name).unwrap();
            assert_eq!(r.phase, w.phase, "{}", w.name);
            assert_eq!(r.metrics, w.metrics, "{}", w.name);
        }
    }

    #[test]
    fn torn_final_record_is_dropped_on_resume() {
        let path = tmp("torn.jsonl");
        let profile = SuiteRunner::new().run_workloads(&suite()[..2], DataSet::Test);
        let checkpoint = Checkpoint::create(&path).unwrap();
        let plan = FaultPlan::empty();
        checkpoint.record(&plan, &profile.workloads[0]).unwrap();
        checkpoint.record(&plan, &profile.workloads[1]).unwrap();
        // Tear the second record: keep the first line plus a partial tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_end = text.find('\n').unwrap() + 1;
        let torn = format!("{}{}", &text[..first_end], &text[first_end..first_end + 30]);
        std::fs::write(&path, torn).unwrap();
        let (resumed, summary) = Checkpoint::resume(&path).unwrap();
        assert_eq!(summary.restored, 1);
        assert!(summary.dropped_tail.unwrap().contains("line 2"));
        assert!(resumed.restored(profile.workloads[0].name).is_some());
        assert!(resumed.restored(profile.workloads[1].name).is_none());
        // Appending after recovery truncates the torn tail first.
        resumed.record(&plan, &profile.workloads[1]).unwrap();
        let (again, summary) = Checkpoint::resume(&path).unwrap();
        assert_eq!(summary, ResumeSummary { restored: 2, dropped_tail: None });
        assert!(again.restored(profile.workloads[1].name).is_some());
    }

    #[test]
    fn resume_from_missing_file_is_empty() {
        let path = tmp("never_written.jsonl");
        let _ = std::fs::remove_file(&path);
        let (checkpoint, summary) = Checkpoint::resume(&path).unwrap();
        assert_eq!(summary, ResumeSummary { restored: 0, dropped_tail: None });
        assert_eq!(checkpoint.restored_count(), 0);
    }

    #[test]
    fn create_discards_previous_checkpoint() {
        let path = tmp("discard.jsonl");
        let profile = SuiteRunner::new().run_workloads(&suite()[..1], DataSet::Test);
        let checkpoint = Checkpoint::create(&path).unwrap();
        checkpoint.record(&FaultPlan::empty(), &profile.workloads[0]).unwrap();
        let fresh = Checkpoint::create(&path).unwrap();
        assert_eq!(fresh.restored_count(), 0);
        assert!(!path.exists());
    }
}
