//! `vprof serve` — crash-tolerant multi-tenant profile ingestion.
//!
//! A std-only daemon on a Unix-domain socket. Each client speaks the
//! session protocol from [`vp_instrument::net`]: `HELLO` opens a
//! per-tenant session, `CHUNK` frames stream `VPC1` trace chunks into a
//! live profiler, `QUERY` returns deterministic session statistics,
//! `END` closes the session and returns the rendered profile.
//!
//! ## Durability and recovery
//!
//! Every accepted chunk is appended verbatim to a per-session chunk log
//! (`VPW1` magic + `CHUNK` frames). A *checkpoint* — every
//! `checkpoint_every` chunks and on `END` — flushes and syncs the log,
//! appends a session-meta JSONL record through the durable layer, and
//! only then acknowledges: `ACK{n}` promises chunks `0..n` survive
//! `kill -9`. On restart with `--resume`, `HELLO` finds the log, drops a
//! torn tail (a crash mid-append), replays the durable chunks through a
//! fresh profiler, and answers `HELLO_OK{n}` so the client retransmits
//! from the last acknowledged chunk. The profiler is a pure function of
//! the chunk stream, so a killed-and-resumed session produces the same
//! profile, byte for byte, as an undisturbed one; duplicate retransmits
//! are dropped by sequence number, never observed twice.
//!
//! ## Fault domains
//!
//! A malformed frame, CRC mismatch, protocol violation, injected fault,
//! or panic kills *only its own session*: the handler thread catches the
//! unwind, answers a typed `ERR`, releases the admission slot, and bumps
//! `session_killed`. Admission control (`max_sessions`, `max_tenants`,
//! per-tenant caps) answers a typed `BUSY` instead of hanging. Graceful
//! drain — SIGTERM (via a signalfd watcher) or a `SHUTDOWN` frame —
//! stops accepting, checkpoints every live session, and exits cleanly.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vp_core::fault::{
    FaultAction, FaultPlan, SERVE_ACCEPT_POINT, SESSION_CHECKPOINT_POINT, SESSION_FRAME_POINT,
};
use vp_core::{
    durable, AdaptiveProfiler, ConvergentConfig, ConvergentProfiler, EntityMetrics,
    InstructionProfiler, MemBudget, PhaseBudget, StreamProfiler, TrackerConfig,
};
use vp_instrument::frame::{self, FrameError, FrameReader};
use vp_instrument::net::{
    self, classify_chunk, ChunkDisposition, MsgError, NetListener, SessionMsg,
};
use vp_instrument::{cancel, trace_codec};
use vp_obs::{CounterId, Counts, Json};

/// Which profiler each session runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionMode {
    /// Full-fidelity tracking (the `vprof replay` default).
    Full,
    /// Convergence-gated tracking with reweighted metrics.
    Convergent,
    /// Phase-aware adaptive profiling under the given budget.
    Adaptive(PhaseBudget),
}

/// Daemon configuration. `new` fills the defaults the CLI documents.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Directory for per-session chunk logs and meta checkpoints.
    pub state_dir: PathBuf,
    /// Concurrent-session ceiling; further `HELLO`s get a typed `BUSY`.
    pub max_sessions: usize,
    /// Concurrent-distinct-tenant ceiling.
    pub max_tenants: usize,
    /// Concurrent-session ceiling per tenant.
    pub tenant_sessions: usize,
    /// Advertised inflight-chunk window; a client sending beyond it sees
    /// `THROTTLE` frames.
    pub window: u64,
    /// Chunks between durable checkpoints (each one acknowledges).
    pub checkpoint_every: u64,
    /// Reap a session after this long without a frame.
    pub idle: Option<Duration>,
    /// Whole-session deadline, enforced by the cancellation watchdog.
    pub deadline: Option<Duration>,
    /// Global memory budget, split evenly across `max_sessions`.
    pub mem_budget: Option<MemBudget>,
    pub mode: SessionMode,
    /// Recover sessions from existing chunk logs instead of truncating
    /// them.
    pub resume: bool,
    /// Where to write the telemetry ledger on exit, if anywhere.
    pub telemetry: Option<PathBuf>,
}

impl ServeConfig {
    pub fn new(socket: PathBuf, state_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            socket,
            state_dir,
            max_sessions: 8,
            max_tenants: 8,
            tenant_sessions: 4,
            window: 16,
            checkpoint_every: 8,
            idle: None,
            deadline: None,
            mem_budget: None,
            mode: SessionMode::Full,
            resume: false,
            telemetry: None,
        }
    }
}

/// How one session ended; drives its telemetry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    pub tenant: String,
    pub workload: String,
    /// `completed`, `killed`, or `drained`. Rejected `HELLO`s and clean
    /// mid-stream disconnects (the client will retransmit later) leave
    /// no record.
    pub outcome: String,
    /// Durably acknowledged chunks at session end.
    pub chunks: u64,
    /// Trace events observed across the session's whole life, resumed
    /// chunks included.
    pub trace_events: u64,
    pub error: Option<String>,
}

/// What the daemon did over its whole life.
#[derive(Debug, Default)]
pub struct ServeReport {
    pub counts: Counts,
    pub sessions: Vec<SessionSummary>,
}

impl ServeReport {
    /// Telemetry records: one `serve` ledger plus one record per ended
    /// session, sorted by name so concurrent completions render
    /// identically across runs.
    pub fn records(&self) -> Vec<Json> {
        let mut records = vec![vp_obs::telemetry::record(
            "serve",
            "serve",
            vec![("events", self.counts.to_json())],
        )];
        let mut sessions = self.sessions.clone();
        sessions.sort_by(|a, b| {
            (&a.tenant, &a.workload, &a.outcome).cmp(&(&b.tenant, &b.workload, &b.outcome))
        });
        for s in &sessions {
            let mut fields = vec![
                ("tenant", Json::Str(s.tenant.clone())),
                ("outcome", Json::Str(s.outcome.clone())),
                ("chunks", Json::U64(s.chunks)),
                ("trace_events", Json::U64(s.trace_events)),
            ];
            if let Some(e) = &s.error {
                fields.push(("error", Json::Str(e.clone())));
            }
            records.push(vp_obs::telemetry::record(
                "session",
                &format!("{}/{}", s.tenant, s.workload),
                fields,
            ));
        }
        records
    }
}

/// Tenant and workload names become file names and fault points; keep
/// them to a safe alphabet.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// Live daemon bookkeeping shared by the accept loop and every session
/// thread.
#[derive(Default)]
struct DaemonState {
    /// Live sessions per tenant.
    tenants: HashMap<String, usize>,
    /// Live `tenant/workload` keys — one writer per session stream.
    live: Vec<String>,
    counts: Counts,
    sessions: Vec<SessionSummary>,
}

impl DaemonState {
    fn total_live(&self) -> usize {
        self.live.len()
    }
}

/// Shared handles a connection handler needs.
struct Daemon {
    cfg: ServeConfig,
    plan: Arc<FaultPlan>,
    state: Mutex<DaemonState>,
    drain: AtomicBool,
}

/// Admission verdict for a `HELLO`.
enum Admit {
    Ok,
    Busy(String),
}

impl Daemon {
    fn new(cfg: ServeConfig, plan: Arc<FaultPlan>) -> Daemon {
        Daemon {
            cfg,
            plan,
            state: Mutex::new(DaemonState::default()),
            drain: AtomicBool::new(false),
        }
    }

    fn admit(&self, tenant: &str, workload: &str) -> Admit {
        let key = format!("{tenant}/{workload}");
        let mut st = self.state.lock().unwrap();
        if st.live.iter().any(|k| k == &key) {
            return Admit::Busy(format!("session `{key}` already active"));
        }
        if st.total_live() >= self.cfg.max_sessions {
            return Admit::Busy(format!("max sessions ({}) reached", self.cfg.max_sessions));
        }
        let tenant_live = st.tenants.get(tenant).copied().unwrap_or(0);
        if tenant_live == 0
            && st.tenants.values().filter(|&&n| n > 0).count() >= self.cfg.max_tenants
        {
            return Admit::Busy(format!("max tenants ({}) reached", self.cfg.max_tenants));
        }
        if tenant_live >= self.cfg.tenant_sessions {
            return Admit::Busy(format!(
                "tenant `{tenant}` session cap ({}) reached",
                self.cfg.tenant_sessions
            ));
        }
        *st.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        st.live.push(key);
        Admit::Ok
    }

    fn release(&self, tenant: &str, workload: &str) {
        let key = format!("{tenant}/{workload}");
        let mut st = self.state.lock().unwrap();
        if let Some(pos) = st.live.iter().position(|k| k == &key) {
            st.live.remove(pos);
        }
        if let Some(n) = st.tenants.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }

    fn count(&self, id: CounterId, n: u64) {
        self.state.lock().unwrap().counts.add(id, n);
    }

    fn record(&self, summary: SessionSummary) {
        self.state.lock().unwrap().sessions.push(summary);
    }
}

/// The per-session durable state: a live profiler plus the chunk log
/// backing it.
struct Session {
    tenant: String,
    workload: String,
    profiler: SessionProfiler,
    log: BufWriter<std::fs::File>,
    meta_path: PathBuf,
    /// Chunks appended to the log (possibly still buffered).
    logged: u64,
    /// Chunks durably checkpointed and acknowledged.
    acked: u64,
    /// Trace events observed, resumed chunks included.
    events: u64,
}

enum SessionProfiler {
    Full(Box<InstructionProfiler>),
    Convergent(Box<ConvergentProfiler>),
    Adaptive(Box<AdaptiveProfiler>),
}

impl SessionProfiler {
    fn new(mode: SessionMode, budget: Option<MemBudget>) -> SessionProfiler {
        match mode {
            SessionMode::Full => SessionProfiler::Full(Box::new(match budget {
                Some(b) => InstructionProfiler::with_budget(TrackerConfig::with_full(), b),
                None => InstructionProfiler::new(TrackerConfig::with_full()),
            })),
            SessionMode::Convergent => SessionProfiler::Convergent(Box::new(
                ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default()),
            )),
            SessionMode::Adaptive(pb) => SessionProfiler::Adaptive(Box::new(
                AdaptiveProfiler::new(TrackerConfig::default(), ConvergentConfig::default(), pb),
            )),
        }
    }

    fn observe_batch(&mut self, events: &[(u32, u64)]) {
        match self {
            SessionProfiler::Full(p) => p.observe_batch(events),
            SessionProfiler::Convergent(p) => StreamProfiler::observe_batch(&mut **p, events),
            SessionProfiler::Adaptive(p) => StreamProfiler::observe_batch(&mut **p, events),
        }
    }

    fn metrics(&self) -> Vec<EntityMetrics> {
        match self {
            SessionProfiler::Full(p) => p.metrics(),
            SessionProfiler::Convergent(p) => p.metrics(),
            SessionProfiler::Adaptive(p) => p.metrics(),
        }
    }
}

/// Why a session stopped, before it is turned into frames + records.
enum SessionEnd {
    Completed,
    /// Typed kill: `ERR{reason}` goes out, `session_killed` goes up.
    Killed(String),
    /// The peer vanished between (or mid-) frames; durable progress is
    /// kept for a later reconnect, nothing is recorded.
    Disconnected,
    /// The daemon is draining; the session checkpoints and closes.
    Drained,
}

fn session_paths(cfg: &ServeConfig, tenant: &str, workload: &str) -> (PathBuf, PathBuf) {
    let dir = cfg.state_dir.join("sessions");
    (dir.join(format!("{tenant}__{workload}.log")), dir.join(format!("{tenant}__{workload}.ckpt")))
}

impl Session {
    /// Opens (or resumes) the durable state for one session. With
    /// `resume` unset any prior state is discarded; with it set, the
    /// chunk log's well-formed prefix is replayed through a fresh
    /// profiler and a torn tail from a mid-append crash is dropped.
    fn open(cfg: &ServeConfig, tenant: &str, workload: &str) -> io::Result<Session> {
        let (log_path, meta_path) = session_paths(cfg, tenant, workload);
        std::fs::create_dir_all(log_path.parent().unwrap())?;
        let budget = cfg.mem_budget.map(|b| b.split(cfg.max_sessions));
        let mut profiler = SessionProfiler::new(cfg.mode, budget);
        let mut logged = 0u64;
        let mut events = 0u64;
        if !cfg.resume {
            let _ = std::fs::remove_file(&log_path);
            let _ = std::fs::remove_file(&meta_path);
        }
        let existing = if cfg.resume {
            match std::fs::read(&log_path) {
                Ok(bytes) => Some(bytes),
                Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                Err(e) => return Err(e),
            }
        } else {
            None
        };
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        let good_len = match existing {
            None => None,
            Some(bytes) => {
                let scan = net::scan_log(&bytes).map_err(|e| {
                    io::Error::other(format!("session log {}: {e}", log_path.display()))
                })?;
                for f in &scan.frames {
                    let msg = SessionMsg::decode(f)
                        .map_err(|e| io::Error::other(format!("session log: {e}")))?;
                    let SessionMsg::Chunk { seq, count, crc, payload } = msg else {
                        return Err(io::Error::other(format!(
                            "session log: unexpected {} frame",
                            f.kind
                        )));
                    };
                    if seq != logged {
                        return Err(io::Error::other(format!(
                            "session log: chunk {seq} where {logged} expected"
                        )));
                    }
                    scratch.clear();
                    trace_codec::decode_chunk(seq as usize, count, crc, &payload, &mut scratch)
                        .map_err(|e| io::Error::other(format!("session log: {e}")))?;
                    profiler.observe_batch(&scratch);
                    logged += 1;
                    events += u64::from(count);
                }
                Some(scan.good_len)
            }
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&log_path)?;
        match good_len {
            Some(good) => {
                // Drop a torn tail so the next append starts at a frame
                // boundary.
                if file.metadata()?.len() > good as u64 {
                    file.set_len(good as u64)?;
                }
                if good == 0 {
                    frame::write_magic(&mut file)?;
                }
            }
            None => frame::write_magic(&mut file)?,
        }
        Ok(Session {
            tenant: tenant.to_string(),
            workload: workload.to_string(),
            profiler,
            log: BufWriter::new(file),
            meta_path,
            logged,
            acked: logged,
            events,
        })
    }

    /// Ingests one accepted chunk: verify, observe, append to the log.
    fn ingest(&mut self, seq: u64, count: u32, crc: u32, payload: &[u8]) -> Result<(), SessionEnd> {
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        trace_codec::decode_chunk(seq as usize, count, crc, payload, &mut scratch)
            .map_err(|e| SessionEnd::Killed(format!("chunk {seq}: {e}")))?;
        self.profiler.observe_batch(&scratch);
        net::write_msg(
            &mut self.log,
            &SessionMsg::Chunk { seq, count, crc, payload: payload.to_vec() },
        )
        .map_err(|e| SessionEnd::Killed(format!("chunk {seq}: log append failed: {e}")))?;
        self.logged += 1;
        self.events += u64::from(count);
        Ok(())
    }

    /// Makes every logged chunk durable and advances the ack cursor:
    /// flush + sync the log, fire the checkpoint fault point, append the
    /// meta record through the durable layer.
    fn checkpoint(&mut self, plan: &FaultPlan) -> io::Result<()> {
        self.log.flush()?;
        self.log.get_ref().sync_data()?;
        plan.fire(SESSION_CHECKPOINT_POINT)?;
        let line = Json::obj(vec![
            ("kind", Json::Str("session-checkpoint".to_string())),
            ("tenant", Json::Str(self.tenant.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("acked", Json::U64(self.logged)),
            ("events", Json::U64(self.events)),
        ])
        .render();
        durable::append_jsonl_with(plan, &self.meta_path, &line)?;
        self.acked = self.logged;
        Ok(())
    }

    fn stats_json(&self) -> String {
        Json::obj(vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("logged", Json::U64(self.logged)),
            ("acked", Json::U64(self.acked)),
            ("events", Json::U64(self.events)),
        ])
        .render()
    }
}

/// Between-frames wait verdicts from the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Bytes are available; read the next frame.
    Ready,
    /// The daemon is draining.
    Drain,
    /// The idle budget elapsed with no frame.
    Idle,
}

/// Applies a checked fault action inside a session, mirroring
/// [`FaultPlan::fire`] but giving `disconnect` its real meaning: drop
/// this connection without a word.
fn apply_fault(action: FaultAction, point: &str) -> Result<(), SessionEnd> {
    match action {
        FaultAction::Panic => panic!("fault injected: {point}"),
        FaultAction::Err => Err(SessionEnd::Killed(format!("fault injected: {point}"))),
        FaultAction::Kill => std::process::abort(),
        FaultAction::Disconnect => Err(SessionEnd::Disconnected),
        FaultAction::Slow => {
            let mut acc = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..100_000_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            std::hint::black_box(acc);
            Ok(())
        }
        FaultAction::Hang => loop {
            if cancel::cancelled() {
                cancel::unwind();
            }
            std::thread::sleep(Duration::from_millis(1));
        },
    }
}

/// Runs one admitted session to its end. Pure with respect to the
/// transport: reads typed messages, writes typed replies, so unit tests
/// drive it over in-memory pipes.
fn session_loop<R: Read, W: Write>(
    daemon: &Daemon,
    session: &mut Session,
    reader: &mut FrameReader<R>,
    w: &mut W,
    wait: &mut dyn FnMut() -> Wait,
) -> SessionEnd {
    let tenant_point = format!("session/{}/frame", session.tenant);
    loop {
        cancel::checkpoint();
        match wait() {
            Wait::Ready => {}
            Wait::Drain => return SessionEnd::Drained,
            Wait::Idle => return SessionEnd::Killed("session idle".to_string()),
        }
        let msg = match net::read_msg(reader) {
            Ok(msg) => msg,
            Err(MsgError::Frame(FrameError::PeerClosed)) => return SessionEnd::Disconnected,
            Err(MsgError::Frame(FrameError::Torn(_))) => return SessionEnd::Disconnected,
            Err(MsgError::Frame(FrameError::Corrupt(m))) => {
                return SessionEnd::Killed(format!("corrupt frame: {m}"))
            }
            Err(MsgError::Frame(FrameError::Io(e)))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return SessionEnd::Killed("session idle mid-frame".to_string())
            }
            Err(MsgError::Frame(FrameError::Io(_))) => return SessionEnd::Disconnected,
            Err(MsgError::Malformed(m)) => return SessionEnd::Killed(m),
        };
        // Every frame inside a session crosses the generic fault point
        // and a tenant-qualified one, so tests can fault exactly one
        // tenant's session and watch its neighbours stay unharmed.
        for point in [SESSION_FRAME_POINT, tenant_point.as_str()] {
            if let Some(action) = daemon.plan.check(point) {
                if let Err(end) = apply_fault(action, point) {
                    return end;
                }
            }
        }
        match msg {
            SessionMsg::Chunk { seq, count, crc, payload } => {
                match classify_chunk(seq, session.logged) {
                    // A retransmit of a durable chunk after a lost ACK:
                    // drop it, never observe it twice.
                    ChunkDisposition::Duplicate => continue,
                    ChunkDisposition::Gap => {
                        return SessionEnd::Killed(format!(
                            "chunk {seq} skips ahead of {}",
                            session.logged
                        ))
                    }
                    ChunkDisposition::Accept => {}
                }
                if let Err(end) = session.ingest(seq, count, crc, &payload) {
                    return end;
                }
                if session.logged - session.acked >= daemon.cfg.checkpoint_every {
                    if let Err(e) = session.checkpoint(&daemon.plan) {
                        return SessionEnd::Killed(format!("checkpoint failed: {e}"));
                    }
                    if net::write_msg(w, &SessionMsg::Ack { acked: session.acked }).is_err() {
                        return SessionEnd::Disconnected;
                    }
                // A client ignoring the advertised window gets typed
                // backpressure rather than silent buffering.
                } else if session.logged - session.acked > daemon.cfg.window
                    && net::write_msg(w, &SessionMsg::Throttle { acked: session.acked }).is_err()
                {
                    return SessionEnd::Disconnected;
                }
            }
            SessionMsg::Query => {
                let reply = SessionMsg::Stats { json: session.stats_json() };
                if net::write_msg(w, &reply).is_err() {
                    return SessionEnd::Disconnected;
                }
            }
            SessionMsg::End => {
                if let Err(e) = session.checkpoint(&daemon.plan) {
                    return SessionEnd::Killed(format!("checkpoint failed: {e}"));
                }
                let profile = durable::render_profile_durable(&session.profiler.metrics());
                let reply = SessionMsg::EndOk { acked: session.acked, profile };
                if net::write_msg(w, &reply).is_err() {
                    return SessionEnd::Disconnected;
                }
                return SessionEnd::Completed;
            }
            other => {
                return SessionEnd::Killed(format!(
                    "unexpected {} frame inside a session",
                    match other {
                        SessionMsg::Hello { .. } => "HELLO",
                        SessionMsg::Shutdown => "SHUTDOWN",
                        _ => "server-to-client",
                    }
                ))
            }
        }
    }
}

/// Handles one connection end to end: magic, `HELLO` (or `SHUTDOWN`),
/// admission, the session loop under panic containment and the optional
/// deadline, and the closing bookkeeping. Generic over the transport so
/// unit tests can run it on in-memory pipes.
fn serve_conn_on<R: Read, W: Write>(
    daemon: &Daemon,
    r: R,
    mut w: W,
    wait: &mut dyn FnMut() -> Wait,
) {
    let mut reader = FrameReader::new(r);
    if reader.expect_magic().is_err() {
        return;
    }
    let first = net::read_msg(&mut reader);
    if matches!(first, Ok(SessionMsg::Shutdown)) {
        // A SHUTDOWN peer is fire-and-forget and may already be gone;
        // setting the drain flag must not depend on writing anything
        // back, so the greeting below is skipped entirely.
        daemon.drain.store(true, Ordering::SeqCst);
        return;
    }
    if frame::write_magic(&mut w).is_err() {
        return;
    }
    let (tenant, workload) = match first {
        Ok(SessionMsg::Hello { tenant, workload }) => (tenant, workload),
        Ok(_) => {
            daemon.count(CounterId::SessionKilled, 1);
            let _ =
                net::write_msg(&mut w, &SessionMsg::Err { reason: "expected HELLO".to_string() });
            return;
        }
        Err(MsgError::Malformed(m)) => {
            daemon.count(CounterId::SessionKilled, 1);
            let _ = net::write_msg(&mut w, &SessionMsg::Err { reason: m });
            return;
        }
        Err(MsgError::Frame(_)) => return,
    };
    if !valid_name(&tenant) || !valid_name(&workload) {
        daemon.count(CounterId::SessionKilled, 1);
        let _ = net::write_msg(
            &mut w,
            &SessionMsg::Err {
                reason: "tenant and workload names must be [A-Za-z0-9_.-]{1,64}".to_string(),
            },
        );
        return;
    }
    match daemon.admit(&tenant, &workload) {
        Admit::Busy(reason) => {
            daemon.count(CounterId::SessionRejected, 1);
            let _ = net::write_msg(&mut w, &SessionMsg::Busy { reason });
            return;
        }
        Admit::Ok => {}
    }
    let mut session = match Session::open(&daemon.cfg, &tenant, &workload) {
        Ok(s) => s,
        Err(e) => {
            daemon.release(&tenant, &workload);
            daemon.count(CounterId::SessionKilled, 1);
            daemon.record(SessionSummary {
                tenant: tenant.clone(),
                workload: workload.clone(),
                outcome: "killed".to_string(),
                chunks: 0,
                trace_events: 0,
                error: Some(e.to_string()),
            });
            let _ = net::write_msg(
                &mut w,
                &SessionMsg::Err { reason: format!("cannot open session state: {e}") },
            );
            return;
        }
    };
    if net::write_msg(&mut w, &SessionMsg::HelloOk { acked: session.acked }).is_err() {
        daemon.release(&tenant, &workload);
        return;
    }
    // The session body is one fault domain: a panic (injected or
    // genuine) unwinds to here and kills only this session; the
    // deadline watchdog cancels it the same way.
    let body = || match daemon.cfg.deadline {
        Some(d) => match cancel::run_with_deadline(d, || {
            session_loop(daemon, &mut session, &mut reader, &mut w, wait)
        }) {
            Ok(end) => end,
            Err(_) => SessionEnd::Killed("session deadline exceeded".to_string()),
        },
        None => session_loop(daemon, &mut session, &mut reader, &mut w, wait),
    };
    let end = match std::panic::catch_unwind(AssertUnwindSafe(body)) {
        Ok(end) => end,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic".to_string()
            };
            SessionEnd::Killed(format!("session panicked: {msg}"))
        }
    };
    daemon.release(&tenant, &workload);
    match end {
        SessionEnd::Completed => {
            daemon.count(CounterId::SessionCompleted, 1);
            daemon.count(CounterId::ChunksAcked, session.acked);
            daemon.record(SessionSummary {
                tenant,
                workload,
                outcome: "completed".to_string(),
                chunks: session.acked,
                trace_events: session.events,
                error: None,
            });
        }
        SessionEnd::Killed(reason) => {
            daemon.count(CounterId::SessionKilled, 1);
            daemon.count(CounterId::ChunksAcked, session.acked);
            let _ = net::write_msg(&mut w, &SessionMsg::Err { reason: reason.clone() });
            daemon.record(SessionSummary {
                tenant,
                workload,
                outcome: "killed".to_string(),
                chunks: session.acked,
                trace_events: session.events,
                error: Some(reason),
            });
        }
        SessionEnd::Drained => {
            // Keep the tail durable so the client can resume after the
            // daemon restarts; best effort, the daemon is going away.
            let reason = match session.checkpoint(&daemon.plan) {
                Ok(()) => "server draining".to_string(),
                Err(e) => format!("server draining (checkpoint failed: {e})"),
            };
            daemon.count(CounterId::ChunksAcked, session.acked);
            let _ = net::write_msg(&mut w, &SessionMsg::Err { reason });
            daemon.record(SessionSummary {
                tenant,
                workload,
                outcome: "drained".to_string(),
                chunks: session.acked,
                trace_events: session.events,
                error: None,
            });
        }
        SessionEnd::Disconnected => {
            // The peer may reconnect and resume; checkpoint what we
            // have and file no record — the completed record, when it
            // comes, covers the whole session.
            let _ = session.checkpoint(&daemon.plan);
            daemon.count(CounterId::ChunksAcked, session.acked);
        }
    }
}

/// Runs the daemon until it drains (SIGTERM or a `SHUTDOWN` frame),
/// then reports everything it did. Blocking; `vprof serve` calls this.
pub fn serve(cfg: ServeConfig) -> Result<ServeReport, String> {
    let plan = Arc::new(FaultPlan::from_env()?);
    let listener = NetListener::bind(&cfg.socket)
        .map_err(|e| format!("cannot bind `{}`: {e}", cfg.socket.display()))?;
    let sigterm = net::watch_sigterm();
    let idle = cfg.idle;
    let daemon = Arc::new(Daemon::new(cfg, plan));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !daemon.drain.load(Ordering::SeqCst) && !sigterm.load(Ordering::SeqCst) {
        let stream = match listener.accept_timeout(Duration::from_millis(50)) {
            Ok(None) => {
                handles.retain(|h| !h.is_finished());
                continue;
            }
            Ok(Some(stream)) => stream,
            Err(e) => return Err(format!("accept failed: {e}")),
        };
        if daemon.plan.fire(SERVE_ACCEPT_POINT).is_err() {
            // An injected accept failure refuses this connection; the
            // daemon itself stays up.
            continue;
        }
        let daemon = Arc::clone(&daemon);
        let handle = std::thread::Builder::new()
            .name("vp-session".to_string())
            .spawn(move || handle_stream(&daemon, stream, idle))
            .map_err(|e| format!("cannot spawn session thread: {e}"))?;
        handles.push(handle);
    }
    daemon.drain.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    let mut st = daemon.state.lock().unwrap();
    let report = ServeReport {
        counts: std::mem::take(&mut st.counts),
        sessions: std::mem::take(&mut st.sessions),
    };
    drop(st);
    if let Some(path) = &daemon.cfg.telemetry {
        crate::telemetry::write_jsonl(path, &report.records())
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    }
    Ok(report)
}

/// Wires a real socket into the generic handler: a cloned read side, a
/// peek-based wait that polls the drain flag and the idle budget
/// between frames without ever consuming mid-frame bytes.
fn handle_stream(daemon: &Daemon, stream: UnixStream, idle: Option<Duration>) {
    let read_side = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Bound any mid-frame stall by the idle budget.
    let _ = read_side.set_read_timeout(idle);
    let probe = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut last_frame = Instant::now();
    let mut wait = move || loop {
        if daemon.drain.load(Ordering::SeqCst) {
            return Wait::Drain;
        }
        match net::data_ready(&probe) {
            // Bytes or EOF: either way the frame reader should run and
            // classify what it finds.
            Ok(true) => {
                last_frame = Instant::now();
                return Wait::Ready;
            }
            Ok(false) => {
                if let Some(budget) = idle {
                    if last_frame.elapsed() >= budget {
                        return Wait::Idle;
                    }
                }
                cancel::checkpoint();
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return Wait::Ready,
        }
    };
    serve_conn_on(daemon, read_side, stream, &mut wait);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use vp_instrument::TraceEncoder;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vp-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_daemon(dir: &Path, plan: FaultPlan) -> Daemon {
        let cfg = ServeConfig::new(dir.join("serve.sock"), dir.to_path_buf());
        Daemon::new(cfg, Arc::new(plan))
    }

    /// Encodes `events` into VPC1 chunks of `per_chunk` events.
    fn chunks_of(events: &[(u32, u64)], per_chunk: usize) -> Vec<(u32, u32, Vec<u8>)> {
        let mut enc = TraceEncoder::with_chunk_events(per_chunk);
        for &(pc, v) in events {
            enc.push(pc, v);
        }
        let bytes = enc.finish();
        trace_codec::raw_chunks(&bytes)
            .unwrap()
            .into_iter()
            .map(|c| (c.count, c.crc, c.payload.to_vec()))
            .collect()
    }

    fn sample_events(n: u64) -> Vec<(u32, u64)> {
        (0..n).map(|i| ((i % 7) as u32, i * 3 % 11)).collect()
    }

    /// Runs one full client conversation against `serve_conn_on` over
    /// in-memory pipes and returns every reply frame.
    fn converse(daemon: &Daemon, msgs: &[SessionMsg]) -> Vec<SessionMsg> {
        let mut input = Vec::new();
        frame::write_magic(&mut input).unwrap();
        for m in msgs {
            net::write_msg(&mut input, m).unwrap();
        }
        let mut output = Vec::new();
        let mut wait = || Wait::Ready;
        serve_conn_on(daemon, &input[..], &mut output, &mut wait);
        if output.is_empty() {
            // SHUTDOWN is fire-and-forget: the server replies nothing.
            return Vec::new();
        }
        let mut reader = FrameReader::new(&output[..]);
        reader.expect_magic().unwrap();
        let mut replies = Vec::new();
        while let Ok(msg) = net::read_msg(&mut reader) {
            replies.push(msg);
        }
        replies
    }

    fn hello(tenant: &str, workload: &str) -> SessionMsg {
        SessionMsg::Hello { tenant: tenant.to_string(), workload: workload.to_string() }
    }

    fn chunk_msgs(events: &[(u32, u64)], per_chunk: usize) -> Vec<SessionMsg> {
        chunks_of(events, per_chunk)
            .into_iter()
            .enumerate()
            .map(|(seq, (count, crc, payload))| SessionMsg::Chunk {
                seq: seq as u64,
                count,
                crc,
                payload,
            })
            .collect()
    }

    #[test]
    fn full_session_matches_a_direct_replay() {
        let dir = tmp_dir("roundtrip");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let events = sample_events(1000);
        let mut msgs = vec![hello("acme", "li")];
        msgs.extend(chunk_msgs(&events, 64));
        msgs.push(SessionMsg::End);
        let replies = converse(&daemon, &msgs);
        assert!(matches!(replies[0], SessionMsg::HelloOk { acked: 0 }));
        let Some(SessionMsg::EndOk { acked, profile }) = replies.last() else {
            panic!("expected END_OK, got {replies:?}");
        };
        assert_eq!(*acked, 16, "1000 events in 64-event chunks");
        let mut reference = InstructionProfiler::new(TrackerConfig::with_full());
        reference.observe_batch(&events);
        assert_eq!(profile, &durable::render_profile_durable(&reference.metrics()));
        let st = daemon.state.lock().unwrap();
        assert_eq!(st.counts.get(CounterId::SessionCompleted), 1);
        assert_eq!(st.counts.get(CounterId::ChunksAcked), 16);
        assert_eq!(st.sessions.len(), 1);
        assert_eq!(st.sessions[0].outcome, "completed");
        assert_eq!(st.sessions[0].trace_events, 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn acks_are_cumulative_and_checkpoint_gated() {
        let dir = tmp_dir("acks");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let events = sample_events(100);
        let mut msgs = vec![hello("acme", "li")];
        let chunk_frames = chunk_msgs(&events, 4); // 25 chunks
        msgs.extend(chunk_frames.clone());
        msgs.push(SessionMsg::End);
        let replies = converse(&daemon, &msgs);
        // checkpoint_every = 8: ACK{8}, ACK{16}, ACK{24}, then END_OK{25}.
        let acks: Vec<u64> = replies
            .iter()
            .filter_map(|m| match m {
                SessionMsg::Ack { acked } => Some(*acked),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![8, 16, 24]);
        assert!(matches!(replies.last(), Some(SessionMsg::EndOk { acked: 25, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_retransmits_are_dropped_not_reobserved() {
        let dir = tmp_dir("dup");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let events = sample_events(200);
        let chunk_frames = chunk_msgs(&events, 16);
        let mut msgs = vec![hello("acme", "li")];
        // Send everything, then re-send the first three chunks (a
        // retransmit after a lost ACK), then END.
        msgs.extend(chunk_frames.clone());
        msgs.extend(chunk_frames[..3].to_vec());
        msgs.push(SessionMsg::End);
        let replies = converse(&daemon, &msgs);
        let Some(SessionMsg::EndOk { profile, .. }) = replies.last() else {
            panic!("expected END_OK, got {replies:?}");
        };
        let mut reference = InstructionProfiler::new(TrackerConfig::with_full());
        reference.observe_batch(&events);
        assert_eq!(profile, &durable::render_profile_durable(&reference.metrics()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_corrupt_chunk_and_bad_first_frame_are_typed_kills() {
        let dir = tmp_dir("kills");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let events = sample_events(50);
        let frames = chunk_msgs(&events, 10);
        // Gap: first chunk claims seq 3.
        let replies = converse(&daemon, &[hello("a", "gap"), frames[3].clone()]);
        assert!(
            matches!(&replies[1], SessionMsg::Err { reason } if reason.contains("skips ahead")),
            "{replies:?}"
        );
        // Corrupt: valid framing, wrong chunk CRC.
        let SessionMsg::Chunk { seq, count, crc, payload } = frames[0].clone() else {
            unreachable!()
        };
        let bad = SessionMsg::Chunk { seq, count, crc: crc ^ 1, payload };
        let replies = converse(&daemon, &[hello("a", "crc"), bad]);
        assert!(
            matches!(&replies[1], SessionMsg::Err { reason } if reason.contains("chunk 0")),
            "{replies:?}"
        );
        // Protocol violation: a session frame before HELLO.
        let replies = converse(&daemon, &[SessionMsg::Query]);
        assert!(
            matches!(&replies[0], SessionMsg::Err { reason } if reason.contains("expected HELLO")),
            "{replies:?}"
        );
        // Bad tenant name.
        let replies = converse(&daemon, &[hello("a/../b", "x")]);
        assert!(
            matches!(&replies[0], SessionMsg::Err { reason } if reason.contains("names")),
            "{replies:?}"
        );
        let st = daemon.state.lock().unwrap();
        assert_eq!(st.counts.get(CounterId::SessionKilled), 4);
        assert_eq!(st.counts.get(CounterId::SessionCompleted), 0);
        // The two admitted-then-killed sessions leave typed records.
        assert!(st.sessions.iter().all(|s| s.outcome == "killed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_control_answers_typed_busy() {
        let dir = tmp_dir("admission");
        let mut daemon = test_daemon(&dir, FaultPlan::empty());
        daemon.cfg.max_sessions = 2;
        daemon.cfg.max_tenants = 2;
        daemon.cfg.tenant_sessions = 1;
        // Occupy both slots.
        assert!(matches!(daemon.admit("t1", "w1"), Admit::Ok));
        assert!(matches!(daemon.admit("t2", "w1"), Admit::Ok));
        let replies = converse(&daemon, &[hello("t3", "w1")]);
        assert!(
            matches!(&replies[0], SessionMsg::Busy { reason } if reason.contains("max sessions (2)")),
            "{replies:?}"
        );
        daemon.release("t2", "w1");
        // Same tenant again: per-tenant cap.
        let replies = converse(&daemon, &[hello("t1", "w2")]);
        assert!(
            matches!(&replies[0], SessionMsg::Busy { reason } if reason.contains("session cap (1)")),
            "{replies:?}"
        );
        // Duplicate session key.
        let replies = converse(&daemon, &[hello("t1", "w1")]);
        assert!(
            matches!(&replies[0], SessionMsg::Busy { reason } if reason.contains("already active")),
            "{replies:?}"
        );
        daemon.cfg.max_sessions = 8;
        daemon.cfg.max_tenants = 1;
        let replies = converse(&daemon, &[hello("t9", "w1")]);
        assert!(
            matches!(&replies[0], SessionMsg::Busy { reason } if reason.contains("max tenants (1)")),
            "{replies:?}"
        );
        assert_eq!(daemon.state.lock().unwrap().counts.get(CounterId::SessionRejected), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_the_log_drops_torn_tail_and_dedups_retransmits() {
        let dir = tmp_dir("resume");
        let events = sample_events(400);
        let frames = chunk_msgs(&events, 16); // 25 chunks
        let (first, rest) = frames.split_at(10);
        // Life 1: stream 10 chunks, checkpoint at 8, then vanish
        // (disconnect checkpoints the tail at 10).
        {
            let daemon = test_daemon(&dir, FaultPlan::empty());
            let mut msgs = vec![hello("acme", "li")];
            msgs.extend(first.to_vec());
            let replies = converse(&daemon, &msgs);
            assert!(replies.iter().any(|m| matches!(m, SessionMsg::Ack { acked: 8 })));
        }
        // Simulate a torn append from a crash mid-chunk: garbage tail.
        let (log_path, _) = {
            let daemon = test_daemon(&dir, FaultPlan::empty());
            session_paths(&daemon.cfg, "acme", "li")
        };
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&log_path).unwrap();
            f.write_all(&[0x55, 0x00, 0x00, 0x00, 0x15]).unwrap();
        }
        // Life 2: resume; HELLO_OK carries the durable cursor, the
        // client re-sends from there (plus a duplicate), session ends.
        {
            let mut daemon = test_daemon(&dir, FaultPlan::empty());
            daemon.cfg.resume = true;
            let mut msgs = vec![hello("acme", "li")];
            msgs.push(first[9].clone()); // duplicate retransmit
            msgs.extend(rest.to_vec());
            msgs.push(SessionMsg::End);
            let replies = converse(&daemon, &msgs);
            assert!(matches!(replies[0], SessionMsg::HelloOk { acked: 10 }), "{:?}", replies[0]);
            let Some(SessionMsg::EndOk { acked, profile }) = replies.last() else {
                panic!("expected END_OK, got {replies:?}");
            };
            assert_eq!(*acked, 25);
            let mut reference = InstructionProfiler::new(TrackerConfig::with_full());
            reference.observe_batch(&events);
            assert_eq!(profile, &durable::render_profile_durable(&reference.metrics()));
            let st = daemon.state.lock().unwrap();
            assert_eq!(st.sessions[0].trace_events, 400);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_resume_a_fresh_session_truncates_old_state() {
        let dir = tmp_dir("fresh");
        let events = sample_events(64);
        let frames = chunk_msgs(&events, 16);
        for _ in 0..2 {
            let daemon = test_daemon(&dir, FaultPlan::empty());
            let mut msgs = vec![hello("acme", "li")];
            msgs.extend(frames.clone());
            msgs.push(SessionMsg::End);
            let replies = converse(&daemon, &msgs);
            // Same cursor both times: the second run started fresh.
            assert!(matches!(replies[0], SessionMsg::HelloOk { acked: 0 }));
            assert!(matches!(replies.last(), Some(SessionMsg::EndOk { acked: 4, .. })));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn throttle_fires_when_a_client_overruns_the_window() {
        let dir = tmp_dir("throttle");
        let mut daemon = test_daemon(&dir, FaultPlan::empty());
        daemon.cfg.window = 2;
        daemon.cfg.checkpoint_every = 8;
        let events = sample_events(128);
        let mut msgs = vec![hello("acme", "li")];
        msgs.extend(chunk_msgs(&events, 16)); // 8 chunks, acked only at 8
        msgs.push(SessionMsg::End);
        let replies = converse(&daemon, &msgs);
        let throttles = replies.iter().filter(|m| matches!(m, SessionMsg::Throttle { .. })).count();
        // Chunks land with 3..=7 unacked before the checkpoint at 8
        // clears the window: five throttles.
        assert_eq!(throttles, 5, "{replies:?}");
        assert!(matches!(replies.last(), Some(SessionMsg::EndOk { acked: 8, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_kill_only_the_targeted_tenant() {
        let dir = tmp_dir("fault-domain");
        let events = sample_events(160);
        let frames = chunk_msgs(&events, 16);
        let mut healthy_solo = None;
        // Run the healthy tenant alone, then next to a panicking and a
        // disconnected tenant; its replies must not change at all.
        for plan_spec in
            [None, Some("panic:session/evil/frame@3"), Some("disconnect:session/odd/frame@2")]
        {
            let plan = plan_spec.map_or_else(FaultPlan::empty, |s| FaultPlan::parse(s).unwrap());
            let daemon = test_daemon(&dir, plan);
            if let Some(spec) = plan_spec {
                let tenant = if spec.contains("evil") { "evil" } else { "odd" };
                let mut msgs = vec![hello(tenant, "w")];
                msgs.extend(frames.clone());
                msgs.push(SessionMsg::End);
                let replies = converse(&daemon, &msgs);
                if tenant == "evil" {
                    assert!(
                        matches!(replies.last(), Some(SessionMsg::Err { reason })
                            if reason.contains("session panicked")),
                        "{replies:?}"
                    );
                } else {
                    // Disconnect drops the conversation silently.
                    assert!(
                        !replies.iter().any(|m| matches!(m, SessionMsg::EndOk { .. })),
                        "{replies:?}"
                    );
                }
            }
            let mut msgs = vec![hello("healthy", "w")];
            msgs.extend(frames.clone());
            msgs.push(SessionMsg::End);
            let replies = converse(&daemon, &msgs);
            let st = daemon.state.lock().unwrap();
            assert_eq!(st.counts.get(CounterId::SessionCompleted), 1, "{plan_spec:?}");
            drop(st);
            match &healthy_solo {
                None => healthy_solo = Some(replies),
                Some(solo) => assert_eq!(solo, &replies, "fault leaked across sessions"),
            }
            // Fresh state dir per iteration: healthy tenant state must
            // not carry over.
            let _ = std::fs::remove_dir_all(dir.join("sessions"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn err_fault_on_checkpoint_is_a_typed_session_kill() {
        let dir = tmp_dir("ckpt-err");
        let daemon = test_daemon(&dir, FaultPlan::parse("err:session/checkpoint").unwrap());
        let events = sample_events(160);
        let mut msgs = vec![hello("acme", "li")];
        msgs.extend(chunk_msgs(&events, 16));
        msgs.push(SessionMsg::End);
        let replies = converse(&daemon, &msgs);
        assert!(
            matches!(replies.last(), Some(SessionMsg::Err { reason })
                if reason.contains("checkpoint failed")),
            "{replies:?}"
        );
        let st = daemon.state.lock().unwrap();
        assert_eq!(st.counts.get(CounterId::SessionKilled), 1);
        assert_eq!(st.sessions[0].outcome, "killed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_checkpoints_and_reports_the_session() {
        let dir = tmp_dir("drain");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let events = sample_events(64);
        let mut msgs = vec![hello("acme", "li")];
        msgs.extend(chunk_msgs(&events, 16));
        let mut input = Vec::new();
        frame::write_magic(&mut input).unwrap();
        for m in &msgs {
            net::write_msg(&mut input, m).unwrap();
        }
        let mut output = Vec::new();
        // The session loop waits once per frame; HELLO is read before
        // it starts, so the fifth wait lands after the four chunks.
        let mut seen = 0;
        let mut wait = || {
            seen += 1;
            if seen > 4 {
                Wait::Drain
            } else {
                Wait::Ready
            }
        };
        serve_conn_on(&daemon, &input[..], &mut output, &mut wait);
        let mut reader = FrameReader::new(&output[..]);
        reader.expect_magic().unwrap();
        let mut replies = Vec::new();
        while let Ok(msg) = net::read_msg(&mut reader) {
            replies.push(msg);
        }
        assert!(
            matches!(replies.last(), Some(SessionMsg::Err { reason }) if reason.contains("draining")),
            "{replies:?}"
        );
        let st = daemon.state.lock().unwrap();
        assert_eq!(st.sessions[0].outcome, "drained");
        assert_eq!(st.sessions[0].chunks, 4, "drain checkpointed the tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_frame_sets_the_drain_flag() {
        let dir = tmp_dir("shutdown");
        let daemon = test_daemon(&dir, FaultPlan::empty());
        let replies = converse(&daemon, &[SessionMsg::Shutdown]);
        assert!(replies.is_empty());
        assert!(daemon.drain.load(Ordering::SeqCst));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_records_are_sorted_and_schema_tagged() {
        let report = ServeReport {
            counts: {
                let mut c = Counts::new();
                c.add(CounterId::SessionCompleted, 2);
                c
            },
            sessions: vec![
                SessionSummary {
                    tenant: "zeta".into(),
                    workload: "w".into(),
                    outcome: "completed".into(),
                    chunks: 5,
                    trace_events: 80,
                    error: None,
                },
                SessionSummary {
                    tenant: "acme".into(),
                    workload: "w".into(),
                    outcome: "killed".into(),
                    chunks: 1,
                    trace_events: 16,
                    error: Some("boom".into()),
                },
            ],
        };
        let records = report.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].get("kind").unwrap().as_str(), Some("serve"));
        assert_eq!(records[1].get("name").unwrap().as_str(), Some("acme/w"));
        assert_eq!(records[1].get("error").unwrap().as_str(), Some("boom"));
        assert_eq!(records[2].get("name").unwrap().as_str(), Some("zeta/w"));
        assert!(records[2].get("error").is_none());
    }
}
