//! Suite-profiling driver: profile every workload of the benchmark suite
//! and render one table, serially or fanned out across worker threads.
//!
//! Parallelism is *per workload* — each worker profiles whole workloads,
//! so a workload's profile is produced by exactly one profiler instance
//! and `--jobs N` output is identical to a serial run by construction.
//! Only the order in which workloads *finish* varies; results are
//! reassembled in canonical suite order.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use vp_core::{
    aggregate, merge_entity_metrics, profile_sharded, render_metric_table, report::row,
    track::TrackerConfig, AdaptiveProfiler, Aggregate, ConvergentConfig, ConvergentProfiler,
    EntityMetrics, FaultPlan, GovernorStats, InstructionProfiler, MemBudget, PhaseBudget,
    PhaseStats, ReportRow, SampleStrategy, SampledProfiler,
};
use vp_instrument::{
    parallel_map_observed, trace_codec, try_parallel_map_deadline, Analysis, FailureKind,
    InstrumentedRun, Instrumenter, Selection,
};
use vp_obs::recorder::Stopwatch;
use vp_obs::{CounterId, Counts, HistId, NullRecorder, Recorder};
use vp_sim::{InstrEvent, Machine};
use vp_workloads::{suite, DataSet, Workload};

use crate::checkpoint::Checkpoint;
use crate::executor::{self, ProcessPool, WorkerExecutor, WorkerExit, WorkerFailure, WorkerSpec};
use crate::BUDGET;

/// What one workload's profiling pass returns: metrics, profiled
/// fraction, the instrumented run, and the optional governor / phase
/// counters (each present only in the mode that produces them).
type SingleRun =
    (Vec<EntityMetrics>, f64, InstrumentedRun, Option<GovernorStats>, Option<PhaseStats>);

/// Which profiler the runner attaches to each workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileMode {
    /// Full profiling: every selected execution observed
    /// ([`InstructionProfiler`]).
    Full,
    /// The paper's convergent profiler (bursts with adaptive back-off).
    Convergent(ConvergentConfig),
    /// The convergent profiler with phase detection armed: converged
    /// instructions re-arm when their value distribution shifts, under
    /// the bounded [`PhaseBudget`] ([`AdaptiveProfiler`]).
    Adaptive(ConvergentConfig, PhaseBudget),
    /// The CPI-style sampling baseline.
    Sampled(SampleStrategy),
}

/// One workload's profiling result.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: &'static str,
    /// Per-entity metrics, ordered by entity id.
    pub metrics: Vec<EntityMetrics>,
    /// Execution-weighted aggregate of `metrics`.
    pub aggregate: Aggregate,
    /// Fraction of selected executions actually profiled (1.0 in
    /// [`ProfileMode::Full`]).
    pub profile_fraction: f64,
    /// Dynamic instructions the run executed.
    pub instructions: u64,
    /// Self-profiling event counts of this workload's run (analysis
    /// events delivered, TNV-table work, sampler decisions). Plain
    /// deterministic counters: identical across `--jobs` settings.
    pub events: Counts,
    /// Wall time of the instrumented run, nanoseconds.
    pub wall_ns: u64,
    /// Wall time of an uninstrumented replay of the same workload, when
    /// baseline measurement was requested — the denominator of the
    /// profiling-slowdown figure.
    pub baseline_wall_ns: Option<u64>,
    /// Memory-governor counters of this workload's run, present only when
    /// a budget was armed ([`SuiteRunner::mem_budget`]). `None` on
    /// ungoverned runs, keeping their profiles byte-identical to before
    /// the governor existed.
    pub governor: Option<GovernorStats>,
    /// Phase-detector counters of this workload's run, present only in
    /// [`ProfileMode::Adaptive`]. `None` otherwise, keeping
    /// non-adaptive profiles byte-identical to before the detector
    /// existed.
    pub phase: Option<PhaseStats>,
}

impl WorkloadProfile {
    /// Instrumented wall time over uninstrumented replay time, when a
    /// baseline was measured.
    pub fn slowdown(&self) -> Option<f64> {
        let base = self.baseline_wall_ns?;
        (base > 0).then(|| self.wall_ns as f64 / base as f64)
    }
}

/// The whole suite's profiling results, in canonical suite order.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// One entry per workload.
    pub workloads: Vec<WorkloadProfile>,
}

impl SuiteProfile {
    /// Report rows (one per workload), ready for
    /// [`render_metric_table`].
    pub fn rows(&self) -> Vec<ReportRow> {
        self.workloads.iter().map(|w| row(w.name, &w.metrics)).collect()
    }

    /// Renders the per-workload metric table.
    pub fn render(&self, title: &str) -> String {
        render_metric_table(title, &self.rows())
    }

    /// Pools every workload's entities into one metric set, re-keying ids
    /// as `workload_index << 32 | entity_id` so sites from different
    /// workloads never collide, and returns the suite-wide aggregate.
    ///
    /// Uses [`merge_entity_metrics`], so pooling two disjoint shards is
    /// exact (no entity is shared across workloads).
    pub fn pooled(&self) -> (Vec<EntityMetrics>, Aggregate) {
        let mut pool: Vec<EntityMetrics> = Vec::new();
        for (wi, w) in self.workloads.iter().enumerate() {
            let rekeyed: Vec<EntityMetrics> = w
                .metrics
                .iter()
                .map(|m| {
                    let mut m = m.clone();
                    m.id |= (wi as u64) << 32;
                    m
                })
                .collect();
            pool = merge_entity_metrics(&pool, &rekeyed);
        }
        let agg = aggregate(&pool);
        (pool, agg)
    }

    /// Total dynamic instructions across the suite.
    pub fn total_instructions(&self) -> u64 {
        self.workloads.iter().map(|w| w.instructions).sum()
    }
}

/// How [`SuiteRunner::try_run`] retries workloads that panicked.
///
/// Backoff is deterministic (no jitter, no clock reads): retry round `k`
/// sleeps `min(base · 2^(k-1), cap)` milliseconds. The defaults keep total
/// added latency under a second even with every workload failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry *rounds* after the first attempt, so a workload is tried at
    /// most `max_retries + 1` times.
    pub max_retries: u64,
    /// Backoff before the first retry round, milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff, milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 2, backoff_base_ms: 25, backoff_cap_ms: 250 }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, straight to quarantine on failure.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, backoff_base_ms: 0, backoff_cap_ms: 0 }
    }

    /// Backoff before retry round `round` (1-based), milliseconds.
    pub fn backoff_ms(&self, round: u64) -> u64 {
        let factor = 2u64.saturating_pow(round.saturating_sub(1).min(u32::MAX as u64) as u32);
        self.backoff_base_ms.saturating_mul(factor).min(self.backoff_cap_ms)
    }
}

/// One workload that exhausted its retry budget and was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadFailure {
    /// Workload name.
    pub name: &'static str,
    /// Attempts made (first run plus retries).
    pub attempts: u64,
    /// How the final attempt failed: a caught panic, cooperative
    /// cancellation after the wall-clock deadline, or — on distributed
    /// runs — the death of the worker process holding the assignment.
    pub kind: FailureKind,
    /// The final attempt's panic message (a fixed `deadline exceeded` for
    /// timeouts, kept deterministic).
    pub error: String,
    /// How the worker process ended, present exactly when
    /// [`kind`](WorkloadFailure::kind) is [`FailureKind::WorkerDeath`].
    pub worker: Option<WorkerExit>,
}

impl WorkloadFailure {
    /// Stable lower-case label of [`kind`](WorkloadFailure::kind), as
    /// rendered in failure tables and telemetry.
    pub fn kind_str(&self) -> &'static str {
        match self.kind {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::WorkerDeath => "worker-death",
        }
    }

    /// The failure-table `kind` cell: the kind label, plus the dead
    /// worker's index and exit status when there is one —
    /// `worker-death(w0:signal 9)`.
    pub fn kind_cell(&self) -> String {
        match &self.worker {
            Some(x) => format!("{}(w{}:{})", self.kind_str(), x.worker, x.status),
            None => self.kind_str().to_string(),
        }
    }
}

/// Result of a fault-tolerant suite run: the profiles that succeeded, the
/// workloads that did not, and the fault counters describing what
/// happened along the way.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Profiles of the workloads that completed, in canonical order.
    /// Quarantined workloads are absent.
    pub profile: SuiteProfile,
    /// Workloads quarantined after exhausting the retry budget.
    pub failures: Vec<WorkloadFailure>,
    /// Fault counters of this run: `WorkloadPanic` per caught panic,
    /// `WorkloadTimeout` per deadline cancellation, `WorkloadRetry` per
    /// workload-retry, `WorkloadQuarantined` per giving-up. All zero on a
    /// clean run.
    pub faults: Counts,
}

impl SuiteOutcome {
    /// Whether every workload completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the failure table (empty string when the run was clean),
    /// in the same shape `vprof stats` uses.
    pub fn render_failures(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:>8}  {:<12}  error\n", "failed", "attempts", "kind"));
        for f in &self.failures {
            out.push_str(&format!(
                "{:<16} {:>8}  {:<12}  {}\n",
                f.name,
                f.attempts,
                f.kind_cell(),
                f.error
            ));
        }
        out
    }
}

/// Profiles the workload suite, optionally in parallel.
///
/// ```
/// use vp_bench::suite::SuiteRunner;
/// use vp_workloads::DataSet;
///
/// let profile = SuiteRunner::new().jobs(2).run(DataSet::Test);
/// assert_eq!(profile.workloads.len(), vp_workloads::suite().len());
/// ```
#[derive(Clone)]
pub struct SuiteRunner {
    jobs: usize,
    shards: usize,
    selection: Selection,
    tracker: TrackerConfig,
    budget: u64,
    mode: ProfileMode,
    recorder: Arc<dyn Recorder>,
    measure_baseline: bool,
    retry: RetryPolicy,
    faults: Arc<FaultPlan>,
    checkpoint: Option<Arc<Checkpoint>>,
    deadline: Option<Duration>,
    mem_budget: Option<MemBudget>,
}

impl fmt::Debug for SuiteRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteRunner")
            .field("jobs", &self.jobs)
            .field("shards", &self.shards)
            .field("selection", &self.selection)
            .field("tracker", &self.tracker)
            .field("budget", &self.budget)
            .field("mode", &self.mode)
            .field("recorder_enabled", &self.recorder.enabled())
            .field("measure_baseline", &self.measure_baseline)
            .field("retry", &self.retry)
            .field("faults", &!self.faults.is_empty())
            .field("checkpoint", &self.checkpoint.as_ref().map(|c| c.path().to_path_buf()))
            .field("deadline", &self.deadline)
            .field("mem_budget", &self.mem_budget)
            .finish()
    }
}

impl Default for SuiteRunner {
    fn default() -> SuiteRunner {
        SuiteRunner::new()
    }
}

impl SuiteRunner {
    /// A serial runner profiling loads with exact ground truth.
    pub fn new() -> SuiteRunner {
        SuiteRunner {
            jobs: 1,
            shards: 1,
            selection: Selection::LoadsOnly,
            tracker: TrackerConfig::with_full(),
            budget: BUDGET,
            mode: ProfileMode::Full,
            recorder: Arc::new(NullRecorder),
            measure_baseline: false,
            retry: RetryPolicy::default(),
            faults: Arc::new(FaultPlan::empty()),
            checkpoint: None,
            deadline: None,
            mem_budget: None,
        }
    }

    /// Sets the worker count (0 = available parallelism, 1 = serial).
    pub fn jobs(mut self, jobs: usize) -> SuiteRunner {
        self.jobs = jobs;
        self
    }

    /// Sets the intra-workload shard count (0 or 1 = serial). With
    /// `shards > 1` each workload is executed once to record its value
    /// trace, which is then profiled across `shards` entity-sharded
    /// workers and merged ([`vp_core::profile_sharded`]). Bit-identical
    /// to a serial run for every [`ProfileMode`] except random sampling
    /// (whose single generator depends on the global interleaving) —
    /// that equivalence is what `tests/differential_shard.rs` proves.
    /// Unlike [`jobs`](SuiteRunner::jobs), this helps even when one
    /// large workload dominates the suite.
    pub fn shards(mut self, shards: usize) -> SuiteRunner {
        self.shards = shards;
        self
    }

    /// Sets which instructions are profiled.
    pub fn selection(mut self, selection: Selection) -> SuiteRunner {
        self.selection = selection;
        self
    }

    /// Sets the per-entity tracker configuration.
    pub fn tracker(mut self, tracker: TrackerConfig) -> SuiteRunner {
        self.tracker = tracker;
        self
    }

    /// Sets the instruction budget per workload run.
    pub fn budget(mut self, budget: u64) -> SuiteRunner {
        self.budget = budget;
        self
    }

    /// Sets the profiling mode.
    pub fn mode(mut self, mode: ProfileMode) -> SuiteRunner {
        self.mode = mode;
        self
    }

    /// Attaches a [`Recorder`] sink for self-profiling telemetry: each
    /// workload's event counts and wall time are flushed into it, and the
    /// parallel driver reports per-worker busy/queue-wait times. The
    /// default [`NullRecorder`] keeps every instrumented site at a single
    /// branch.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> SuiteRunner {
        self.recorder = recorder;
        self
    }

    /// Also replays every workload *uninstrumented* and records the
    /// baseline wall time, enabling [`WorkloadProfile::slowdown`]. Doubles
    /// the emulation work, so off by default.
    pub fn measure_baseline(mut self, measure: bool) -> SuiteRunner {
        self.measure_baseline = measure;
        self
    }

    /// Sets the retry budget and backoff used by
    /// [`try_run`](SuiteRunner::try_run).
    pub fn retry(mut self, policy: RetryPolicy) -> SuiteRunner {
        self.retry = policy;
        self
    }

    /// Arms a fault plan: [`try_run`](SuiteRunner::try_run) fires the
    /// point `workload/<name>` before profiling each workload, and the
    /// checkpoint append path fires its durable-layer points. The default
    /// empty plan never fires.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> SuiteRunner {
        self.faults = plan;
        self
    }

    /// Arms a per-workload wall-clock deadline for
    /// [`try_run`](SuiteRunner::try_run): an attempt still running when
    /// the deadline fires is cancelled cooperatively (at the next
    /// instruction-chunk or claim boundary), counted as a
    /// `WorkloadTimeout`, retried per the [`RetryPolicy`], and
    /// quarantined when the budget is exhausted — the rest of the suite
    /// always completes. Workloads that finish before the deadline are
    /// byte-identical to an undeadlined run. `None` (the default)
    /// disables the watchdog entirely.
    pub fn deadline(mut self, deadline: Option<Duration>) -> SuiteRunner {
        self.deadline = deadline;
        self
    }

    /// Arms a per-workload memory budget for [`ProfileMode::Full`]: each
    /// workload's profiler accounts every tracked byte and, when over
    /// budget, walks the degradation ladder (full-profile → TNV-only →
    /// dropped; see [`vp_core::govern`]). Sharded runs split the budget
    /// evenly across shards ([`MemBudget::split`]), so the summed peaks
    /// stay bounded. Convergent and sampled modes already run in constant
    /// space per entity and are not governed. `None` (the default) leaves
    /// every profile byte-identical to an ungoverned run.
    pub fn mem_budget(mut self, budget: Option<MemBudget>) -> SuiteRunner {
        self.mem_budget = budget;
        self
    }

    /// Attaches a [`Checkpoint`]: each workload completed by
    /// [`try_run`](SuiteRunner::try_run) is durably appended the moment it
    /// finishes, and workloads the checkpoint already holds are restored
    /// instead of re-profiled (their events still flow to the recorder, so
    /// a resumed run's telemetry matches an uninterrupted one).
    pub fn checkpoint(mut self, checkpoint: Arc<Checkpoint>) -> SuiteRunner {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Profiles the whole built-in suite on `ds`.
    ///
    /// # Panics
    ///
    /// Panics if a workload run faults (a harness bug, as in the
    /// experiment binaries).
    pub fn run(&self, ds: DataSet) -> SuiteProfile {
        self.run_workloads(&suite(), ds)
    }

    /// Profiles an explicit workload list on `ds`, one workload per
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics if a workload run faults.
    pub fn run_workloads(&self, workloads: &[Workload], ds: DataSet) -> SuiteProfile {
        let workloads = parallel_map_observed(
            self.jobs,
            workloads,
            |w| self.profile_one(w, ds),
            &*self.recorder,
        );
        SuiteProfile { workloads }
    }

    /// Fault-tolerant [`run`](SuiteRunner::run): a workload that panics is
    /// caught, retried per the [`RetryPolicy`], and quarantined when the
    /// budget is exhausted — the rest of the suite still completes and the
    /// outcome reports exactly what happened.
    pub fn try_run(&self, ds: DataSet) -> SuiteOutcome {
        self.try_run_workloads(&suite(), ds)
    }

    /// [`try_run`](SuiteRunner::try_run) over an explicit workload list.
    pub fn try_run_workloads(&self, workloads: &[Workload], ds: DataSet) -> SuiteOutcome {
        let checkpoint = self.checkpoint.as_deref();
        let run_one = |w: &Workload| -> WorkloadProfile {
            if let Some(restored) = checkpoint.and_then(|c| c.restored(w.name())) {
                // Flush the restored run's deterministic events exactly as
                // profile_one would have, so resumed telemetry totals match
                // an uninterrupted run's.
                if self.recorder.enabled() {
                    self.recorder.add_counts(&restored.events);
                    self.recorder.observe(HistId::WorkloadWallNs, restored.wall_ns);
                }
                return restored;
            }
            if let Err(e) = self.faults.fire(&format!("workload/{}", w.name())) {
                panic!("{e}");
            }
            let profile = self.profile_one(w, ds);
            if let Some(c) = checkpoint {
                c.record(&self.faults, &profile)
                    .unwrap_or_else(|e| panic!("checkpoint {}: {e}", c.path().display()));
            }
            profile
        };
        let outcome = self.run_rounds(workloads, |subset| {
            try_parallel_map_deadline(
                self.jobs,
                subset,
                |w| run_one(w),
                &*self.recorder,
                self.deadline,
            )
            .into_iter()
            .map(|slot| {
                slot.map_err(|f| WorkerFailure { kind: f.kind, message: f.message, exit: None })
            })
            .collect()
        });
        self.flush_faults(&outcome.faults);
        outcome
    }

    /// [`try_run_workloads`](SuiteRunner::try_run_workloads), but each
    /// workload is profiled by a [`WorkerExecutor`] instead of an
    /// in-process thread. The dispatcher mirrors the in-process parallel
    /// map's observation discipline exactly, and a result that crossed
    /// the executor is replayed into the recorder the same way a restored
    /// checkpoint is — so a clean executor run's output *and* masked
    /// telemetry are byte-identical to `--jobs N`.
    ///
    /// Executor lifecycle counters (`worker_spawns` / `worker_deaths` /
    /// `worker_restarts`) are merged into the outcome's fault counters
    /// only when a worker actually died, keeping clean runs free of
    /// worker-count-dependent records.
    pub fn try_run_executor(
        &self,
        workloads: &[Workload],
        exec: &dyn WorkerExecutor,
    ) -> SuiteOutcome {
        let checkpoint = self.checkpoint.as_deref();
        let item_fn = |w: &Workload| -> Result<WorkloadProfile, WorkerFailure> {
            if let Some(restored) = checkpoint.and_then(|c| c.restored(w.name())) {
                if self.recorder.enabled() {
                    self.recorder.add_counts(&restored.events);
                    self.recorder.observe(HistId::WorkloadWallNs, restored.wall_ns);
                }
                return Ok(restored);
            }
            let profile = exec.run(w.name())?;
            if let Some(c) = checkpoint {
                c.record(&self.faults, &profile)
                    .unwrap_or_else(|e| panic!("checkpoint {}: {e}", c.path().display()));
            }
            if self.recorder.enabled() {
                self.recorder.add_counts(&profile.events);
                self.recorder.observe(HistId::WorkloadWallNs, profile.wall_ns);
            }
            Ok(profile)
        };
        let mut outcome = self.run_rounds(workloads, |subset| {
            exec.prepare(subset.len());
            executor::dispatch_round(exec.slots(), subset, item_fn, &*self.recorder)
        });
        let life = exec.counters();
        if life.deaths > 0 {
            outcome.faults.add(CounterId::WorkerSpawns, life.spawns);
            outcome.faults.add(CounterId::WorkerDeaths, life.deaths);
            outcome.faults.add(CounterId::WorkerRestarts, life.restarts);
        }
        self.flush_faults(&outcome.faults);
        outcome
    }

    /// Distributed [`try_run_workloads`](SuiteRunner::try_run_workloads):
    /// profiles each workload in a `vprof worker` subprocess from a pool
    /// of `spec.workers` crash domains. A SIGKILLed, aborted, or hung
    /// worker costs one [`FailureKind::WorkerDeath`] attempt and a
    /// replacement process — never the suite.
    pub fn try_run_distributed(&self, workloads: &[Workload], spec: WorkerSpec) -> SuiteOutcome {
        let pool = ProcessPool::new(spec, Arc::clone(&self.faults), self.deadline);
        let outcome = self.try_run_executor(workloads, &pool);
        pool.shutdown();
        outcome
    }

    // The retry → quarantine loop shared by the in-process and
    // distributed paths: a round function profiles one pending subset
    // and reports per-item success or typed failure. Does NOT flush
    // fault counters to the recorder — callers do, after merging any
    // executor lifecycle counters.
    fn run_rounds(
        &self,
        workloads: &[Workload],
        mut round_fn: impl FnMut(&[&Workload]) -> Vec<Result<WorkloadProfile, WorkerFailure>>,
    ) -> SuiteOutcome {
        let mut results: Vec<Option<WorkloadProfile>> =
            (0..workloads.len()).map(|_| None).collect();
        let mut attempts = vec![0u64; workloads.len()];
        let mut last_error: Vec<Option<WorkerFailure>> = vec![None; workloads.len()];
        let mut faults = Counts::new();
        let mut pending: Vec<usize> = (0..workloads.len()).collect();
        let mut round = 0u64;
        loop {
            let subset: Vec<&Workload> = pending.iter().map(|&i| &workloads[i]).collect();
            let outs = round_fn(&subset);
            let mut still = Vec::new();
            for (slot, &i) in outs.into_iter().zip(&pending) {
                attempts[i] += 1;
                match slot {
                    Ok(profile) => results[i] = Some(profile),
                    Err(failure) => {
                        match failure.kind {
                            FailureKind::Panic => faults.add(CounterId::WorkloadPanic, 1),
                            FailureKind::Timeout => faults.add(CounterId::WorkloadTimeout, 1),
                            // Deaths are counted by the executor pool
                            // (worker_deaths), not per attempt.
                            FailureKind::WorkerDeath => {}
                        }
                        last_error[i] = Some(failure);
                        still.push(i);
                    }
                }
            }
            pending = still;
            if pending.is_empty() || round >= self.retry.max_retries {
                break;
            }
            round += 1;
            faults.add(CounterId::WorkloadRetry, pending.len() as u64);
            let backoff = self.retry.backoff_ms(round);
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
        }
        faults.add(CounterId::WorkloadQuarantined, pending.len() as u64);
        let failures = pending
            .iter()
            .map(|&i| {
                let f = last_error[i].take().unwrap_or(WorkerFailure {
                    kind: FailureKind::Panic,
                    message: String::new(),
                    exit: None,
                });
                WorkloadFailure {
                    name: workloads[i].name(),
                    attempts: attempts[i],
                    kind: f.kind,
                    error: f.message,
                    worker: f.exit,
                }
            })
            .collect();
        SuiteOutcome {
            profile: SuiteProfile { workloads: results.into_iter().flatten().collect() },
            failures,
            faults,
        }
    }

    fn flush_faults(&self, faults: &Counts) {
        if self.recorder.enabled() && faults.total() > 0 {
            self.recorder.add_counts(faults);
        }
    }

    // Runs the workload with the mode's profiler attached live — the
    // serial reference path.
    fn profile_one_serial(
        &self,
        w: &Workload,
        ds: DataSet,
        instrumenter: &Instrumenter,
        events: &mut Counts,
    ) -> SingleRun {
        let fail = |e| panic!("{} [{}]: {e}", w.name(), ds.name());
        let cfg = w.machine_config(ds);
        match self.mode {
            ProfileMode::Full => {
                let mut p = match self.mem_budget {
                    Some(budget) => InstructionProfiler::with_budget(self.tracker, budget),
                    None => InstructionProfiler::new(self.tracker),
                };
                let run =
                    instrumenter.run(w.program(), cfg, self.budget, &mut p).unwrap_or_else(fail);
                p.tnv_events().add_to(events);
                let governor = p.governor_stats().copied();
                (p.metrics(), 1.0, run, governor, None)
            }
            ProfileMode::Convergent(config) => {
                let mut p = ConvergentProfiler::new(self.tracker, config);
                let run =
                    instrumenter.run(w.program(), cfg, self.budget, &mut p).unwrap_or_else(fail);
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, None)
            }
            ProfileMode::Adaptive(config, budget) => {
                let mut p = AdaptiveProfiler::new(self.tracker, config, budget);
                let run =
                    instrumenter.run(w.program(), cfg, self.budget, &mut p).unwrap_or_else(fail);
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, Some(p.phase_stats()))
            }
            ProfileMode::Sampled(strategy) => {
                let mut p = SampledProfiler::new(self.tracker, strategy);
                let run =
                    instrumenter.run(w.program(), cfg, self.budget, &mut p).unwrap_or_else(fail);
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, None)
            }
        }
    }

    // Trace-once, analyze-sharded: record the selected `(pc, value)`
    // stream in one instrumented run, then profile it across
    // entity-sharded workers. The run's delivered-event counts come from
    // the recording run and match a live profiled run exactly, as do the
    // merged profiler's metrics (see `vp_core::shard` for the argument,
    // `tests/differential_shard.rs` for the proof).
    fn profile_one_sharded(
        &self,
        w: &Workload,
        ds: DataSet,
        instrumenter: &Instrumenter,
        events: &mut Counts,
    ) -> SingleRun {
        struct Collector(Vec<(u32, u64)>);
        impl Analysis for Collector {
            fn after_instr(&mut self, _m: &Machine, event: &InstrEvent) {
                if let Some((_, value)) = event.dest {
                    self.0.push((event.index, value));
                }
            }
        }
        let mut collector = Collector(Vec::new());
        let run = instrumenter
            .run(w.program(), w.machine_config(ds), self.budget, &mut collector)
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name(), ds.name()));
        // Round-trip the recorded stream through the binary trace codec so
        // the bytes the profilers consume went through the same chunked,
        // CRC-checked path as `vprof record` / `vprof replay`.
        let encoded = trace_codec::encode(&collector.0, trace_codec::DEFAULT_CHUNK_EVENTS);
        drop(collector);
        let file = vp_instrument::TraceFile::from_bytes(encoded);
        let mut reader = file
            .reader()
            .unwrap_or_else(|e| panic!("{} [{}]: trace codec: {e}", w.name(), ds.name()));
        let mut trace: Vec<(u32, u64)> = Vec::new();
        reader
            .read_to_end_into(&mut trace)
            .unwrap_or_else(|e| panic!("{} [{}]: trace codec: {e}", w.name(), ds.name()));
        events.add(CounterId::TraceShards, self.shards as u64);
        events.add(CounterId::TraceEvents, trace.len() as u64);
        events.add(CounterId::TraceChunks, reader.chunks_read() as u64);
        let tracker = self.tracker;
        match self.mode {
            ProfileMode::Full => {
                // Each shard runs under an even split of the budget, so the
                // summed shard peaks stay bounded by the whole budget; the
                // merged profiler's stats are the summed shard stats.
                let p = match self.mem_budget {
                    Some(budget) => {
                        // One profiler exists per *partition* (the stream is
                        // over-decomposed for work stealing), so split by the
                        // partition count to keep summed caps within budget.
                        let split = budget.split(vp_core::partition_count(self.shards));
                        profile_sharded(&trace, self.shards, move || {
                            InstructionProfiler::with_budget(tracker, split)
                        })
                    }
                    None => {
                        profile_sharded(&trace, self.shards, || InstructionProfiler::new(tracker))
                    }
                };
                p.tnv_events().add_to(events);
                let governor = p.governor_stats().copied();
                (p.metrics(), 1.0, run, governor, None)
            }
            ProfileMode::Convergent(config) => {
                let p = profile_sharded(&trace, self.shards, || {
                    ConvergentProfiler::new(tracker, config)
                });
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, None)
            }
            ProfileMode::Adaptive(config, budget) => {
                let p = profile_sharded(&trace, self.shards, || {
                    AdaptiveProfiler::new(tracker, config, budget)
                });
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, Some(p.phase_stats()))
            }
            ProfileMode::Sampled(strategy) => {
                let p = profile_sharded(&trace, self.shards, || {
                    SampledProfiler::new(tracker, strategy)
                });
                p.tnv_events().add_to(events);
                p.events().add_to(events);
                (p.metrics(), p.overall_profile_fraction(), run, None, None)
            }
        }
    }

    fn profile_one(&self, w: &Workload, ds: DataSet) -> WorkloadProfile {
        let instrumenter = Instrumenter::new().select(self.selection.clone());
        let cfg = w.machine_config(ds);
        let mut events = Counts::new();
        let clock = Stopwatch::start();
        let (metrics, profile_fraction, run, governor, phase) = if self.shards > 1 {
            self.profile_one_sharded(w, ds, &instrumenter, &mut events)
        } else {
            self.profile_one_serial(w, ds, &instrumenter, &mut events)
        };
        let wall_ns = clock.elapsed_ns();
        if let Some(gov) = &governor {
            events.add(CounterId::EntitiesDegraded, gov.entities_degraded);
            events.add(CounterId::EntitiesDropped, gov.entities_dropped);
        }
        if let Some(ph) = &phase {
            events.add(CounterId::PhaseWindows, ph.windows);
            events.add(CounterId::PhaseShifts, ph.shifts_detected);
            events.add(CounterId::PhaseRearms, ph.rearms);
            events.add(CounterId::PhaseRearmsDenied, ph.rearms_denied);
        }
        events.add(CounterId::InstrEvents, run.counts.instr_events);
        events.add(CounterId::LoadEvents, run.counts.load_events);
        events.add(CounterId::StoreEvents, run.counts.store_events);
        events.add(CounterId::ProcEntryEvents, run.counts.entry_events);
        events.add(CounterId::ProcExitEvents, run.counts.exit_events);
        events.add(CounterId::WorkloadsProfiled, 1);

        let baseline_wall_ns = self.measure_baseline.then(|| {
            let clock = Stopwatch::start();
            let mut machine = Machine::new(w.program().clone(), cfg)
                .unwrap_or_else(|e| panic!("{} [{}] baseline: {e}", w.name(), ds.name()));
            machine
                .run(self.budget)
                .unwrap_or_else(|e| panic!("{} [{}] baseline: {e}", w.name(), ds.name()));
            clock.elapsed_ns()
        });

        if self.recorder.enabled() {
            self.recorder.add_counts(&events);
            self.recorder.observe(HistId::WorkloadWallNs, wall_ns);
        }

        WorkloadProfile {
            name: w.name(),
            aggregate: aggregate(&metrics),
            metrics,
            profile_fraction,
            instructions: run.outcome.instructions,
            events,
            wall_ns,
            baseline_wall_ns,
            governor,
            phase,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_profiles_whole_suite() {
        let profile = SuiteRunner::new().run(DataSet::Test);
        assert_eq!(profile.workloads.len(), suite().len());
        for w in &profile.workloads {
            assert!(w.aggregate.executions > 0, "{} profiled nothing", w.name);
            assert!((w.profile_fraction - 1.0).abs() < 1e-12);
        }
        assert!(profile.total_instructions() > 0);
        assert!(profile.render("suite").contains(profile.workloads[0].name));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = SuiteRunner::new().jobs(1).run(DataSet::Test);
        let parallel = SuiteRunner::new().jobs(4).run(DataSet::Test);
        assert_eq!(serial.workloads.len(), parallel.workloads.len());
        for (s, p) in serial.workloads.iter().zip(&parallel.workloads) {
            assert_eq!(s.name, p.name, "canonical order preserved");
            assert_eq!(s.metrics, p.metrics);
            assert_eq!(s.instructions, p.instructions);
        }
    }

    #[test]
    fn convergent_mode_profiles_a_fraction() {
        let runner = SuiteRunner::new()
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Convergent(ConvergentConfig::default()));
        let profile = runner.run_workloads(&suite()[..2], DataSet::Test);
        for w in &profile.workloads {
            assert!(w.profile_fraction <= 1.0);
            assert!(w.aggregate.executions > 0);
        }
    }

    #[test]
    fn sharded_run_matches_serial_for_exact_modes() {
        let workloads = &suite()[..2];
        for mode in [
            ProfileMode::Full,
            ProfileMode::Convergent(ConvergentConfig::default()),
            ProfileMode::Adaptive(ConvergentConfig::default(), PhaseBudget::default()),
            ProfileMode::Sampled(SampleStrategy::Periodic { period: 10 }),
        ] {
            let serial = SuiteRunner::new().mode(mode).run_workloads(workloads, DataSet::Test);
            let sharded =
                SuiteRunner::new().mode(mode).shards(7).run_workloads(workloads, DataSet::Test);
            for (s, h) in serial.workloads.iter().zip(&sharded.workloads) {
                assert_eq!(s.metrics, h.metrics, "{} {mode:?}", s.name);
                assert_eq!(s.profile_fraction, h.profile_fraction, "{}", s.name);
                assert_eq!(s.instructions, h.instructions, "{}", s.name);
                assert_eq!(s.phase, h.phase, "{} {mode:?}", s.name);
                // Event counters agree too, once the sharded-only trace
                // counters are accounted for: over loads, every delivered
                // event is one trace event.
                let mut expect = s.events;
                expect.add(CounterId::TraceShards, 7);
                let trace_events = s.events.get(CounterId::InstrEvents);
                expect.add(CounterId::TraceEvents, trace_events);
                expect.add(
                    CounterId::TraceChunks,
                    trace_events.div_ceil(trace_codec::DEFAULT_CHUNK_EVENTS as u64),
                );
                assert_eq!(h.events, expect, "{} {mode:?}", s.name);
            }
        }
    }

    #[test]
    fn adaptive_mode_reports_phase_stats_and_others_do_not() {
        let budget = PhaseBudget { max_rearms: 4, window: 256 };
        let profile = SuiteRunner::new()
            .mode(ProfileMode::Adaptive(ConvergentConfig::default(), budget))
            .run_workloads(&suite()[..2], DataSet::Test);
        for w in &profile.workloads {
            let ps = w.phase.expect("adaptive run reports phase stats");
            assert!(ps.windows > 0, "{} completed no windows", w.name);
            assert_eq!(w.events.get(CounterId::PhaseWindows), ps.windows, "{}", w.name);
            assert_eq!(w.events.get(CounterId::PhaseShifts), ps.shifts_detected, "{}", w.name);
            assert_eq!(w.events.get(CounterId::PhaseRearms), ps.rearms, "{}", w.name);
            assert_eq!(w.events.get(CounterId::PhaseRearmsDenied), ps.rearms_denied, "{}", w.name);
        }
        let full = SuiteRunner::new().run_workloads(&suite()[..2], DataSet::Test);
        assert!(full.workloads.iter().all(|w| w.phase.is_none()));
        let conv = SuiteRunner::new()
            .mode(ProfileMode::Convergent(ConvergentConfig::default()))
            .run_workloads(&suite()[..1], DataSet::Test);
        assert!(conv.workloads.iter().all(|w| w.phase.is_none()));
    }

    #[test]
    fn workload_events_and_recorder_agree() {
        use vp_obs::MemRecorder;
        let rec = Arc::new(MemRecorder::new());
        let profile =
            SuiteRunner::new().recorder(rec.clone()).run_workloads(&suite()[..3], DataSet::Test);
        let mut summed = Counts::new();
        for w in &profile.workloads {
            assert!(w.events.get(CounterId::InstrEvents) > 0, "{}", w.name);
            assert_eq!(w.events.get(CounterId::WorkloadsProfiled), 1);
            // Full mode over loads: every delivered instruction event is
            // observed into a TNV table, and each observation is exactly
            // one of hit/insert/evict.
            assert_eq!(
                w.events.get(CounterId::TnvHits)
                    + w.events.get(CounterId::TnvInserts)
                    + w.events.get(CounterId::TnvEvictions),
                w.events.get(CounterId::InstrEvents),
                "{}",
                w.name
            );
            summed.merge(&w.events);
        }
        // The recorder aggregates exactly the per-workload counts (plus
        // the parallel driver's WorkerItems, one per workload here).
        let mut expected = summed;
        expected.add(CounterId::WorkerItems, profile.workloads.len() as u64);
        assert_eq!(rec.snapshot(), expected);
        assert_eq!(rec.hist(vp_obs::HistId::WorkloadWallNs).count(), 3);
    }

    #[test]
    fn baseline_replay_enables_slowdown() {
        let profile =
            SuiteRunner::new().measure_baseline(true).run_workloads(&suite()[..1], DataSet::Test);
        let w = &profile.workloads[0];
        assert!(w.baseline_wall_ns.is_some());
        assert!(w.slowdown().unwrap() > 0.0);
        let without = SuiteRunner::new().run_workloads(&suite()[..1], DataSet::Test);
        assert_eq!(without.workloads[0].baseline_wall_ns, None);
        assert_eq!(without.workloads[0].slowdown(), None);
    }

    #[test]
    fn try_run_matches_run_on_a_clean_suite() {
        let workloads = &suite()[..3];
        let plain = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
        let outcome = SuiteRunner::new().try_run_workloads(workloads, DataSet::Test);
        assert!(outcome.is_clean());
        assert_eq!(outcome.faults.total(), 0);
        assert_eq!(outcome.render_failures(), "");
        assert_eq!(outcome.profile.workloads.len(), plain.workloads.len());
        for (a, b) in outcome.profile.workloads.iter().zip(&plain.workloads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn persistent_panic_exhausts_retries_and_quarantines() {
        let plan = Arc::new(FaultPlan::parse("panic:workload/gcc").unwrap());
        let policy = RetryPolicy { max_retries: 2, backoff_base_ms: 0, backoff_cap_ms: 0 };
        let outcome = SuiteRunner::new()
            .faults(plan)
            .retry(policy)
            .try_run_workloads(&suite()[..3], DataSet::Test);
        assert_eq!(outcome.profile.workloads.len(), 2, "other workloads completed");
        assert!(outcome.profile.workloads.iter().all(|w| w.name != "gcc"));
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].name, "gcc");
        assert_eq!(outcome.failures[0].attempts, 3, "first try + two retries");
        assert!(outcome.failures[0].error.contains("fault injected: workload/gcc"));
        assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 3);
        assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 2);
        assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 1);
        let table = outcome.render_failures();
        assert!(table.contains("failed") && table.contains("gcc"), "{table}");
    }

    #[test]
    fn transient_panic_is_absorbed_by_a_retry() {
        use vp_obs::MemRecorder;
        let rec = Arc::new(MemRecorder::new());
        let plan = Arc::new(FaultPlan::parse("panic:workload/li@1x1").unwrap());
        let policy = RetryPolicy { max_retries: 2, backoff_base_ms: 0, backoff_cap_ms: 0 };
        let clean = SuiteRunner::new().run_workloads(&suite()[..3], DataSet::Test);
        let outcome = SuiteRunner::new()
            .faults(plan)
            .retry(policy)
            .recorder(rec.clone())
            .try_run_workloads(&suite()[..3], DataSet::Test);
        assert!(outcome.is_clean());
        assert_eq!(outcome.profile.workloads.len(), 3);
        for (a, b) in outcome.profile.workloads.iter().zip(&clean.workloads) {
            assert_eq!(a.name, b.name, "canonical order restored after retry");
            assert_eq!(a.metrics, b.metrics);
        }
        assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 0);
        // The fault counters also reached the recorder.
        let counts = rec.snapshot();
        assert_eq!(counts.get(CounterId::WorkloadPanic), 1);
        assert_eq!(counts.get(CounterId::WorkloadRetry), 1);
    }

    #[test]
    fn generous_mem_budget_matches_ungoverned_run() {
        let workloads = &suite()[..2];
        let plain = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
        let governed = SuiteRunner::new()
            .mem_budget(Some(MemBudget::mib(64)))
            .run_workloads(workloads, DataSet::Test);
        for (p, g) in plain.workloads.iter().zip(&governed.workloads) {
            assert_eq!(p.metrics, g.metrics, "{}", p.name);
            assert_eq!(p.events, g.events, "{}", p.name);
            assert!(p.governor.is_none());
            let gov = g.governor.expect("governed run reports stats");
            assert!(!gov.intervened(), "{}: {gov:?}", g.name);
            assert!(gov.bytes_peak > 0);
        }
    }

    #[test]
    fn governed_sharded_run_matches_governed_serial() {
        let workloads = &suite()[..2];
        let budget = Some(MemBudget::bytes(48 * 1024));
        let serial = SuiteRunner::new().mem_budget(budget).run_workloads(workloads, DataSet::Test);
        let sharded = SuiteRunner::new()
            .mem_budget(budget)
            .shards(1)
            .jobs(4)
            .run_workloads(workloads, DataSet::Test);
        for (s, h) in serial.workloads.iter().zip(&sharded.workloads) {
            assert_eq!(s.metrics, h.metrics, "{}", s.name);
            assert_eq!(s.governor, h.governor, "{}", s.name);
        }
    }

    #[test]
    fn hang_fault_times_out_and_quarantines_only_that_workload() {
        let plan = Arc::new(FaultPlan::parse("hang:workload/gcc").unwrap());
        let clean = SuiteRunner::new().run_workloads(&suite()[..3], DataSet::Test);
        let outcome = SuiteRunner::new()
            .faults(plan)
            .retry(RetryPolicy::none())
            .deadline(Some(Duration::from_millis(150)))
            .try_run_workloads(&suite()[..3], DataSet::Test);
        assert_eq!(outcome.failures.len(), 1);
        let f = &outcome.failures[0];
        assert_eq!(f.name, "gcc");
        assert_eq!(f.kind, FailureKind::Timeout);
        assert_eq!(f.kind_str(), "timeout");
        assert_eq!(f.error, "deadline exceeded");
        assert_eq!(outcome.faults.get(CounterId::WorkloadTimeout), 1);
        assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 0);
        assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 1);
        // Everything that was not hung completed identically to a clean run.
        let done: Vec<_> = outcome.profile.workloads.iter().map(|w| w.name).collect();
        assert_eq!(done, ["compress", "li"]);
        for w in &outcome.profile.workloads {
            let reference = clean.workloads.iter().find(|c| c.name == w.name).unwrap();
            assert_eq!(w.metrics, reference.metrics, "{}", w.name);
        }
        let table = outcome.render_failures();
        assert!(table.starts_with("failed"), "{table}");
        assert!(table.contains("timeout") && table.contains("deadline exceeded"), "{table}");
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy { max_retries: 10, backoff_base_ms: 25, backoff_cap_ms: 250 };
        assert_eq!(policy.backoff_ms(1), 25);
        assert_eq!(policy.backoff_ms(2), 50);
        assert_eq!(policy.backoff_ms(4), 200);
        assert_eq!(policy.backoff_ms(5), 250, "capped");
        assert_eq!(policy.backoff_ms(60), 250, "no overflow at large rounds");
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn pooled_rekeys_and_sums() {
        let profile = SuiteRunner::new().run_workloads(&suite()[..3], DataSet::Test);
        let (pool, agg) = profile.pooled();
        let per_workload: usize = profile.workloads.iter().map(|w| w.metrics.len()).sum();
        assert_eq!(pool.len(), per_workload, "disjoint shards pool without collisions");
        let execs: u64 = profile.workloads.iter().map(|w| w.aggregate.executions).sum();
        assert_eq!(agg.executions, execs);
    }
}
