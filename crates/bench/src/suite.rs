//! Suite-profiling driver: profile every workload of the benchmark suite
//! and render one table, serially or fanned out across worker threads.
//!
//! Parallelism is *per workload* — each worker profiles whole workloads,
//! so a workload's profile is produced by exactly one profiler instance
//! and `--jobs N` output is identical to a serial run by construction.
//! Only the order in which workloads *finish* varies; results are
//! reassembled in canonical suite order.

use std::fmt;
use std::sync::Arc;

use vp_core::{
    aggregate, merge_entity_metrics, render_metric_table, report::row, track::TrackerConfig,
    Aggregate, ConvergentConfig, ConvergentProfiler, EntityMetrics, InstructionProfiler, ReportRow,
    SampleStrategy, SampledProfiler,
};
use vp_instrument::{parallel_map_observed, Instrumenter, Selection};
use vp_obs::recorder::Stopwatch;
use vp_obs::{CounterId, Counts, HistId, NullRecorder, Recorder};
use vp_sim::Machine;
use vp_workloads::{suite, DataSet, Workload};

use crate::BUDGET;

/// Which profiler the runner attaches to each workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileMode {
    /// Full profiling: every selected execution observed
    /// ([`InstructionProfiler`]).
    Full,
    /// The paper's convergent profiler (bursts with adaptive back-off).
    Convergent(ConvergentConfig),
    /// The CPI-style sampling baseline.
    Sampled(SampleStrategy),
}

/// One workload's profiling result.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: &'static str,
    /// Per-entity metrics, ordered by entity id.
    pub metrics: Vec<EntityMetrics>,
    /// Execution-weighted aggregate of `metrics`.
    pub aggregate: Aggregate,
    /// Fraction of selected executions actually profiled (1.0 in
    /// [`ProfileMode::Full`]).
    pub profile_fraction: f64,
    /// Dynamic instructions the run executed.
    pub instructions: u64,
    /// Self-profiling event counts of this workload's run (analysis
    /// events delivered, TNV-table work, sampler decisions). Plain
    /// deterministic counters: identical across `--jobs` settings.
    pub events: Counts,
    /// Wall time of the instrumented run, nanoseconds.
    pub wall_ns: u64,
    /// Wall time of an uninstrumented replay of the same workload, when
    /// baseline measurement was requested — the denominator of the
    /// profiling-slowdown figure.
    pub baseline_wall_ns: Option<u64>,
}

impl WorkloadProfile {
    /// Instrumented wall time over uninstrumented replay time, when a
    /// baseline was measured.
    pub fn slowdown(&self) -> Option<f64> {
        let base = self.baseline_wall_ns?;
        (base > 0).then(|| self.wall_ns as f64 / base as f64)
    }
}

/// The whole suite's profiling results, in canonical suite order.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// One entry per workload.
    pub workloads: Vec<WorkloadProfile>,
}

impl SuiteProfile {
    /// Report rows (one per workload), ready for
    /// [`render_metric_table`].
    pub fn rows(&self) -> Vec<ReportRow> {
        self.workloads.iter().map(|w| row(w.name, &w.metrics)).collect()
    }

    /// Renders the per-workload metric table.
    pub fn render(&self, title: &str) -> String {
        render_metric_table(title, &self.rows())
    }

    /// Pools every workload's entities into one metric set, re-keying ids
    /// as `workload_index << 32 | entity_id` so sites from different
    /// workloads never collide, and returns the suite-wide aggregate.
    ///
    /// Uses [`merge_entity_metrics`], so pooling two disjoint shards is
    /// exact (no entity is shared across workloads).
    pub fn pooled(&self) -> (Vec<EntityMetrics>, Aggregate) {
        let mut pool: Vec<EntityMetrics> = Vec::new();
        for (wi, w) in self.workloads.iter().enumerate() {
            let rekeyed: Vec<EntityMetrics> = w
                .metrics
                .iter()
                .map(|m| {
                    let mut m = m.clone();
                    m.id |= (wi as u64) << 32;
                    m
                })
                .collect();
            pool = merge_entity_metrics(&pool, &rekeyed);
        }
        let agg = aggregate(&pool);
        (pool, agg)
    }

    /// Total dynamic instructions across the suite.
    pub fn total_instructions(&self) -> u64 {
        self.workloads.iter().map(|w| w.instructions).sum()
    }
}

/// Profiles the workload suite, optionally in parallel.
///
/// ```
/// use vp_bench::suite::SuiteRunner;
/// use vp_workloads::DataSet;
///
/// let profile = SuiteRunner::new().jobs(2).run(DataSet::Test);
/// assert_eq!(profile.workloads.len(), vp_workloads::suite().len());
/// ```
#[derive(Clone)]
pub struct SuiteRunner {
    jobs: usize,
    selection: Selection,
    tracker: TrackerConfig,
    budget: u64,
    mode: ProfileMode,
    recorder: Arc<dyn Recorder>,
    measure_baseline: bool,
}

impl fmt::Debug for SuiteRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteRunner")
            .field("jobs", &self.jobs)
            .field("selection", &self.selection)
            .field("tracker", &self.tracker)
            .field("budget", &self.budget)
            .field("mode", &self.mode)
            .field("recorder_enabled", &self.recorder.enabled())
            .field("measure_baseline", &self.measure_baseline)
            .finish()
    }
}

impl Default for SuiteRunner {
    fn default() -> SuiteRunner {
        SuiteRunner::new()
    }
}

impl SuiteRunner {
    /// A serial runner profiling loads with exact ground truth.
    pub fn new() -> SuiteRunner {
        SuiteRunner {
            jobs: 1,
            selection: Selection::LoadsOnly,
            tracker: TrackerConfig::with_full(),
            budget: BUDGET,
            mode: ProfileMode::Full,
            recorder: Arc::new(NullRecorder),
            measure_baseline: false,
        }
    }

    /// Sets the worker count (0 = available parallelism, 1 = serial).
    pub fn jobs(mut self, jobs: usize) -> SuiteRunner {
        self.jobs = jobs;
        self
    }

    /// Sets which instructions are profiled.
    pub fn selection(mut self, selection: Selection) -> SuiteRunner {
        self.selection = selection;
        self
    }

    /// Sets the per-entity tracker configuration.
    pub fn tracker(mut self, tracker: TrackerConfig) -> SuiteRunner {
        self.tracker = tracker;
        self
    }

    /// Sets the instruction budget per workload run.
    pub fn budget(mut self, budget: u64) -> SuiteRunner {
        self.budget = budget;
        self
    }

    /// Sets the profiling mode.
    pub fn mode(mut self, mode: ProfileMode) -> SuiteRunner {
        self.mode = mode;
        self
    }

    /// Attaches a [`Recorder`] sink for self-profiling telemetry: each
    /// workload's event counts and wall time are flushed into it, and the
    /// parallel driver reports per-worker busy/queue-wait times. The
    /// default [`NullRecorder`] keeps every instrumented site at a single
    /// branch.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> SuiteRunner {
        self.recorder = recorder;
        self
    }

    /// Also replays every workload *uninstrumented* and records the
    /// baseline wall time, enabling [`WorkloadProfile::slowdown`]. Doubles
    /// the emulation work, so off by default.
    pub fn measure_baseline(mut self, measure: bool) -> SuiteRunner {
        self.measure_baseline = measure;
        self
    }

    /// Profiles the whole built-in suite on `ds`.
    ///
    /// # Panics
    ///
    /// Panics if a workload run faults (a harness bug, as in the
    /// experiment binaries).
    pub fn run(&self, ds: DataSet) -> SuiteProfile {
        self.run_workloads(&suite(), ds)
    }

    /// Profiles an explicit workload list on `ds`, one workload per
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics if a workload run faults.
    pub fn run_workloads(&self, workloads: &[Workload], ds: DataSet) -> SuiteProfile {
        let workloads = parallel_map_observed(
            self.jobs,
            workloads,
            |w| self.profile_one(w, ds),
            &*self.recorder,
        );
        SuiteProfile { workloads }
    }

    fn profile_one(&self, w: &Workload, ds: DataSet) -> WorkloadProfile {
        let fail = |e| panic!("{} [{}]: {e}", w.name(), ds.name());
        let instrumenter = Instrumenter::new().select(self.selection.clone());
        let cfg = w.machine_config(ds);
        let mut events = Counts::new();
        let clock = Stopwatch::start();
        let (metrics, profile_fraction, run) = match self.mode {
            ProfileMode::Full => {
                let mut p = InstructionProfiler::new(self.tracker);
                let run = instrumenter
                    .run(w.program(), cfg.clone(), self.budget, &mut p)
                    .unwrap_or_else(fail);
                p.tnv_events().add_to(&mut events);
                (p.metrics(), 1.0, run)
            }
            ProfileMode::Convergent(config) => {
                let mut p = ConvergentProfiler::new(self.tracker, config);
                let run = instrumenter
                    .run(w.program(), cfg.clone(), self.budget, &mut p)
                    .unwrap_or_else(fail);
                p.tnv_events().add_to(&mut events);
                p.events().add_to(&mut events);
                (p.metrics(), p.overall_profile_fraction(), run)
            }
            ProfileMode::Sampled(strategy) => {
                let mut p = SampledProfiler::new(self.tracker, strategy);
                let run = instrumenter
                    .run(w.program(), cfg.clone(), self.budget, &mut p)
                    .unwrap_or_else(fail);
                p.tnv_events().add_to(&mut events);
                p.events().add_to(&mut events);
                (p.metrics(), p.overall_profile_fraction(), run)
            }
        };
        let wall_ns = clock.elapsed_ns();
        events.add(CounterId::InstrEvents, run.counts.instr_events);
        events.add(CounterId::LoadEvents, run.counts.load_events);
        events.add(CounterId::StoreEvents, run.counts.store_events);
        events.add(CounterId::ProcEntryEvents, run.counts.entry_events);
        events.add(CounterId::ProcExitEvents, run.counts.exit_events);
        events.add(CounterId::WorkloadsProfiled, 1);

        let baseline_wall_ns = self.measure_baseline.then(|| {
            let clock = Stopwatch::start();
            let mut machine = Machine::new(w.program().clone(), cfg)
                .unwrap_or_else(|e| panic!("{} [{}] baseline: {e}", w.name(), ds.name()));
            machine
                .run(self.budget)
                .unwrap_or_else(|e| panic!("{} [{}] baseline: {e}", w.name(), ds.name()));
            clock.elapsed_ns()
        });

        if self.recorder.enabled() {
            self.recorder.add_counts(&events);
            self.recorder.observe(HistId::WorkloadWallNs, wall_ns);
        }

        WorkloadProfile {
            name: w.name(),
            aggregate: aggregate(&metrics),
            metrics,
            profile_fraction,
            instructions: run.outcome.instructions,
            events,
            wall_ns,
            baseline_wall_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_profiles_whole_suite() {
        let profile = SuiteRunner::new().run(DataSet::Test);
        assert_eq!(profile.workloads.len(), suite().len());
        for w in &profile.workloads {
            assert!(w.aggregate.executions > 0, "{} profiled nothing", w.name);
            assert!((w.profile_fraction - 1.0).abs() < 1e-12);
        }
        assert!(profile.total_instructions() > 0);
        assert!(profile.render("suite").contains(profile.workloads[0].name));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = SuiteRunner::new().jobs(1).run(DataSet::Test);
        let parallel = SuiteRunner::new().jobs(4).run(DataSet::Test);
        assert_eq!(serial.workloads.len(), parallel.workloads.len());
        for (s, p) in serial.workloads.iter().zip(&parallel.workloads) {
            assert_eq!(s.name, p.name, "canonical order preserved");
            assert_eq!(s.metrics, p.metrics);
            assert_eq!(s.instructions, p.instructions);
        }
    }

    #[test]
    fn convergent_mode_profiles_a_fraction() {
        let runner = SuiteRunner::new()
            .tracker(TrackerConfig::default())
            .mode(ProfileMode::Convergent(ConvergentConfig::default()));
        let profile = runner.run_workloads(&suite()[..2], DataSet::Test);
        for w in &profile.workloads {
            assert!(w.profile_fraction <= 1.0);
            assert!(w.aggregate.executions > 0);
        }
    }

    #[test]
    fn workload_events_and_recorder_agree() {
        use vp_obs::MemRecorder;
        let rec = Arc::new(MemRecorder::new());
        let profile =
            SuiteRunner::new().recorder(rec.clone()).run_workloads(&suite()[..3], DataSet::Test);
        let mut summed = Counts::new();
        for w in &profile.workloads {
            assert!(w.events.get(CounterId::InstrEvents) > 0, "{}", w.name);
            assert_eq!(w.events.get(CounterId::WorkloadsProfiled), 1);
            // Full mode over loads: every delivered instruction event is
            // observed into a TNV table, and each observation is exactly
            // one of hit/insert/evict.
            assert_eq!(
                w.events.get(CounterId::TnvHits)
                    + w.events.get(CounterId::TnvInserts)
                    + w.events.get(CounterId::TnvEvictions),
                w.events.get(CounterId::InstrEvents),
                "{}",
                w.name
            );
            summed.merge(&w.events);
        }
        // The recorder aggregates exactly the per-workload counts (plus
        // the parallel driver's WorkerItems, one per workload here).
        let mut expected = summed;
        expected.add(CounterId::WorkerItems, profile.workloads.len() as u64);
        assert_eq!(rec.snapshot(), expected);
        assert_eq!(rec.hist(vp_obs::HistId::WorkloadWallNs).count(), 3);
    }

    #[test]
    fn baseline_replay_enables_slowdown() {
        let profile =
            SuiteRunner::new().measure_baseline(true).run_workloads(&suite()[..1], DataSet::Test);
        let w = &profile.workloads[0];
        assert!(w.baseline_wall_ns.is_some());
        assert!(w.slowdown().unwrap() > 0.0);
        let without = SuiteRunner::new().run_workloads(&suite()[..1], DataSet::Test);
        assert_eq!(without.workloads[0].baseline_wall_ns, None);
        assert_eq!(without.workloads[0].slowdown(), None);
    }

    #[test]
    fn pooled_rekeys_and_sums() {
        let profile = SuiteRunner::new().run_workloads(&suite()[..3], DataSet::Test);
        let (pool, agg) = profile.pooled();
        let per_workload: usize = profile.workloads.iter().map(|w| w.metrics.len()).sum();
        assert_eq!(pool.len(), per_workload, "disjoint shards pool without collisions");
        let execs: u64 = profile.workloads.iter().map(|w| w.aggregate.executions).sum();
        assert_eq!(agg.executions, execs);
    }
}
