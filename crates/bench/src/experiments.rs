//! Experiment implementations shared between the `exp_*` binaries, the
//! golden-file regression tests and the CLI.
//!
//! Each experiment returns an [`ExpReport`]: the human-readable table text
//! the binary prints, plus the telemetry records behind it. Keeping the
//! computation here (instead of inside `main`) makes the tables
//! reproducible under test and lets every number in the report land in
//! `telemetry.jsonl` too.
//!
//! Determinism contract: with wall-clock fields excluded (they are listed
//! in [`vp_obs::telemetry::VOLATILE_KEYS`]), every record and every table
//! line is byte-identical across runs and across `--jobs` settings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use vp_core::{
    compare, track::TrackerConfig, ConvergentConfig, ConvergentProfiler, FullProfile,
    InstructionProfiler, Policy, SampleStrategy, SampledProfiler, TnvTable,
};
use vp_instrument::{parallel_map, Analysis, Instrumenter, Selection};
use vp_obs::recorder::Stopwatch;
use vp_obs::telemetry::record;
use vp_obs::{Counts, Json};
use vp_sim::Machine;
use vp_workloads::{DataSet, Workload};

use crate::{load_profile, value_stream, BUDGET};

/// One experiment's output: the report text a binary prints and the
/// telemetry records (schema-versioned, see [`vp_obs::telemetry`]) that
/// carry the same numbers machine-readably.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpReport {
    /// The rendered human-readable report (tables included).
    pub text: String,
    /// Telemetry records mirroring the report's numbers.
    pub records: Vec<Json>,
}

fn heading_line(text: &mut String, id: &str, title: &str) {
    let _ = writeln!(text, "==== {id}: {title} ====");
}

/// E1 — Table III.1: the benchmark suite, its data sets and dynamic
/// instruction counts. `jobs` fans the workload runs out over worker
/// threads; the report is identical either way.
pub fn benchmarks(workloads: &[Workload], jobs: usize) -> ExpReport {
    let mut text = String::new();
    heading_line(&mut text, "E1", "benchmark programs and data sets (Table III.1)");
    let _ = writeln!(
        text,
        "{:<10} {:>12} {:>14} {:>14} description",
        "program", "static size", "test Kinstrs", "train Kinstrs"
    );
    let rows = parallel_map(jobs, workloads, |w| {
        let test = w.run(DataSet::Test, BUDGET).expect("test run").instructions;
        let train = w.run(DataSet::Train, BUDGET).expect("train run").instructions;
        (test, train)
    });
    let mut records =
        vec![record("experiment", "E1", vec![("workloads", Json::U64(workloads.len() as u64))])];
    for (w, (test, train)) in workloads.iter().zip(rows) {
        let _ = writeln!(
            text,
            "{:<10} {:>12} {:>14.1} {:>14.1} {}",
            w.name(),
            w.program().len(),
            test as f64 / 1_000.0,
            train as f64 / 1_000.0,
            w.description()
        );
        records.push(record(
            "measure",
            w.name(),
            vec![
                ("exp", Json::Str("E1".to_string())),
                ("static_size", Json::U64(w.program().len() as u64)),
                ("test_instructions", Json::U64(test)),
                ("train_instructions", Json::U64(train)),
            ],
        ));
    }
    ExpReport { text, records }
}

fn run_convergent(w: &Workload, config: ConvergentConfig) -> ConvergentProfiler {
    let mut profiler = ConvergentProfiler::new(TrackerConfig::default(), config);
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut profiler)
        .expect("convergent run");
    profiler
}

/// E7 — the convergent profiler: overhead (fraction of executions
/// profiled) and accuracy (invariance error versus the full profile), per
/// benchmark, plus a sweep over sampler aggressiveness and an ablation
/// against flat sampling at a matched budget.
pub fn convergent(workloads: &[Workload]) -> ExpReport {
    let mut text = String::new();
    heading_line(&mut text, "E7", "convergent profiler: overhead and accuracy vs full profiling");
    let _ = writeln!(
        text,
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "program", "full inv%", "conv inv%", "profiled%", "mean|diff|"
    );
    let mut records =
        vec![record("experiment", "E7", vec![("workloads", Json::U64(workloads.len() as u64))])];
    for w in workloads {
        let full = load_profile(w, DataSet::Test);
        let conv = run_convergent(w, ConvergentConfig::default());
        let cmp = compare(&full.metrics(), &conv.metrics());
        let _ = writeln!(
            text,
            "{:<10} {:>10.1} {:>10.1} {:>11.1}% {:>12.4}",
            w.name(),
            full.aggregate().inv_top1 * 100.0,
            conv.aggregate().inv_top1 * 100.0,
            conv.overall_profile_fraction() * 100.0,
            cmp.mean_abs_inv_diff,
        );
        let mut events = Counts::new();
        conv.events().add_to(&mut events);
        conv.tnv_events().add_to(&mut events);
        records.push(record(
            "measure",
            w.name(),
            vec![
                ("exp", Json::Str("E7".to_string())),
                ("full_inv_top1", Json::F64(full.aggregate().inv_top1)),
                ("conv_inv_top1", Json::F64(conv.aggregate().inv_top1)),
                ("profile_fraction", Json::F64(conv.overall_profile_fraction())),
                ("mean_abs_inv_diff", Json::F64(cmp.mean_abs_inv_diff)),
                ("events", events.to_json()),
            ],
        ));
    }

    let _ = writeln!(text, "\nsampler sweep (suite means): burst length x backoff aggressiveness");
    let _ = writeln!(text, "{:<26} {:>12} {:>12}", "configuration", "profiled%", "mean|diff|");
    let sweeps = [
        (
            "burst 500, skip 1k, x2",
            ConvergentConfig {
                burst: 500,
                initial_skip: 1_000,
                backoff: 2.0,
                ..ConvergentConfig::default()
            },
        ),
        ("burst 200, skip 2k, x4", ConvergentConfig::default()),
        (
            "burst 100, skip 4k, x8",
            ConvergentConfig {
                burst: 100,
                initial_skip: 4_000,
                backoff: 8.0,
                ..ConvergentConfig::default()
            },
        ),
        (
            "burst 50, skip 8k, x16",
            ConvergentConfig {
                burst: 50,
                initial_skip: 8_000,
                backoff: 16.0,
                ..ConvergentConfig::default()
            },
        ),
    ];
    for (name, config) in sweeps {
        let mut profiled = 0.0;
        let mut err = 0.0;
        for w in workloads {
            let full = load_profile(w, DataSet::Test);
            let conv = run_convergent(w, config);
            profiled += conv.overall_profile_fraction();
            err += compare(&full.metrics(), &conv.metrics()).mean_abs_inv_diff;
        }
        let n = workloads.len() as f64;
        let _ = writeln!(text, "{:<26} {:>11.1}% {:>12.4}", name, profiled / n * 100.0, err / n);
        records.push(record(
            "measure",
            name,
            vec![
                ("exp", Json::Str("E7-sweep".to_string())),
                ("profile_fraction", Json::F64(profiled / n)),
                ("mean_abs_inv_diff", Json::F64(err / n)),
            ],
        ));
    }

    // Ablation: the convergent sampler against CPI-style flat sampling
    // (Anderson et al. [1]) at a matched profiling budget. The convergent
    // profiler spends its budget where profiles have NOT converged, so at
    // equal profiled fractions it should be at least as accurate.
    let _ = writeln!(text, "\nablation vs flat sampling (suite means):");
    let _ = writeln!(text, "{:<26} {:>12} {:>12}", "scheme", "profiled%", "mean|diff|");
    let mut conv_frac = 0.0;
    let mut conv_err = 0.0;
    for w in workloads {
        let full = load_profile(w, DataSet::Test);
        let conv = run_convergent(w, ConvergentConfig::default());
        conv_frac += conv.overall_profile_fraction();
        conv_err += compare(&full.metrics(), &conv.metrics()).mean_abs_inv_diff;
    }
    conv_frac /= workloads.len() as f64;
    conv_err /= workloads.len() as f64;
    let _ = writeln!(
        text,
        "{:<26} {:>11.1}% {:>12.4}",
        "convergent (default)",
        conv_frac * 100.0,
        conv_err
    );
    records.push(record(
        "measure",
        "convergent (default)",
        vec![
            ("exp", Json::Str("E7-ablation".to_string())),
            ("profile_fraction", Json::F64(conv_frac)),
            ("mean_abs_inv_diff", Json::F64(conv_err)),
        ],
    ));

    // Match the flat samplers' period to the convergent profiler's spend.
    let period = (1.0 / conv_frac).round().max(1.0) as u64;
    for (name, strategy) in [
        (format!("periodic 1/{period}"), SampleStrategy::Periodic { period }),
        (format!("random   1/{period}"), SampleStrategy::Random { period }),
    ] {
        let mut frac = 0.0;
        let mut err = 0.0;
        for w in workloads {
            let full = load_profile(w, DataSet::Test);
            let mut sampled = SampledProfiler::new(TrackerConfig::default(), strategy);
            Instrumenter::new()
                .select(Selection::LoadsOnly)
                .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut sampled)
                .expect("sampled run");
            frac += sampled.overall_profile_fraction();
            err += compare(&full.metrics(), &sampled.metrics()).mean_abs_inv_diff;
        }
        let n = workloads.len() as f64;
        let _ = writeln!(text, "{:<26} {:>11.1}% {:>12.4}", name, frac / n * 100.0, err / n);
        records.push(record(
            "measure",
            &name,
            vec![
                ("exp", Json::Str("E7-ablation".to_string())),
                ("profile_fraction", Json::F64(frac / n)),
                ("mean_abs_inv_diff", Json::F64(err / n)),
            ],
        ));
    }
    ExpReport { text, records }
}

fn policy_error(streams: &[Vec<u64>], capacity: usize, policy: Policy, n: usize) -> f64 {
    let mut weighted = 0.0f64;
    let mut total = 0u64;
    for stream in streams {
        let mut tnv = TnvTable::new(capacity, policy);
        let mut full = FullProfile::new();
        for &v in stream {
            tnv.observe(v);
            full.observe(v);
        }
        let err = (tnv.inv_top(n) - full.inv_all(n)).abs();
        weighted += err * stream.len() as f64;
        total += stream.len() as u64;
    }
    if total == 0 {
        0.0
    } else {
        weighted / total as f64
    }
}

/// E6 — TNV replacement-policy accuracy across table sizes and policies:
/// execution-weighted mean `|Inv-Top(N) - Inv-All(N)|`, suite-wide, plus
/// the LFU lock-in stress case.
///
/// Streams are collected per PC into a sorted map, so the error sums run
/// in a deterministic order (summing f64 in hash-map order used to make
/// the low digits run-dependent).
pub fn tnv_policy(workloads: &[Workload]) -> ExpReport {
    let mut text = String::new();
    heading_line(&mut text, "E6", "TNV replacement policy accuracy (|Inv-Top(N) - Inv-All(N)|)");

    // Gather per-load value streams across the suite, in (workload, pc)
    // order so every float accumulation below is order-stable.
    let mut streams: Vec<Vec<u64>> = Vec::new();
    for w in workloads {
        let mut per_pc: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (pc, v) in value_stream(w, DataSet::Test, Selection::LoadsOnly) {
            per_pc.entry(pc).or_default().push(v);
        }
        streams.extend(per_pc.into_values());
    }
    let total_values: usize = streams.iter().map(Vec::len).sum();
    let _ = writeln!(text, "{} load value streams, {} total values\n", streams.len(), total_values);
    let mut records = vec![record(
        "experiment",
        "E6",
        vec![
            ("workloads", Json::U64(workloads.len() as u64)),
            ("streams", Json::U64(streams.len() as u64)),
            ("values", Json::U64(total_values as u64)),
        ],
    )];

    let _ = writeln!(text, "{:<26} {:>8} {:>8} {:>8} {:>8}", "policy", "N=2", "N=4", "N=8", "N=16");
    type PolicyFactory = Box<dyn Fn(usize) -> Policy>;
    let configs: Vec<(String, PolicyFactory)> = vec![
        (
            "lfu-clear (paper)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear { steady: cap / 2, clear_interval: 2000 }),
        ),
        (
            "lfu-clear (interval 500)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear { steady: cap / 2, clear_interval: 500 }),
        ),
        (
            "lfu-clear (steady 1/4)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear {
                steady: (cap / 4).max(1),
                clear_interval: 2000,
            }),
        ),
        ("lfu".to_string(), Box::new(|_| Policy::Lfu)),
        ("lru".to_string(), Box::new(|_| Policy::Lru)),
    ];
    for (name, make) in &configs {
        let errs: Vec<f64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&cap| policy_error(&streams, cap, make(cap), cap))
            .collect();
        let cells: Vec<String> = errs.iter().map(|e| format!("{e:8.4}")).collect();
        let _ = writeln!(text, "{:<26} {}", name, cells.join(" "));
        records.push(record(
            "measure",
            name,
            vec![
                ("exp", Json::Str("E6".to_string())),
                ("err_n2", Json::F64(errs[0])),
                ("err_n4", Json::F64(errs[1])),
                ("err_n8", Json::F64(errs[2])),
                ("err_n16", Json::F64(errs[3])),
            ],
        ));
    }

    // The stress case the clearing policy exists for (the LFU lock-in
    // pathology): an early phase fills the table with moderately hot
    // values; afterwards a new value dominates but arrives interleaved
    // with one-off noise values. Under plain LFU every noise miss evicts
    // the newcomer (it is always the minimum-count entry), so the new hot
    // value can never accumulate. Clearing the bottom part gives it free
    // slots and a full interval to out-count the stale steady entries.
    let _ =
        writeln!(text, "\nLFU lock-in stress: 4 early values x500, then 90% value 9 + 10% noise:");
    let mut stress: Vec<u64> = Vec::new();
    for i in 0..2_000u64 {
        stress.push(1 + i % 4);
    }
    for i in 0..48_000u64 {
        stress.push(if i % 10 == 9 { 1_000 + i } else { 9 });
    }
    let exact = 0.9 * 48_000.0 / 50_000.0 * 100.0;
    for (name, policy) in [
        ("lfu-clear", Policy::LfuClear { steady: 2, clear_interval: 2000 }),
        ("lfu", Policy::Lfu),
        ("lru", Policy::Lru),
    ] {
        let mut tnv = TnvTable::new(4, policy);
        for &v in &stress {
            tnv.observe(v);
        }
        let _ = writeln!(
            text,
            "  {:<10} top value {:?} (true top is 9), Inv-Top(1) {:5.1}% (exact {exact:.1}%)",
            name,
            tnv.top_value(),
            tnv.inv_top(1) * 100.0
        );
        let mut events = Counts::new();
        tnv.events().add_to(&mut events);
        records.push(record(
            "measure",
            name,
            vec![
                ("exp", Json::Str("E6-stress".to_string())),
                ("top_value", tnv.top_value().map_or(Json::Null, Json::U64)),
                ("inv_top1", Json::F64(tnv.inv_top(1))),
                ("events", events.to_json()),
            ],
        ));
    }
    ExpReport { text, records }
}

fn run_plain(w: &Workload) -> u64 {
    let mut machine =
        Machine::new(w.program().clone(), w.machine_config(DataSet::Test)).expect("machine");
    machine.run(BUDGET).expect("run").instructions
}

fn run_with<A: Analysis>(w: &Workload, selection: Selection, analysis: &mut A) -> u64 {
    Instrumenter::new()
        .select(selection)
        .run(w.program(), w.machine_config(DataSet::Test), BUDGET, analysis)
        .expect("instrumented run")
        .counts
        .total()
}

/// Runs `f` once to warm caches and the allocator, then `reps` more times
/// and reports the *median* wall time in nanoseconds together with `f`'s
/// last return value. A single cold timing (the old behaviour) routinely
/// over-reported the first configuration measured by 2x.
fn median_timed<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (T, u64) {
    let mut value = f(); // warm-up, untimed
    let mut times: Vec<u64> = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let clock = Stopwatch::start();
        value = f();
        times.push(clock.elapsed_ns());
    }
    times.sort_unstable();
    (value, times[times.len() / 2])
}

/// E12 — profiling overhead: analysis events per instruction (exact,
/// machine-independent) and wall-clock slowdown (this machine, median of
/// `reps` runs after a warm-up) for full load profiling, full
/// all-instruction profiling and the convergent profiler; plus the memory
/// footprint comparison.
pub fn overhead(workloads: &[Workload], reps: usize) -> ExpReport {
    let mut text = String::new();
    heading_line(
        &mut text,
        "E12",
        "profiling overhead: events per instruction and wall-clock slowdown",
    );
    let _ = writeln!(text, "(wall times are medians of {} runs after a warm-up)", reps.max(1));
    let _ = writeln!(
        text,
        "{:<10} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>10}",
        "program",
        "instrs",
        "ld ev/i",
        "ld slow",
        "all ev/i",
        "all slow",
        "conv ev/i",
        "conv slow",
        "conv prof%"
    );
    let mut records = vec![record(
        "experiment",
        "E12",
        vec![
            ("workloads", Json::U64(workloads.len() as u64)),
            ("reps", Json::U64(reps.max(1) as u64)),
        ],
    )];
    for w in workloads {
        let (instrs, base_ns) = median_timed(reps, || run_plain(w));

        let (load_events, load_ns) = median_timed(reps, || {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(w, Selection::LoadsOnly, &mut p)
        });
        let (all_events, all_ns) = median_timed(reps, || {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(w, Selection::RegisterDefining, &mut p)
        });
        let mut conv_fraction = 0.0;
        let (conv_events, conv_ns) = median_timed(reps, || {
            let mut conv =
                ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
            let events = run_with(w, Selection::RegisterDefining, &mut conv);
            conv_fraction = conv.overall_profile_fraction();
            events
        });

        let per = |e: u64| e as f64 / instrs as f64;
        let slow = |ns: u64| ns as f64 / base_ns.max(1) as f64;
        let _ = writeln!(
            text,
            "{:<10} {:>10} | {:>9.3} {:>8.2}x | {:>9.3} {:>8.2}x | {:>9.3} {:>8.2}x | {:>9.1}%",
            w.name(),
            instrs,
            per(load_events),
            slow(load_ns),
            per(all_events),
            slow(all_ns),
            per(conv_events),
            slow(conv_ns),
            conv_fraction * 100.0,
        );
        let mode = |events: u64, ns: u64| {
            Json::obj(vec![
                ("events", Json::U64(events)),
                ("events_per_instr", Json::F64(per(events))),
                ("median_wall_ns", Json::U64(ns)),
                ("slowdown", Json::F64(slow(ns))),
            ])
        };
        records.push(record(
            "measure",
            w.name(),
            vec![
                ("exp", Json::Str("E12".to_string())),
                ("instructions", Json::U64(instrs)),
                ("baseline_wall_ns", Json::U64(base_ns)),
                ("load", mode(load_events, load_ns)),
                ("all", mode(all_events, all_ns)),
                ("conv", mode(conv_events, conv_ns)),
                ("conv_profile_fraction", Json::F64(conv_fraction)),
            ],
        ));
    }

    // Space: the TNV table's constant-footprint claim vs the exact
    // histogram whose size scales with distinct values.
    let _ = writeln!(text, "\nprofile memory footprint (all-instruction profile):");
    let _ = writeln!(
        text,
        "{:<10} {:>12} {:>14} {:>8}",
        "program", "TNV bytes", "full-hist bytes", "ratio"
    );
    for w in workloads {
        let tnv_only = {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(w, Selection::RegisterDefining, &mut p);
            p.footprint_bytes()
        };
        let with_full = {
            let mut p = InstructionProfiler::new(TrackerConfig::with_full());
            run_with(w, Selection::RegisterDefining, &mut p);
            p.footprint_bytes()
        };
        let _ = writeln!(
            text,
            "{:<10} {:>12} {:>14} {:>7.1}x",
            w.name(),
            tnv_only,
            with_full,
            with_full as f64 / tnv_only as f64
        );
        records.push(record(
            "measure",
            w.name(),
            vec![
                ("exp", Json::Str("E12-footprint".to_string())),
                ("tnv_bytes", Json::U64(tnv_only as u64)),
                ("full_hist_bytes", Json::U64(with_full as u64)),
            ],
        ));
    }

    let _ =
        writeln!(text, "\nev/i = analysis events per executed instruction (exact overhead cause);");
    let _ = writeln!(
        text,
        "slow = wall-clock relative to the uninstrumented emulator on this machine."
    );
    let _ =
        writeln!(text, "The convergent profiler still *sees* each event but skips the TNV work;");
    let _ = writeln!(text, "`conv prof%` is the fraction of executions fully profiled.");
    ExpReport { text, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_obs::telemetry::mask_volatile;
    use vp_workloads::suite;

    #[test]
    fn benchmarks_deterministic_across_jobs() {
        let ws = suite();
        let a = benchmarks(&ws[..3], 1);
        let b = benchmarks(&ws[..3], 4);
        assert_eq!(a, b);
        assert_eq!(a.records.len(), 4);
    }

    #[test]
    fn tnv_policy_deterministic() {
        let ws = suite();
        let a = tnv_policy(&ws[..2]);
        let b = tnv_policy(&ws[..2]);
        assert_eq!(a, b, "policy errors must not depend on hash-map iteration order");
        assert!(a.text.contains("lfu-clear (paper)"));
    }

    #[test]
    fn overhead_masks_to_deterministic_records() {
        let ws = suite();
        let a = overhead(&ws[..2], 1);
        let b = overhead(&ws[..2], 1);
        let masked =
            |r: &ExpReport| r.records.iter().map(|j| mask_volatile(j).render()).collect::<Vec<_>>();
        assert_eq!(masked(&a), masked(&b), "masked records must be byte-stable");
        assert!(a.text.contains("medians of 1 runs"));
        // Event counts are exact and survive masking.
        let load = a.records[1].get("load").unwrap();
        assert!(load.get("events").unwrap().as_u64().unwrap() > 0);
    }
}
