//! # vp-bench — experiment harness
//!
//! One `exp_*` binary per table/figure of the paper (see DESIGN.md §5 for
//! the experiment index E1–E14 and EXPERIMENTS.md for captured results),
//! plus Criterion micro-benchmarks. This library holds the shared
//! plumbing so each experiment binary stays a thin report generator.
//!
//! Run an experiment with e.g. `cargo run --release -p vp-bench --bin
//! exp_loads`, or everything with `--bin exp_all`.

pub mod checkpoint;
pub mod executor;
pub mod experiments;
pub mod optimize;
pub mod serve;
pub mod suite;
pub mod telemetry;

use vp_core::{track::TrackerConfig, InstructionProfiler};
use vp_instrument::{Instrumenter, Selection};
use vp_workloads::{DataSet, Workload};

pub use checkpoint::{Checkpoint, ResumeSummary};
pub use executor::{
    serve_worker, ProcessPool, WorkerCounters, WorkerExecutor, WorkerExit, WorkerFailure,
    WorkerSpec,
};
pub use experiments::ExpReport;
pub use optimize::{optimize_from_outcome, OptimizeConfig, OptimizeReport, WorkloadOptimize};
pub use serve::{ServeConfig, ServeReport, SessionMode, SessionSummary};
pub use suite::{
    ProfileMode, RetryPolicy, SuiteOutcome, SuiteProfile, SuiteRunner, WorkloadFailure,
    WorkloadProfile,
};
pub use telemetry::{append_jsonl, default_path, fault_records, suite_records, write_jsonl};

/// Instruction budget for experiment runs (far above any workload's need).
pub const BUDGET: u64 = 100_000_000;

/// Prints a section heading in the experiment output convention.
pub fn heading(id: &str, title: &str) {
    println!("==== {id}: {title} ====");
}

/// Runs the instruction profiler over one workload/data set.
///
/// # Panics
///
/// Panics if the workload run faults — experiment binaries treat that as a
/// fatal harness bug.
pub fn profile_instructions(
    workload: &Workload,
    ds: DataSet,
    selection: Selection,
    config: TrackerConfig,
) -> InstructionProfiler {
    let mut profiler = InstructionProfiler::new(config);
    Instrumenter::new()
        .select(selection)
        .run(workload.program(), workload.machine_config(ds), BUDGET, &mut profiler)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", workload.name(), ds.name()));
    profiler
}

/// Load-value profile with exact ground truth (the default experiment
/// configuration).
pub fn load_profile(workload: &Workload, ds: DataSet) -> InstructionProfiler {
    profile_instructions(workload, ds, Selection::LoadsOnly, TrackerConfig::with_full())
}

/// All-register-defining-instruction profile with exact ground truth.
pub fn all_instr_profile(workload: &Workload, ds: DataSet) -> InstructionProfiler {
    profile_instructions(workload, ds, Selection::RegisterDefining, TrackerConfig::with_full())
}

/// Collects the `(pc, value)` stream of selected instructions for one
/// workload run (used by the predictor and TNV-policy experiments).
///
/// # Panics
///
/// Panics if the workload run faults.
pub fn value_stream(workload: &Workload, ds: DataSet, selection: Selection) -> Vec<(u32, u64)> {
    struct Collector(Vec<(u32, u64)>);
    impl vp_instrument::Analysis for Collector {
        fn after_instr(&mut self, _m: &vp_sim::Machine, ev: &vp_sim::InstrEvent) {
            if let Some((_, v)) = ev.dest {
                self.0.push((ev.index, v));
            }
        }
    }
    let mut collector = Collector(Vec::new());
    Instrumenter::new()
        .select(selection)
        .run(workload.program(), workload.machine_config(ds), BUDGET, &mut collector)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", workload.name(), ds.name()));
    collector.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_workloads::suite;

    #[test]
    fn helpers_produce_profiles() {
        let w = &suite()[1]; // li
        let p = load_profile(w, DataSet::Test);
        assert!(p.profiled_instructions() >= 1);
        let a = all_instr_profile(w, DataSet::Test);
        assert!(a.profiled_instructions() > p.profiled_instructions());
        let stream = value_stream(w, DataSet::Test, Selection::LoadsOnly);
        assert_eq!(stream.len() as u64, p.aggregate().executions);
    }
}
