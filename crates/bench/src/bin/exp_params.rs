//! E10 — procedure parameter and return-value profiles: invariance of the
//! argument registers and returns of every declared procedure, per
//! benchmark.
//!
//! Paper shape: many procedures are called with nearly constant arguments
//! (here: `vortex`'s query tag is fully invariant, `perl`'s hash argument
//! varies), making arguments prime specialization hooks.

use vp_core::{track::TrackerConfig, ParamProfiler, ParamSlot};
use vp_instrument::{Instrumenter, Selection};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E10", "procedure parameter / return value profiles (test input)");
    println!(
        "{:<10} {:<12} {:<8} {:>9} {:>8} {:>8} {:>8}",
        "program", "procedure", "slot", "execs", "InvT1%", "LVP%", "distinct"
    );
    for w in suite() {
        let mut profiler = ParamProfiler::new(TrackerConfig::with_full(), 2);
        Instrumenter::new()
            .select(Selection::None)
            .with_procedures(true)
            .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut profiler)
            .expect("param profile run");
        let procs = w.program().procedures();
        let rows = profiler.metrics();
        if rows.iter().all(|p| p.metrics.executions == 0) {
            continue;
        }
        for p in rows {
            if p.metrics.executions == 0 {
                continue;
            }
            let name = procs.get(p.proc_index).map_or("?", |pr| pr.name.as_str());
            let slot = match p.slot {
                ParamSlot::Arg(i) => format!("arg{i}"),
                ParamSlot::Ret => "ret".to_string(),
            };
            println!(
                "{:<10} {:<12} {:<8} {:>9} {:>8.1} {:>8.1} {:>8}",
                w.name(),
                name,
                slot,
                p.metrics.executions,
                p.metrics.inv_top1 * 100.0,
                p.metrics.lvp * 100.0,
                p.metrics.distinct.unwrap_or(0),
            );
        }
    }
    println!("\n(only benchmarks with non-main procedures appear: calls are the");
    println!("instrumentation points, exactly as with ATOM's procedure hooks)");
}
