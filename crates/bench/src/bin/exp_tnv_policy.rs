//! E6 — TNV replacement-policy accuracy: how well the constant-space TNV
//! table estimates true invariance, across table sizes and policies.
//!
//! For each configuration, every load's value stream is replayed into a
//! TNV table and the estimated `Inv-Top(N)` is compared against the exact
//! `Inv-All(N)` from a full histogram. Reported: execution-weighted mean
//! absolute error, suite-wide.
//!
//! Paper shape: LFU-with-clearing tracks the full profile closely at 8
//! entries; plain LFU degrades on phase-changing streams (early values
//! squat); LRU thrashes on interleaved values. Bigger tables help every
//! policy.

use std::collections::HashMap;

use vp_core::{FullProfile, Policy, TnvTable};
use vp_instrument::Selection;
use vp_workloads::{suite, DataSet};

fn policy_error(streams: &[Vec<u64>], capacity: usize, policy: Policy, n: usize) -> f64 {
    let mut weighted = 0.0f64;
    let mut total = 0u64;
    for stream in streams {
        let mut tnv = TnvTable::new(capacity, policy);
        let mut full = FullProfile::new();
        for &v in stream {
            tnv.observe(v);
            full.observe(v);
        }
        let err = (tnv.inv_top(n) - full.inv_all(n)).abs();
        weighted += err * stream.len() as f64;
        total += stream.len() as u64;
    }
    if total == 0 {
        0.0
    } else {
        weighted / total as f64
    }
}

fn main() {
    vp_bench::heading("E6", "TNV replacement policy accuracy (|Inv-Top(N) - Inv-All(N)|)");

    // Gather per-load value streams across the whole suite.
    let mut streams: Vec<Vec<u64>> = Vec::new();
    for w in suite() {
        let mut per_pc: HashMap<u32, Vec<u64>> = HashMap::new();
        for (pc, v) in vp_bench::value_stream(&w, DataSet::Test, Selection::LoadsOnly) {
            per_pc.entry(pc).or_default().push(v);
        }
        streams.extend(per_pc.into_values());
    }
    println!(
        "{} load value streams, {} total values\n",
        streams.len(),
        streams.iter().map(Vec::len).sum::<usize>()
    );

    println!("{:<26} {:>8} {:>8} {:>8} {:>8}", "policy", "N=2", "N=4", "N=8", "N=16");
    type PolicyFactory = Box<dyn Fn(usize) -> Policy>;
    let configs: Vec<(String, PolicyFactory)> = vec![
        (
            "lfu-clear (paper)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear { steady: cap / 2, clear_interval: 2000 }),
        ),
        (
            "lfu-clear (interval 500)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear { steady: cap / 2, clear_interval: 500 }),
        ),
        (
            "lfu-clear (steady 1/4)".to_string(),
            Box::new(|cap: usize| Policy::LfuClear {
                steady: (cap / 4).max(1),
                clear_interval: 2000,
            }),
        ),
        ("lfu".to_string(), Box::new(|_| Policy::Lfu)),
        ("lru".to_string(), Box::new(|_| Policy::Lru)),
    ];
    for (name, make) in &configs {
        let errs: Vec<String> = [2usize, 4, 8, 16]
            .iter()
            .map(|&cap| format!("{:8.4}", policy_error(&streams, cap, make(cap), cap)))
            .collect();
        println!("{:<26} {}", name, errs.join(" "));
    }

    // The stress case the clearing policy exists for (the LFU lock-in
    // pathology): an early phase fills the table with moderately hot
    // values; afterwards a new value dominates but arrives interleaved
    // with one-off noise values. Under plain LFU every noise miss evicts
    // the newcomer (it is always the minimum-count entry), so the new hot
    // value can never accumulate. Clearing the bottom part gives it free
    // slots and a full interval to out-count the stale steady entries.
    println!("\nLFU lock-in stress: 4 early values x500, then 90% value 9 + 10% noise:");
    let mut stress: Vec<u64> = Vec::new();
    for i in 0..2_000u64 {
        stress.push(1 + i % 4);
    }
    for i in 0..48_000u64 {
        stress.push(if i % 10 == 9 { 1_000 + i } else { 9 });
    }
    let exact = 0.9 * 48_000.0 / 50_000.0 * 100.0;
    for (name, policy) in [
        ("lfu-clear", Policy::LfuClear { steady: 2, clear_interval: 2000 }),
        ("lfu", Policy::Lfu),
        ("lru", Policy::Lru),
    ] {
        let mut tnv = TnvTable::new(4, policy);
        for &v in &stress {
            tnv.observe(v);
        }
        println!(
            "  {:<10} top value {:?} (true top is 9), Inv-Top(1) {:5.1}% (exact {exact:.1}%)",
            name,
            tnv.top_value(),
            tnv.inv_top(1) * 100.0
        );
    }
}
