//! E6 — TNV replacement-policy accuracy: how well the constant-space TNV
//! table estimates true invariance, across table sizes and policies.
//!
//! For each configuration, every load's value stream is replayed into a
//! TNV table and the estimated `Inv-Top(N)` is compared against the exact
//! `Inv-All(N)` from a full histogram. Reported: execution-weighted mean
//! absolute error, suite-wide.
//!
//! Paper shape: LFU-with-clearing tracks the full profile closely at 8
//! entries; plain LFU degrades on phase-changing streams (early values
//! squat); LRU thrashes on interleaved values. Bigger tables help every
//! policy.
//!
//! Telemetry records go to `$VP_TELEMETRY` (default `telemetry.jsonl`).

use vp_workloads::suite;

fn main() {
    let report = vp_bench::experiments::tnv_policy(&suite());
    print!("{}", report.text);
    let path = vp_bench::default_path();
    vp_bench::append_jsonl(&path, &report.records)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}
