//! E3 — the all-instructions value profile: the same metric table as E2
//! but over *every* register-defining instruction, the paper's broader
//! profiling universe.
//!
//! Paper shape: aggregate invariance is lower than for loads alone
//! (address arithmetic and loop counters vary), yet a substantial fraction
//! of all dynamic instructions still produce their top value.

use vp_bench::all_instr_profile;
use vp_core::{render_metric_table, ReportRow};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E3", "all register-defining instruction value profiles (test input)");
    let rows: Vec<ReportRow> = suite()
        .iter()
        .map(|w| ReportRow {
            label: w.name().to_string(),
            aggregate: all_instr_profile(w, DataSet::Test).aggregate(),
        })
        .collect();
    println!(
        "{}",
        render_metric_table("all defining instructions, execution-weighted (values in %)", &rows)
    );
}
