//! E16 (extension) — invariance over time: interval profiles that expose
//! program phases. A phase-wise invariant instruction looks semi-invariant
//! to a whole-run profile but fully invariant within each phase — the case
//! the TNV clearing policy and re-specialization exist for.

use vp_core::{temporal::TemporalProfiler, track::TrackerConfig};
use vp_instrument::{Instrumenter, Selection};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E16", "interval profiles: invariance over time (extension)");
    println!(
        "{:<10} {:>7} {:>12} {:>14} {:>8}",
        "program", "loads", "whole-run%", "within-window%", "phases"
    );
    for w in suite() {
        let mut temporal = TemporalProfiler::new(TrackerConfig::default(), 500);
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut temporal)
            .expect("temporal run");
        let mut full = vp_core::InstructionProfiler::new(TrackerConfig::default());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut full)
            .expect("full run");

        // Report the load with the largest gap between windowed and
        // whole-run invariance (the most phase-like load).
        let best = full
            .metrics()
            .into_iter()
            .map(|m| {
                let idx = m.id as u32;
                let windowed = temporal.windowed_invariance(idx);
                (idx, windowed, m.inv_top1, temporal.phase_count(idx))
            })
            .max_by(|a, b| {
                let gap_a = a.1 - a.2;
                let gap_b = b.1 - b.2;
                gap_a.total_cmp(&gap_b)
            });
        if let Some((_, windowed, whole, phases)) = best {
            println!(
                "{:<10} {:>7} {:>11.1}% {:>13.1}% {:>8}",
                w.name(),
                full.profiled_instructions(),
                whole * 100.0,
                windowed * 100.0,
                phases,
            );
        }
    }
    println!("\nRows show each program's most phase-like load: within-window");
    println!("invariance far above whole-run invariance with a small phase count");
    println!("means the value is a per-phase constant (gcc's mode word: three");
    println!("phases, ~100% within each, ~33% overall).");
}
