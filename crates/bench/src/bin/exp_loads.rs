//! E2 — the load-value profile table: per benchmark, `LVP`, `Inv-Top(1)`,
//! `Inv-Top(N)` (TNV estimate), `Inv-All` (exact), `%zero` and `Diff(L/I)`
//! over all load instructions, execution-weighted.
//!
//! Paper shape to reproduce: load values are highly invariant on average
//! (roughly half of dynamic loads covered by the top value), `Inv-Top`
//! tracks `Inv-All` closely, and LVP understates invariance when values
//! interleave.

use vp_bench::load_profile;
use vp_core::{render_metric_table, ReportRow};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E2", "load value profiles (test input)");
    let rows: Vec<ReportRow> = suite()
        .iter()
        .map(|w| ReportRow {
            label: w.name().to_string(),
            aggregate: load_profile(w, DataSet::Test).aggregate(),
        })
        .collect();
    println!("{}", render_metric_table("loads, execution-weighted (values in %)", &rows));
}
