//! E11 — Table IV.1: the basic-block quantile table. For each benchmark,
//! the number (and fraction) of hottest static basic blocks needed to
//! cover 50/90/99/100% of dynamic execution.
//!
//! Paper shape: execution is extremely concentrated — a small fraction of
//! static blocks covers the vast majority of dynamic execution, which is
//! why profiling effort (and specialization) can focus on few sites.

use vp_sim::stats::quantile_table;
use vp_sim::{Cfg, Machine};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E11", "basic block quantile table (Table IV.1, test input)");
    let coverages = [0.5, 0.9, 0.99, 1.0];
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "program", "blocks", "50%", "90%", "99%", "100%"
    );
    for w in suite() {
        let mut machine =
            Machine::new(w.program().clone(), w.machine_config(DataSet::Test)).expect("machine");
        machine.run(vp_bench::BUDGET).expect("run");
        let cfg = Cfg::build(w.program());
        let counts = cfg.block_counts(machine.stats().per_instr());
        let rows = quantile_table(&counts, &coverages);
        let cells: Vec<String> = rows
            .iter()
            .map(|r| format!("{} ({:.0}%)", r.blocks, r.block_fraction * 100.0))
            .collect();
        println!(
            "{:<10} {:>8} {:>14} {:>14} {:>14} {:>14}",
            w.name(),
            cfg.blocks().len(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
        );
    }
    println!("\ncells: hottest blocks needed (as % of executed static blocks)");
}
