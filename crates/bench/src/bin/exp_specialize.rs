//! E13 — the code-specialization case study (thesis Chapter X): profile
//! the m88ksim-style kernel, specialize its semi-invariant configuration
//! load, and measure dynamic-instruction speedup across invariance levels;
//! then apply the same pipeline to every suite benchmark.
//!
//! Paper shape: solid speedups at high invariance that decay as the value
//! gets perturbed more often, with the candidate filter refusing to
//! specialize below its invariance bar; behaviour is bit-identical in all
//! cases (the guard).

use vp_core::{track::TrackerConfig, InstructionProfiler};
use vp_instrument::{Instrumenter, Selection};
use vp_sim::MachineConfig;
use vp_specialize::{demo, evaluate, find_candidates, specialize_all, CandidateOptions};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E13", "code specialization on semi-invariant values");

    println!("kernel sweep (20k iterations, perturbation period varied):");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>9} {:>6}",
        "perturb", "inv-top1%", "base", "special", "speedup", "exact"
    );
    let program = demo::program();
    for period in [0u64, 1000, 200, 50, 10, 3] {
        let input = demo::input(20_000, period);
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(
                &program,
                MachineConfig::new().input(input.clone()),
                vp_bench::BUDGET,
                &mut profiler,
            )
            .expect("profile");
        let inv =
            profiler.metrics_for(demo::config_load_index(&program)).map_or(0.0, |m| m.inv_top1);
        let candidates =
            find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
        let label = if period == 0 { "never".into() } else { format!("1/{period}") };
        if candidates.is_empty() {
            println!(
                "{label:>10} {:>10.1} {:>12} {:>12} {:>9} {:>6}",
                inv * 100.0,
                "-",
                "-",
                "skipped",
                "-"
            );
            continue;
        }
        let specialized = specialize_all(&program, &candidates).expect("specialize");
        let report = evaluate(&program, &specialized, &input, vp_bench::BUDGET).expect("evaluate");
        println!(
            "{label:>10} {:>10.1} {:>12} {:>12} {:>8.3}x {:>6}",
            inv * 100.0,
            report.base_instructions,
            report.specialized_instructions,
            report.speedup(),
            if report.equivalent { "yes" } else { "NO" },
        );
    }

    println!("\nsuite-wide automatic specialization:");
    println!("  self  = profiled and measured on the test input");
    println!("  cross = profiled on train, measured on test (values must transfer)");
    println!(
        "{:<10} {:>6} {:>13} {:>13} {:>6}",
        "program", "cands", "self speedup", "cross speedup", "exact"
    );
    for w in suite() {
        let mut speedups: Vec<Option<f64>> = Vec::new();
        let mut cands = 0usize;
        let mut exact = true;
        for profile_ds in [DataSet::Test, DataSet::Train] {
            let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
            Instrumenter::new()
                .select(Selection::LoadsOnly)
                .run(w.program(), w.machine_config(profile_ds), vp_bench::BUDGET, &mut profiler)
                .expect("profile");
            let candidates =
                find_candidates(w.program(), &profiler.metrics(), CandidateOptions::default());
            if profile_ds == DataSet::Test {
                cands = candidates.len();
            }
            if candidates.is_empty() {
                speedups.push(None);
                continue;
            }
            let specialized = specialize_all(w.program(), &candidates).expect("specialize");
            let report =
                evaluate(w.program(), &specialized, w.input(DataSet::Test), vp_bench::BUDGET)
                    .expect("evaluate");
            exact &= report.equivalent;
            speedups.push(Some(report.speedup()));
        }
        let cell = |v: &Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3}x"));
        println!(
            "{:<10} {:>6} {:>13} {:>13} {:>6}",
            w.name(),
            cands,
            cell(&speedups[0]),
            cell(&speedups[1]),
            if exact { "yes" } else { "NO" },
        );
    }
    println!("\nThe cross column shows the limit of value-level transfer: invariance");
    println!("transfers across inputs (E8), but when the dominant VALUE itself is");
    println!("input-dependent (m88ksim's configuration word), a guard specialized on");
    println!("the training value never fires and only its overhead remains — exactly");
    println!("why the guard is mandatory.");
}
