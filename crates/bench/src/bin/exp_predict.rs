//! E14 — value prediction and profile-guided filtering (paper §II.A
//! context): hit rates of the predictor families of refs \[17, 27, 34, 39\]
//! on suite load streams, and the effect of filtering a last-value
//! predictor with a train-input value profile.
//!
//! Paper/reference shape (Wang & Franklin): hybrid > stride ≈ two-level >
//! LVP on average; profile filtering trades a little coverage for a large
//! cut in mispredictions.

use vp_bench::{load_profile, value_stream};
use vp_core::InstructionProfiler;
use vp_instrument::Selection;
use vp_predict::{
    evaluate, FilteredPredictor, HybridPredictor, LastValuePredictor, Predictor, PredictorStats,
    StridePredictor, TwoLevelPredictor,
};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E14", "value predictors on load streams; profile-guided filtering");
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>9} {:>9} | {:>9} {:>9} {:>10}",
        "program",
        "lvp%",
        "stride%",
        "2level%",
        "hyb(l,s)%",
        "hyb(s,2)%",
        "lvp-misp%",
        "filt-misp%",
        "filt-hit%"
    );

    let mut sums = [0.0f64; 8];
    let all = suite();
    for w in &all {
        let stream = value_stream(w, DataSet::Test, Selection::LoadsOnly);
        let profile: InstructionProfiler = load_profile(w, DataSet::Train);

        let stats =
            |p: &mut dyn Predictor| -> PredictorStats { evaluate(p, stream.iter().copied()) };
        let lvp = stats(&mut LastValuePredictor::new(1024));
        let stride = stats(&mut StridePredictor::new(1024));
        let two = stats(&mut TwoLevelPredictor::new());
        let hyb_ls = stats(&mut HybridPredictor::new(
            LastValuePredictor::new(1024),
            StridePredictor::new(1024),
        ));
        let hyb_s2 =
            stats(&mut HybridPredictor::new(StridePredictor::new(1024), TwoLevelPredictor::new()));
        let filt = stats(&mut FilteredPredictor::from_profile(
            LastValuePredictor::new(1024),
            &profile.metrics(),
            0.5,
        ));
        let total = lvp.total().max(1) as f64;
        let cells = [
            lvp.hit_rate() * 100.0,
            stride.hit_rate() * 100.0,
            two.hit_rate() * 100.0,
            hyb_ls.hit_rate() * 100.0,
            hyb_s2.hit_rate() * 100.0,
            lvp.mispredictions as f64 / total * 100.0,
            filt.mispredictions as f64 / total * 100.0,
            filt.hit_rate() * 100.0,
        ];
        for (s, c) in sums.iter_mut().zip(cells) {
            *s += c;
        }
        println!(
            "{:<10} {:>7.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1} | {:>9.1} {:>9.1} {:>10.1}",
            w.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            cells[6],
            cells[7]
        );
    }
    let n = all.len() as f64;
    println!(
        "{:<10} {:>7.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1} | {:>9.1} {:>9.1} {:>10.1}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n,
        sums[6] / n,
        sums[7] / n
    );
    println!("\nfilter = only predict loads whose TRAIN-input profile has LVP >= 0.5");
}
