//! E1 — Table III.1: the benchmark suite and its data sets.
//!
//! The paper's table lists each program, its two inputs and the dynamic
//! instruction count of each run (in millions); ours reports the same for
//! the SPEC-stand-in suite (counts in thousands — the workloads are scaled
//! to keep the full experiment matrix fast).
//!
//! Pass `--jobs N` to fan the workload runs out over N worker threads
//! (0 = available parallelism); the table is identical either way.
//! Telemetry records go to `$VP_TELEMETRY` (default `telemetry.jsonl`).

use vp_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("bad --jobs value"));

    let report = vp_bench::experiments::benchmarks(&suite(), jobs);
    print!("{}", report.text);
    let path = vp_bench::default_path();
    vp_bench::append_jsonl(&path, &report.records)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}
