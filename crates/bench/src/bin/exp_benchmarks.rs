//! E1 — Table III.1: the benchmark suite and its data sets.
//!
//! The paper's table lists each program, its two inputs and the dynamic
//! instruction count of each run (in millions); ours reports the same for
//! the SPEC-stand-in suite (counts in thousands — the workloads are scaled
//! to keep the full experiment matrix fast).

use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E1", "benchmark programs and data sets (Table III.1)");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {}",
        "program", "static size", "test Kinstrs", "train Kinstrs", "description"
    );
    for w in suite() {
        let test = w.run(DataSet::Test, vp_bench::BUDGET).expect("test run").instructions;
        let train = w.run(DataSet::Train, vp_bench::BUDGET).expect("train run").instructions;
        println!(
            "{:<10} {:>12} {:>14.1} {:>14.1} {}",
            w.name(),
            w.program().len(),
            test as f64 / 1_000.0,
            train as f64 / 1_000.0,
            w.description()
        );
    }
}
