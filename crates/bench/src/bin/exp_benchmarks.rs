//! E1 — Table III.1: the benchmark suite and its data sets.
//!
//! The paper's table lists each program, its two inputs and the dynamic
//! instruction count of each run (in millions); ours reports the same for
//! the SPEC-stand-in suite (counts in thousands — the workloads are scaled
//! to keep the full experiment matrix fast).
//!
//! Pass `--jobs N` to fan the workload runs out over N worker threads
//! (0 = available parallelism); the table is identical either way.

use vp_instrument::parallel_map;
use vp_workloads::{suite, DataSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("bad --jobs value"));

    vp_bench::heading("E1", "benchmark programs and data sets (Table III.1)");
    println!(
        "{:<10} {:>12} {:>14} {:>14} description",
        "program", "static size", "test Kinstrs", "train Kinstrs"
    );
    let workloads = suite();
    let rows = parallel_map(jobs, &workloads, |w| {
        let test = w.run(DataSet::Test, vp_bench::BUDGET).expect("test run").instructions;
        let train = w.run(DataSet::Train, vp_bench::BUDGET).expect("train run").instructions;
        (test, train)
    });
    for (w, (test, train)) in workloads.iter().zip(rows) {
        println!(
            "{:<10} {:>12} {:>14.1} {:>14.1} {}",
            w.name(),
            w.program().len(),
            test as f64 / 1_000.0,
            train as f64 / 1_000.0,
            w.description()
        );
    }
}
