//! E15 (extension) — path-sensitive value prediction, the thesis's
//! future-work item: index last-value prediction by `(pc, path history)`
//! à la Young & Smith \[40\], which the thesis singles out as "especially
//! beneficial for procedures called from several locations".
//!
//! Expected shape: a large win on the multi-call-site kernel (the value is
//! a function of the path), small-to-none on the suite's mostly
//! single-path hot loops — with no regression anywhere.

use vp_instrument::Selection;
use vp_predict::{collect_pathed_stream, evaluate_pathed};
use vp_sim::MachineConfig;
use vp_workloads::{suite, DataSet};

const KERNEL: &str = r#"
    .text
    main:
        li r9, 5000
    loop:
        andi r12, r9, 1
        bz   r12, even
        li   a0, 10
        call f
        j    next
    even:
        li   a0, 20
        call f
    next:
        addi r9, r9, -1
        bnz  r9, loop
        sys  exit
    .proc f
    f:
        add  v0, a0, a0     # 20 or 40, fully determined by the call site
        ret
    .endp
"#;

fn main() {
    vp_bench::heading("E15", "path-sensitive last-value prediction (extension)");
    println!("{:<22} {:>10} {:>10} {:>10}", "program", "events", "lvp hit%", "path hit%");

    // The motivating kernel: one procedure, two call sites, site-constant
    // arguments.
    let program = vp_asm::assemble(KERNEL).expect("kernel assembles");
    let target = program.procedure("f").expect("f").range.start;
    let stream = collect_pathed_stream(
        &program,
        MachineConfig::new(),
        vp_bench::BUDGET,
        Selection::Custom([target].into_iter().collect()),
        16,
    )
    .expect("kernel stream");
    let (path_hits, blind_hits, total) = evaluate_pathed(&stream);
    println!(
        "{:<22} {:>10} {:>10.1} {:>10.1}",
        "two-site kernel",
        total,
        blind_hits as f64 / total as f64 * 100.0,
        path_hits as f64 / total as f64 * 100.0
    );

    // The suite's load streams.
    for w in suite() {
        let stream = collect_pathed_stream(
            w.program(),
            w.machine_config(DataSet::Test),
            vp_bench::BUDGET,
            Selection::LoadsOnly,
            16,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let (path_hits, blind_hits, total) = evaluate_pathed(&stream);
        println!(
            "{:<22} {:>10} {:>10.1} {:>10.1}",
            w.name(),
            total,
            blind_hits as f64 / total.max(1) as f64 * 100.0,
            path_hits as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!("\npath hit% uses a (pc, 16-bit path history) table; lvp hit% the same");
    println!("table with the path pinned to zero. The kernel's procedure argument is");
    println!("perfectly path-determined; suite loads are mostly path-independent.");
}
