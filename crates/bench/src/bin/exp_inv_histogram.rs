//! E4 — the invariance-distribution figures: for loads and for all
//! defining instructions, the fraction of dynamic executions whose
//! instruction falls into each 10%-wide `Inv-Top(1)` bucket.
//!
//! Paper shape: the distribution is strongly bimodal — big masses in the
//! 0–10% bucket (varying instructions) and the 90–100% bucket (invariant
//! ones), with little in between. That bimodality is what makes
//! "semi-invariant" a usable classification.

use vp_bench::{all_instr_profile, load_profile};
use vp_core::invariance_histogram;
use vp_workloads::{suite, DataSet};

fn print_histogram(title: &str, buckets: [f64; 10]) {
    println!("{title}");
    for (i, weight) in buckets.iter().enumerate() {
        let bar = "#".repeat((weight * 60.0).round() as usize);
        println!(
            "  {:>3}-{:<4} {:>6.1}% {bar}",
            i * 10,
            format!("{}%", (i + 1) * 10),
            weight * 100.0
        );
    }
    println!();
}

fn main() {
    vp_bench::heading("E4", "invariance distribution (execution-weighted, suite-wide)");

    let mut load_metrics = Vec::new();
    let mut all_metrics = Vec::new();
    for w in suite() {
        load_metrics.extend(load_profile(&w, DataSet::Test).metrics());
        all_metrics.extend(all_instr_profile(&w, DataSet::Test).metrics());
    }

    print_histogram(
        "loads: fraction of dynamic executions per Inv-Top(1) bucket",
        invariance_histogram(&load_metrics, |m| m.inv_top1),
    );
    print_histogram(
        "all defining instructions: fraction per Inv-Top(1) bucket",
        invariance_histogram(&all_metrics, |m| m.inv_top1),
    );
    print_histogram(
        "loads: fraction per Inv-Top(N) bucket (whole TNV table)",
        invariance_histogram(&load_metrics, |m| m.inv_topn),
    );
}
