//! E8 — Table V.5: load-value profiles on the *test* versus *train*
//! inputs, side by side, plus cross-input stability statistics.
//!
//! Paper shape (confirming Wall \[38\] for value profiles): per-benchmark
//! metrics are very similar across inputs, per-instruction invariance is
//! strongly correlated, and the profiled top value usually agrees — which
//! is what makes profile-guided specialization on a training input sound.

use vp_bench::{all_instr_profile, load_profile};
use vp_core::{compare, correlation, render_metric_table, report::row};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E8", "test vs train data sets (Table V.5)");

    for w in suite() {
        let train = load_profile(&w, DataSet::Train).metrics();
        let test = load_profile(&w, DataSet::Test).metrics();
        let rows = [row("train", &train), row("test", &test)];
        println!("{}", render_metric_table(&format!("{}: loads by data set", w.name()), &rows));
        let c = compare(&train, &test);
        println!(
            "  common sites {}  inv-corr {:+.3}  lvp-corr {:+.3}  mean|inv diff| {:.4}  top-value agreement {:.0}%\n",
            c.common,
            c.inv_correlation,
            c.lvp_correlation,
            c.mean_abs_inv_diff,
            c.top_value_agreement * 100.0
        );
    }

    // Pooled cross-input stability over ALL register-defining instructions
    // of the whole suite: per-site (train, test) invariance pairs. This is
    // the statistic behind "profiles transfer across inputs" — single-load
    // kernels make per-program correlations degenerate, the pool does not.
    let mut train_inv = Vec::new();
    let mut test_inv = Vec::new();
    let mut agree = 0usize;
    for w in suite() {
        let train = all_instr_profile(&w, DataSet::Train).metrics();
        let test = all_instr_profile(&w, DataSet::Test).metrics();
        let test_by_id: std::collections::HashMap<u64, _> =
            test.iter().map(|m| (m.id, m)).collect();
        for m in &train {
            if let Some(t) = test_by_id.get(&m.id) {
                train_inv.push(m.inv_top1);
                test_inv.push(t.inv_top1);
                if m.top_value.is_some() && m.top_value == t.top_value {
                    agree += 1;
                }
            }
        }
    }
    println!("pooled over all register-defining sites of the suite:");
    println!("  sites                  {}", train_inv.len());
    println!("  inv-top1 correlation   {:+.3}", correlation(&train_inv, &test_inv));
    println!(
        "  mean |inv diff|        {:.4}",
        train_inv
            .iter()
            .zip(&test_inv)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / train_inv.len().max(1) as f64
    );
    println!(
        "  top-value agreement    {:.1}%",
        agree as f64 / train_inv.len().max(1) as f64 * 100.0
    );
}
