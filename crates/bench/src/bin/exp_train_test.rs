//! E8 — Table V.5: load-value profiles on the *test* versus *train*
//! inputs, side by side, plus cross-input stability statistics.
//!
//! Paper shape (confirming Wall \[38\] for value profiles): per-benchmark
//! metrics are very similar across inputs, per-instruction invariance is
//! strongly correlated, and the profiled top value usually agrees — which
//! is what makes profile-guided specialization on a training input sound.
//!
//! Pass `--jobs N` to run the per-workload profiling across N worker
//! threads (0 = available parallelism). Results are identical to serial:
//! each workload/input profile is produced by one profiler instance.

use vp_bench::{all_instr_profile, load_profile, SuiteRunner};
use vp_core::{compare, correlation, render_metric_table, report::row};
use vp_instrument::parallel_map;
use vp_workloads::{suite, DataSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("bad --jobs value"));

    vp_bench::heading("E8", "test vs train data sets (Table V.5)");

    let workloads = suite();
    let per_workload = parallel_map(jobs, &workloads, |w| {
        (load_profile(w, DataSet::Train).metrics(), load_profile(w, DataSet::Test).metrics())
    });
    for (w, (train, test)) in workloads.iter().zip(&per_workload) {
        let rows = [row("train", train), row("test", test)];
        println!("{}", render_metric_table(&format!("{}: loads by data set", w.name()), &rows));
        let c = compare(train, test);
        println!(
            "  common sites {}  inv-corr {:+.3}  lvp-corr {:+.3}  mean|inv diff| {:.4}  top-value agreement {:.0}%\n",
            c.common,
            c.inv_correlation,
            c.lvp_correlation,
            c.mean_abs_inv_diff,
            c.top_value_agreement * 100.0
        );
    }

    // Pooled cross-input stability over ALL register-defining instructions
    // of the whole suite: per-site (train, test) invariance pairs. This is
    // the statistic behind "profiles transfer across inputs" — single-load
    // kernels make per-program correlations degenerate, the pool does not.
    let mut train_inv = Vec::new();
    let mut test_inv = Vec::new();
    let mut agree = 0usize;
    let full = parallel_map(jobs, &workloads, |w| {
        (all_instr_profile(w, DataSet::Train), all_instr_profile(w, DataSet::Test))
    });
    for (train_p, test_p) in &full {
        let train = train_p.metrics();
        let test = test_p.metrics();
        let test_by_id: std::collections::HashMap<u64, _> =
            test.iter().map(|m| (m.id, m)).collect();
        for m in &train {
            if let Some(t) = test_by_id.get(&m.id) {
                train_inv.push(m.inv_top1);
                test_inv.push(t.inv_top1);
                if m.top_value.is_some() && m.top_value == t.top_value {
                    agree += 1;
                }
            }
        }
    }
    println!("pooled over all register-defining sites of the suite:");
    println!("  sites                  {}", train_inv.len());
    println!("  inv-top1 correlation   {:+.3}", correlation(&train_inv, &test_inv));
    println!(
        "  mean |inv diff|        {:.4}",
        train_inv.iter().zip(&test_inv).map(|(a, b)| (a - b).abs()).sum::<f64>()
            / train_inv.len().max(1) as f64
    );
    println!(
        "  top-value agreement    {:.1}%",
        agree as f64 / train_inv.len().max(1) as f64 * 100.0
    );

    // Combined-input profile: merging the train profiler into the test
    // profiler gives one profile describing both runs — the shard-merge
    // semantics of `InstructionProfiler::merge` (exact scalar counters,
    // TNV under-estimates). The suite runner reports both data sets with
    // the same machinery.
    println!("\ncombined train+test load profiles (merged shards):");
    let combined_rows: Vec<_> = full
        .into_iter()
        .zip(&workloads)
        .map(|((train_p, test_p), w)| {
            let mut merged = test_p;
            merged.merge(train_p);
            row(w.name(), &merged.metrics())
        })
        .collect();
    println!("{}", render_metric_table("all register-defining sites, both inputs", &combined_rows));

    let suite_profile = SuiteRunner::new().jobs(jobs).run(DataSet::Test);
    let (pool, agg) = suite_profile.pooled();
    println!(
        "suite runner cross-check [test loads]: {} sites pooled, inv-top1 {:.1}%",
        pool.len(),
        agg.inv_top1 * 100.0
    );
}
