//! E12 — profiling overhead: the cost of value profiling in analysis
//! events (exact, machine-independent) and wall-clock slowdown (this
//! machine), for full load profiling, full all-instruction profiling and
//! the convergent profiler.
//!
//! Paper shape: full value profiling is expensive (the paper reports
//! multi-x slowdowns under ATOM); convergent sampling removes most of the
//! event-processing work. Our wall-clock column measures the same
//! pipeline on the emulator; the events-per-instruction columns are the
//! portable cause.
//!
//! Wall times are medians of `--reps N` (default 5) timed runs taken
//! after an untimed warm-up, so the first configuration measured no
//! longer pays the cold-cache penalty alone.
//! Telemetry records go to `$VP_TELEMETRY` (default `telemetry.jsonl`).

use vp_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .map_or(5, |v| v.parse().expect("bad --reps value"));

    let report = vp_bench::experiments::overhead(&suite(), reps);
    print!("{}", report.text);
    let path = vp_bench::default_path();
    vp_bench::append_jsonl(&path, &report.records)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}
