//! E12 — profiling overhead: the cost of value profiling in analysis
//! events (exact, machine-independent) and wall-clock slowdown (this
//! machine), for full load profiling, full all-instruction profiling and
//! the convergent profiler.
//!
//! Paper shape: full value profiling is expensive (the paper reports
//! multi-x slowdowns under ATOM); convergent sampling removes most of the
//! event-processing work. Our wall-clock column measures the same
//! pipeline on the emulator; the events-per-instruction columns are the
//! portable cause.

use std::time::Instant;

use vp_core::{track::TrackerConfig, ConvergentConfig, ConvergentProfiler, InstructionProfiler};
use vp_instrument::{Analysis, Instrumenter, Selection};
use vp_sim::Machine;
use vp_workloads::{suite, DataSet, Workload};

fn timed<F: FnOnce() -> u64>(f: F) -> (u64, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn run_plain(w: &Workload) -> u64 {
    let mut machine =
        Machine::new(w.program().clone(), w.machine_config(DataSet::Test)).expect("machine");
    machine.run(vp_bench::BUDGET).expect("run").instructions
}

fn run_with<A: Analysis>(w: &Workload, selection: Selection, analysis: &mut A) -> u64 {
    Instrumenter::new()
        .select(selection)
        .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, analysis)
        .expect("instrumented run")
        .counts
        .total()
}

fn main() {
    vp_bench::heading("E12", "profiling overhead: events per instruction and wall-clock slowdown");
    println!(
        "{:<10} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>10}",
        "program",
        "instrs",
        "ld ev/i",
        "ld slow",
        "all ev/i",
        "all slow",
        "conv ev/i",
        "conv slow",
        "conv prof%"
    );
    for w in suite() {
        // Warm up and baseline.
        run_plain(&w);
        let (instrs, base_t) = timed(|| run_plain(&w));

        let (load_events, load_t) = timed(|| {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(&w, Selection::LoadsOnly, &mut p)
        });
        let (all_events, all_t) = timed(|| {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(&w, Selection::RegisterDefining, &mut p)
        });
        let mut conv =
            ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
        let (conv_events, conv_t) = timed(|| run_with(&w, Selection::RegisterDefining, &mut conv));

        let per = |e: u64| e as f64 / instrs as f64;
        let slow = |t: f64| t / base_t;
        println!(
            "{:<10} {:>10} | {:>9.3} {:>8.2}x | {:>9.3} {:>8.2}x | {:>9.3} {:>8.2}x | {:>9.1}%",
            w.name(),
            instrs,
            per(load_events),
            slow(load_t),
            per(all_events),
            slow(all_t),
            per(conv_events),
            slow(conv_t),
            conv.overall_profile_fraction() * 100.0,
        );
    }
    // Space: the TNV table's constant-footprint claim vs the exact
    // histogram whose size scales with distinct values.
    println!("\nprofile memory footprint (all-instruction profile):");
    println!("{:<10} {:>12} {:>14} {:>8}", "program", "TNV bytes", "full-hist bytes", "ratio");
    for w in suite() {
        let tnv_only = {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            run_with(&w, Selection::RegisterDefining, &mut p);
            p.footprint_bytes()
        };
        let with_full = {
            let mut p = InstructionProfiler::new(TrackerConfig::with_full());
            run_with(&w, Selection::RegisterDefining, &mut p);
            p.footprint_bytes()
        };
        println!(
            "{:<10} {:>12} {:>14} {:>7.1}x",
            w.name(),
            tnv_only,
            with_full,
            with_full as f64 / tnv_only as f64
        );
    }

    println!("\nev/i = analysis events per executed instruction (exact overhead cause);");
    println!("slow = wall-clock relative to the uninstrumented emulator on this machine.");
    println!("The convergent profiler still *sees* each event but skips the TNV work;");
    println!("`conv prof%` is the fraction of executions fully profiled.");
}
