//! E7 — the convergent profiler: overhead (fraction of executions
//! profiled) and accuracy (invariance error versus the full profile), per
//! benchmark, plus a sweep over sampler aggressiveness.
//!
//! Paper shape: the convergent profiler cuts profiling work by a large
//! factor while staying within a few percent of the full profile's
//! invariance — the trade-off curve steepens as the backoff gets more
//! aggressive.
//!
//! Telemetry records go to `$VP_TELEMETRY` (default `telemetry.jsonl`).

use vp_workloads::suite;

fn main() {
    let report = vp_bench::experiments::convergent(&suite());
    print!("{}", report.text);
    let path = vp_bench::default_path();
    vp_bench::append_jsonl(&path, &report.records)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}
