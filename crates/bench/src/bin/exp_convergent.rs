//! E7 — the convergent profiler: overhead (fraction of executions
//! profiled) and accuracy (invariance error versus the full profile), per
//! benchmark, plus a sweep over sampler aggressiveness.
//!
//! Paper shape: the convergent profiler cuts profiling work by a large
//! factor while staying within a few percent of the full profile's
//! invariance — the trade-off curve steepens as the backoff gets more
//! aggressive.

use vp_bench::load_profile;
use vp_core::{
    compare, track::TrackerConfig, ConvergentConfig, ConvergentProfiler, SampleStrategy,
    SampledProfiler,
};
use vp_instrument::{Instrumenter, Selection};
use vp_workloads::{suite, DataSet, Workload};

fn run_convergent(w: &Workload, config: ConvergentConfig) -> ConvergentProfiler {
    let mut profiler = ConvergentProfiler::new(TrackerConfig::default(), config);
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut profiler)
        .expect("convergent run");
    profiler
}

fn main() {
    vp_bench::heading("E7", "convergent profiler: overhead and accuracy vs full profiling");

    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12}",
        "program", "full inv%", "conv inv%", "profiled%", "mean|diff|"
    );
    for w in suite() {
        let full = load_profile(&w, DataSet::Test);
        let conv = run_convergent(&w, ConvergentConfig::default());
        let cmp = compare(&full.metrics(), &conv.metrics());
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>11.1}% {:>12.4}",
            w.name(),
            full.aggregate().inv_top1 * 100.0,
            conv.aggregate().inv_top1 * 100.0,
            conv.overall_profile_fraction() * 100.0,
            cmp.mean_abs_inv_diff,
        );
    }

    println!("\nsampler sweep (suite means): burst length x backoff aggressiveness");
    println!("{:<26} {:>12} {:>12}", "configuration", "profiled%", "mean|diff|");
    let sweeps = [
        (
            "burst 500, skip 1k, x2",
            ConvergentConfig {
                burst: 500,
                initial_skip: 1_000,
                backoff: 2.0,
                ..ConvergentConfig::default()
            },
        ),
        ("burst 200, skip 2k, x4", ConvergentConfig::default()),
        (
            "burst 100, skip 4k, x8",
            ConvergentConfig {
                burst: 100,
                initial_skip: 4_000,
                backoff: 8.0,
                ..ConvergentConfig::default()
            },
        ),
        (
            "burst 50, skip 8k, x16",
            ConvergentConfig {
                burst: 50,
                initial_skip: 8_000,
                backoff: 16.0,
                ..ConvergentConfig::default()
            },
        ),
    ];
    for (name, config) in sweeps {
        let mut profiled = 0.0;
        let mut err = 0.0;
        let all = suite();
        for w in &all {
            let full = load_profile(w, DataSet::Test);
            let conv = run_convergent(w, config);
            profiled += conv.overall_profile_fraction();
            err += compare(&full.metrics(), &conv.metrics()).mean_abs_inv_diff;
        }
        println!(
            "{:<26} {:>11.1}% {:>12.4}",
            name,
            profiled / all.len() as f64 * 100.0,
            err / all.len() as f64
        );
    }

    // Ablation: the convergent sampler against CPI-style flat sampling
    // (Anderson et al. [1]) at a matched profiling budget. The convergent
    // profiler spends its budget where profiles have NOT converged, so at
    // equal profiled fractions it should be at least as accurate.
    println!("\nablation vs flat sampling (suite means):");
    println!("{:<26} {:>12} {:>12}", "scheme", "profiled%", "mean|diff|");
    let all = suite();
    let mut conv_frac = 0.0;
    let mut conv_err = 0.0;
    for w in &all {
        let full = load_profile(w, DataSet::Test);
        let conv = run_convergent(w, ConvergentConfig::default());
        conv_frac += conv.overall_profile_fraction();
        conv_err += compare(&full.metrics(), &conv.metrics()).mean_abs_inv_diff;
    }
    conv_frac /= all.len() as f64;
    conv_err /= all.len() as f64;
    println!("{:<26} {:>11.1}% {:>12.4}", "convergent (default)", conv_frac * 100.0, conv_err);

    // Match the flat samplers' period to the convergent profiler's spend.
    let period = (1.0 / conv_frac).round().max(1.0) as u64;
    for (name, strategy) in [
        (format!("periodic 1/{period}"), SampleStrategy::Periodic { period }),
        (format!("random   1/{period}"), SampleStrategy::Random { period }),
    ] {
        let mut frac = 0.0;
        let mut err = 0.0;
        for w in &all {
            let full = load_profile(w, DataSet::Test);
            let mut sampled = SampledProfiler::new(TrackerConfig::default(), strategy);
            Instrumenter::new()
                .select(Selection::LoadsOnly)
                .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut sampled)
                .expect("sampled run");
            frac += sampled.overall_profile_fraction();
            err += compare(&full.metrics(), &sampled.metrics()).mean_abs_inv_diff;
        }
        println!(
            "{:<26} {:>11.1}% {:>12.4}",
            name,
            frac / all.len() as f64 * 100.0,
            err / all.len() as f64
        );
    }
}
