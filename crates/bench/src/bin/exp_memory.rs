//! E9 — memory-location value profiles (the thesis extension): invariance
//! of the values *stored* to each memory word, per benchmark, plus each
//! benchmark's hottest locations.
//!
//! Paper shape: memory locations are even more invariant than load
//! instructions on several programs (a location written by one store site
//! inherits its invariance; shared locations mix), and a small number of
//! hot locations dominate the store traffic.

use vp_core::{render_metric_table, report::row, track::TrackerConfig, MemoryProfiler};
use vp_instrument::{Instrumenter, Selection};
use vp_obs::{telemetry::record, CounterId, Counts, Json};
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E9", "memory location value profiles (stored values, test input)");

    let mut rows = Vec::new();
    let mut hot_lines = Vec::new();
    let mut events = Counts::new();
    for w in suite() {
        let mut profiler = MemoryProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::MemoryOps)
            .run(w.program(), w.machine_config(DataSet::Test), vp_bench::BUDGET, &mut profiler)
            .expect("memory profile run");
        rows.push(row(w.name(), &profiler.metrics()));
        profiler.tnv_events().add_to(&mut events);
        events.add(CounterId::MemDropped, profiler.dropped());
        if profiler.dropped() > 0 {
            eprintln!(
                "warning: {}: {} stores dropped at the location cap — rows are incomplete",
                w.name(),
                profiler.dropped()
            );
        }
        let hottest: Vec<String> = profiler
            .hottest(3)
            .into_iter()
            .map(|m| {
                format!("{:#x} (stores {}, inv {:.0}%)", m.id, m.executions, m.inv_top1 * 100.0)
            })
            .collect();
        hot_lines.push(format!(
            "{:<10} {:>6} locations; hottest: {}",
            w.name(),
            profiler.locations(),
            hottest.join(", ")
        ));
    }
    println!("{}", render_metric_table("memory locations, store-weighted (values in %)", &rows));
    println!("location counts and hot spots:");
    for line in hot_lines {
        println!("  {line}");
    }

    // One run record with the summed TNV and drop counters, so `vprof
    // stats` can surface cap-dropped stores across E9.
    let records = vec![record(
        "run",
        "exp-memory",
        vec![("tool", Json::Str("exp-memory".to_string())), ("events", events.to_json())],
    )];
    let path = vp_bench::default_path();
    if let Err(e) = vp_bench::append_jsonl(&path, &records) {
        eprintln!("warning: cannot append telemetry to {}: {e}", path.display());
    }
}
