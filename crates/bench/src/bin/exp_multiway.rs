//! E17 (extension) — multi-way specialization on the top-k TNV values:
//! the payoff of keeping N values per entity instead of one. On a bimodal
//! load (60/40 between two values), a one-way guard covers 60% of
//! executions; a two-way dispatch covers all of them.

use vp_core::{track::TrackerConfig, InstructionProfiler};
use vp_instrument::{Instrumenter, Selection};
use vp_sim::{InputSet, Machine, MachineConfig};
use vp_specialize::{specialize, specialize_multi, Candidate, MultiCandidate};

/// A kernel with a bimodal load (60% one value, 40% another) feeding a
/// long pure chain — the distribution where multi-way wins.
const KERNEL: &str = r#"
    .data
    which: .quad 0
    vals:  .quad 80, 120
    .text
    main:
        la  r10, which
        la  r11, vals
        li  r9, 20000
        li  r18, 0
    loop:
        ldd  r12, 0(r10)
        addi r12, r12, 1
        remi r12, r12, 5
        std  r12, 0(r10)
        slti r13, r12, 3
        xori r13, r13, 1
        slli r13, r13, 3
        add  r13, r13, r11
        ldd  r2, 0(r13)      # bimodal load: 80 (60%) or 120 (40%)
        srli r3, r2, 2
        muli r3, r3, 7
        addi r3, r3, 3
        xori r3, r3, 44
        slli r4, r3, 1
        add  r5, r4, r3
        srli r5, r5, 1
        andi r5, r5, 2047
        muli r5, r5, 13
        addi r5, r5, 29
        xori r5, r5, 333
        srli r5, r5, 1
        add  r18, r18, r5
        addi r9, r9, -1
        bnz  r9, loop
        andi a0, r18, 255
        sys  exit
"#;

fn run(p: &vp_asm::Program) -> (i64, u64) {
    let mut m = Machine::new(p.clone(), MachineConfig::new().input(InputSet::empty())).unwrap();
    let out = m.run(vp_bench::BUDGET).unwrap();
    (out.exit_code, out.instructions)
}

fn main() {
    vp_bench::heading("E17", "multi-way specialization on top-k TNV values (extension)");
    let program = vp_asm::assemble(KERNEL).expect("kernel assembles");
    let load_index = program
        .code()
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_load())
        .map(|(i, _)| i as u32)
        .nth(1)
        .expect("bimodal load");

    // Profile to recover the top values and their combined invariance.
    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(&program, MachineConfig::new(), vp_bench::BUDGET, &mut profiler)
        .expect("profile");
    let tracker = profiler.tracker(load_index).expect("profiled");
    let top: Vec<u64> = tracker.tnv().top(2).iter().map(|e| e.value).collect();
    let metrics = profiler.metrics_for(load_index).expect("metrics");
    println!(
        "bimodal load @{load_index}: Inv-Top(1) {:.1}%, Inv-Top(2) {:.1}%, top values {:?}\n",
        metrics.inv_top1 * 100.0,
        tracker.inv_top(2) * 100.0,
        top
    );

    let (base_code, base) = run(&program);
    println!("{:<22} {:>12} {:>9} {:>6}", "variant", "instructions", "speedup", "exact");
    println!("{:<22} {:>12} {:>9} {:>6}", "baseline", base, "1.000x", "yes");

    let one = specialize(
        &program,
        &Candidate {
            load_index,
            value: top[0],
            invariance: metrics.inv_top1,
            executions: metrics.executions,
        },
    )
    .expect("one-way");
    let (c1, n1) = run(&one);
    println!(
        "{:<22} {:>12} {:>8.3}x {:>6}",
        "one-way (top-1)",
        n1,
        base as f64 / n1 as f64,
        if c1 == base_code { "yes" } else { "NO" }
    );

    let two = specialize_multi(
        &program,
        &MultiCandidate {
            load_index,
            values: top.clone(),
            invariance: tracker.inv_top(2),
            executions: metrics.executions,
        },
    )
    .expect("two-way");
    let (c2, n2) = run(&two);
    println!(
        "{:<22} {:>12} {:>8.3}x {:>6}",
        "two-way (top-2)",
        n2,
        base as f64 / n2 as f64,
        if c2 == base_code { "yes" } else { "NO" }
    );

    println!("\nThe two-way dispatch converts the 40%-of-executions slow path of the");
    println!("one-way guard into a second folded fast path — the use case for which");
    println!("the TNV table retains N values rather than one.");
}
