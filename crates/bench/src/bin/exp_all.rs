//! Runs every experiment binary (E1–E14) in sequence. Used to regenerate
//! EXPERIMENTS.md's captured output:
//!
//! ```text
//! cargo run --release -p vp-bench --bin exp_all
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 17] = [
    "exp_benchmarks",
    "exp_loads",
    "exp_all_instrs",
    "exp_inv_histogram",
    "exp_by_class",
    "exp_tnv_policy",
    "exp_convergent",
    "exp_train_test",
    "exp_memory",
    "exp_params",
    "exp_bb_quantile",
    "exp_overhead",
    "exp_specialize",
    "exp_predict",
    "exp_path",
    "exp_temporal",
    "exp_multiway",
];

fn main() {
    let current = std::env::current_exe().expect("current exe path");
    let bin_dir = current.parent().expect("bin dir");
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        let status =
            Command::new(&path).status().unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
        println!();
    }
}
