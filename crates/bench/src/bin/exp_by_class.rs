//! E5 — invariance by instruction class: the paper's per-opcode-type
//! breakdown of value invariance and last-value predictability.
//!
//! Paper shape: loads and logic/compare results are the most invariant
//! classes; plain integer ALU (dominated by address arithmetic and loop
//! counters) is the least; multiplies and FP sit in between.

use std::collections::BTreeMap;

use vp_bench::all_instr_profile;
use vp_core::{aggregate, group_by_class, EntityMetrics};
use vp_isa::OpClass;
use vp_workloads::{suite, DataSet};

fn main() {
    vp_bench::heading("E5", "value invariance by instruction class (suite-wide, test input)");

    let mut per_class: BTreeMap<OpClass, Vec<EntityMetrics>> = BTreeMap::new();
    for w in suite() {
        let profiler = all_instr_profile(&w, DataSet::Test);
        for (class, ms) in group_by_class(w.program(), &profiler.metrics()) {
            per_class.entry(class).or_default().extend(ms);
        }
    }

    println!(
        "{:<10} {:>14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "class", "execs", "LVP%", "InvT1%", "InvTN%", "InvA1%", "%zero"
    );
    for (class, metrics) in &per_class {
        let a = aggregate(metrics);
        println!(
            "{:<10} {:>14} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            class.name(),
            a.executions,
            a.lvp * 100.0,
            a.inv_top1 * 100.0,
            a.inv_topn * 100.0,
            a.inv_all1.unwrap_or(0.0) * 100.0,
            a.pct_zero * 100.0,
        );
    }
}
