//! The `vprof optimize` driver: train-profile-driven specialization over
//! suite workloads, evaluated on the test input.
//!
//! The suite profiling pass (any [`ProfileMode`](crate::ProfileMode),
//! through [`SuiteRunner`](crate::SuiteRunner) so `--jobs/--shards/
//! --workers`, the governor and the fault machinery all apply) supplies
//! per-load metrics on the *train* input. This module turns those metrics
//! into a [`ProgramOptimize`] per workload via the program-level pipeline
//! in `vp-specialize`, then renders the cross-input report: a
//! deterministic text table, ordered-JSON telemetry records, a durable
//! CRC-footered artifact, and a `BENCH_optimize.json` trajectory entry.
//!
//! Everything emitted here is parallelism-invariant: suite metrics are
//! identical across `--jobs/--shards/--workers` by construction, and the
//! planning/specialization/evaluation steps all run deterministically in
//! the parent process — so the report and telemetry are byte-identical
//! across those settings (golden- and CI-verified).

use std::path::Path;

use vp_core::durable::{crc32, write_atomic, FOOTER_PREFIX};
use vp_obs::telemetry::record;
use vp_obs::{CounterId, Counts, Json};
use vp_specialize::{
    optimize_program, tracker_top_values, OptimizeOptions, ProgramOptimize, SiteOutcome,
};
use vp_workloads::{DataSet, Workload};

use crate::suite::SuiteOutcome;
use crate::{load_profile, BUDGET};

/// How many TNV values the exact extraction pass offers the planner per
/// site (the planner still caps the guard chain at its own `max_ways`).
const TOP_VALUE_POOL: usize = 8;

/// Configuration of one optimize run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConfig {
    /// Input the profile was gathered on.
    pub train: DataSet,
    /// Input original and specialized programs are evaluated on.
    pub test: DataSet,
    /// Program-level pipeline thresholds.
    pub options: OptimizeOptions,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            train: DataSet::Train,
            test: DataSet::Test,
            options: OptimizeOptions { budget: BUDGET, ..OptimizeOptions::default() },
        }
    }
}

/// One workload's optimize outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOptimize {
    /// Workload name.
    pub name: &'static str,
    /// The program-level pipeline result on the test input.
    pub result: ProgramOptimize,
}

impl WorkloadOptimize {
    /// Optimize-level event counters for this workload.
    pub fn events(&self) -> Counts {
        let mut c = Counts::new();
        c.add(CounterId::GuardHits, self.result.guard_hits());
        c.add(CounterId::GuardMisses, self.result.guard_misses());
        c.add(CounterId::SitesSpecialized, self.result.sites.len() as u64);
        c.add(CounterId::CandidatesRejected, self.result.rejected.len() as u64);
        c
    }
}

/// The whole suite's optimize results, in canonical suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// Profile input.
    pub train: DataSet,
    /// Evaluation input.
    pub test: DataSet,
    /// Profiling mode label of the suite pass (e.g. `full`, `adaptive`).
    pub mode: String,
    /// One entry per profiled workload.
    pub workloads: Vec<WorkloadOptimize>,
}

/// Runs the optimize pipeline over a completed suite profiling pass.
///
/// `outcome` must come from a [`SuiteRunner`](crate::SuiteRunner) run on
/// `cfg.train`; quarantined workloads are simply absent from the report,
/// like they are from the profile. Each workload gets one extra exact
/// profiling pass on the train input to extract the top TNV values the
/// multi-way planner considers.
///
/// # Errors
///
/// Returns a message naming the workload when a program no longer
/// resolves or an evaluation run faults.
pub fn optimize_from_outcome(
    outcome: &SuiteOutcome,
    workloads: &[Workload],
    mode: &str,
    cfg: &OptimizeConfig,
) -> Result<OptimizeReport, String> {
    let mut results = Vec::with_capacity(outcome.profile.workloads.len());
    for wp in &outcome.profile.workloads {
        let workload = workloads
            .iter()
            .find(|w| w.name() == wp.name)
            .ok_or_else(|| format!("{}: workload not in the suite", wp.name))?;
        // Exact value extraction: the suite pass may have run a sampling
        // profiler whose metrics drive *selection*; the guard chain wants
        // the precise top values, so take one full pass on train.
        let exact = load_profile(workload, cfg.train);
        let top = |index: u32| {
            exact.tracker(index).map(|t| tracker_top_values(t, TOP_VALUE_POOL)).unwrap_or_default()
        };
        let result = optimize_program(
            workload.program(),
            &wp.metrics,
            &top,
            workload.input(cfg.test),
            &cfg.options,
        )
        .map_err(|e| format!("{}: {e}", wp.name))?;
        results.push(WorkloadOptimize { name: wp.name, result });
    }
    Ok(OptimizeReport {
        train: cfg.train,
        test: cfg.test,
        mode: mode.to_string(),
        workloads: results,
    })
}

impl OptimizeReport {
    /// Total optimize-level event counters across the suite.
    pub fn events(&self) -> Counts {
        let mut total = Counts::new();
        for w in &self.workloads {
            total.merge(&w.events());
        }
        total
    }

    /// Whether every specialized workload stayed output-equivalent.
    pub fn all_equivalent(&self) -> bool {
        self.workloads.iter().all(|w| w.result.eval.equivalent)
    }

    /// Renders the deterministic report text: the per-workload table, the
    /// specialized-site detail, and the rejection detail. No wall times,
    /// no parallelism-dependent fields.
    pub fn render(&self) -> String {
        let mut out = format!(
            "==== optimize: train-profile-driven specialization ({} -> {}, mode {}) ====\n\n",
            self.train.name(),
            self.test.name(),
            self.mode
        );
        out.push_str(&format!(
            "{:<16} {:>14} {:>14} {:>8} {:>6} {:>9} {:>7}  {}\n",
            "workload",
            "base instrs",
            "spec instrs",
            "reduct%",
            "sites",
            "rejected",
            "hit%",
            "equivalent"
        ));
        for w in &self.workloads {
            let r = &w.result;
            let hits = r.guard_hits();
            let misses = r.guard_misses();
            let hit_rate = if hits + misses > 0 {
                format!("{:.1}", hits as f64 / (hits + misses) as f64 * 100.0)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "{:<16} {:>14} {:>14} {:>8.2} {:>6} {:>9} {:>7}  {}\n",
                w.name,
                r.eval.base_instructions,
                r.eval.specialized_instructions,
                r.eval.reduction_pct(),
                r.sites.len(),
                r.rejected.len(),
                hit_rate,
                r.eval.equivalent
            ));
        }
        let specialized: Vec<(&str, &SiteOutcome)> = self
            .workloads
            .iter()
            .flat_map(|w| w.result.sites.iter().map(move |s| (w.name, s)))
            .collect();
        if !specialized.is_empty() {
            out.push_str("\nsites:\n");
            for (name, s) in specialized {
                let values: Vec<String> = s.site.values.iter().map(|v| format!("{v:#x}")).collect();
                out.push_str(&format!(
                    "  {:<16} @{:<5} values [{}]  inv {:.1}%  execs {}  hits {}  misses {}\n",
                    name,
                    s.site.load_index,
                    values.join(", "),
                    s.invariance * 100.0,
                    s.executions,
                    s.guards.hits,
                    s.guards.misses
                ));
            }
        }
        let rejected: Vec<(&str, &vp_specialize::RejectedCandidate)> = self
            .workloads
            .iter()
            .flat_map(|w| w.result.rejected.iter().map(move |r| (w.name, r)))
            .collect();
        if !rejected.is_empty() {
            out.push_str("\nrejected:\n");
            for (name, r) in rejected {
                out.push_str(&format!(
                    "  {:<16} @{:<5} {:<17} inv {:.1}%  execs {}\n",
                    name,
                    r.load_index,
                    r.reason.name(),
                    r.invariance * 100.0,
                    r.executions
                ));
            }
        }
        out
    }

    /// The durable report artifact: [`render`](Self::render) plus the
    /// `#vp-crc32` integrity footer over the body (same convention as
    /// profile TSVs), with the workload count as the row count.
    pub fn render_durable(&self) -> String {
        let body = self.render();
        format!("{body}{FOOTER_PREFIX} {:08x} {}\n", crc32(body.as_bytes()), self.workloads.len())
    }

    /// Writes the durable artifact atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic write.
    pub fn write_report(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.render_durable().as_bytes())
    }

    /// Builds the telemetry records of the run: one `run` record with the
    /// suite-wide totals, then one `optimize` record per workload with
    /// the cross-input evaluation, guard accounting, and per-site /
    /// per-rejection detail. Deliberately carries no `jobs`/`shards`/
    /// `workers` field and no wall times: the records are identical
    /// however the profiling pass was parallelized.
    pub fn optimize_records(&self, tool: &str) -> Vec<Json> {
        let total_base: u64 = self.workloads.iter().map(|w| w.result.eval.base_instructions).sum();
        let total_spec: u64 =
            self.workloads.iter().map(|w| w.result.eval.specialized_instructions).sum();
        let mut records = vec![record(
            "run",
            tool,
            vec![
                ("tool", Json::Str(tool.to_string())),
                ("dataset", Json::Str(self.test.name().to_string())),
                ("train", Json::Str(self.train.name().to_string())),
                ("mode", Json::Str(self.mode.clone())),
                ("workloads", Json::U64(self.workloads.len() as u64)),
                ("base_instructions", Json::U64(total_base)),
                ("specialized_instructions", Json::U64(total_spec)),
                ("events", self.events().to_json()),
            ],
        )];
        for w in &self.workloads {
            let r = &w.result;
            let sites: Vec<Json> = r
                .sites
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("load_index", Json::U64(u64::from(s.site.load_index))),
                        (
                            "values",
                            Json::Arr(s.site.values.iter().map(|&v| Json::U64(v)).collect()),
                        ),
                        ("invariance", Json::F64(s.invariance)),
                        ("train_executions", Json::U64(s.executions)),
                        ("hits", Json::U64(s.guards.hits)),
                        ("misses", Json::U64(s.guards.misses)),
                        ("hit_rate", Json::F64(s.guards.hit_rate())),
                    ])
                })
                .collect();
            let rejected: Vec<Json> = r
                .rejected
                .iter()
                .map(|rej| {
                    Json::obj(vec![
                        ("load_index", Json::U64(u64::from(rej.load_index))),
                        ("reason", Json::Str(rej.reason.name().to_string())),
                        ("train_executions", Json::U64(rej.executions)),
                    ])
                })
                .collect();
            records.push(record(
                "optimize",
                w.name,
                vec![
                    ("train", Json::Str(self.train.name().to_string())),
                    ("dataset", Json::Str(self.test.name().to_string())),
                    ("mode", Json::Str(self.mode.clone())),
                    ("base_instructions", Json::U64(r.eval.base_instructions)),
                    ("specialized_instructions", Json::U64(r.eval.specialized_instructions)),
                    ("reduction_pct", Json::F64(r.eval.reduction_pct())),
                    ("equivalent", Json::Bool(r.eval.equivalent)),
                    ("sites", Json::U64(r.sites.len() as u64)),
                    ("rejected", Json::U64(r.rejected.len() as u64)),
                    ("guard_hits", Json::U64(r.guard_hits())),
                    ("guard_misses", Json::U64(r.guard_misses())),
                    ("events", w.events().to_json()),
                    ("site_detail", Json::Arr(sites)),
                    ("rejected_detail", Json::Arr(rejected)),
                ],
            ));
        }
        records
    }

    /// The `BENCH_optimize.json` trajectory entry: per-workload
    /// dynamic-instruction reduction percentages plus suite totals, as one
    /// ordered-JSON line.
    pub fn bench_json(&self) -> String {
        let per_workload: Vec<(String, Json)> = self
            .workloads
            .iter()
            .map(|w| (w.name.to_string(), Json::F64(w.result.eval.reduction_pct())))
            .collect();
        let total_base: u64 = self.workloads.iter().map(|w| w.result.eval.base_instructions).sum();
        let total_spec: u64 =
            self.workloads.iter().map(|w| w.result.eval.specialized_instructions).sum();
        let total_pct = if total_base > 0 {
            (total_base as f64 - total_spec as f64) / total_base as f64 * 100.0
        } else {
            0.0
        };
        Json::obj(vec![
            ("mode", Json::Str(self.mode.clone())),
            ("workloads", Json::Obj(per_workload)),
            ("sites_specialized", Json::U64(self.events().get(CounterId::SitesSpecialized))),
            ("total_reduction_pct", Json::F64(total_pct)),
            ("all_equivalent", Json::Bool(self.all_equivalent())),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteRunner;
    use vp_obs::telemetry::{mask_volatile, parse_jsonl, to_jsonl};
    use vp_workloads::suite;

    fn small_report() -> OptimizeReport {
        let ws = &suite()[..3];
        let outcome = SuiteRunner::new().try_run_workloads(ws, DataSet::Train);
        assert!(outcome.is_clean());
        optimize_from_outcome(&outcome, ws, "full", &OptimizeConfig::default()).unwrap()
    }

    #[test]
    fn report_is_deterministic_and_jobs_invariant() {
        let ws = &suite()[..3];
        let serial = SuiteRunner::new().try_run_workloads(ws, DataSet::Train);
        let parallel = SuiteRunner::new().jobs(4).try_run_workloads(ws, DataSet::Train);
        let cfg = OptimizeConfig::default();
        let a = optimize_from_outcome(&serial, ws, "full", &cfg).unwrap();
        let b = optimize_from_outcome(&parallel, ws, "full", &cfg).unwrap();
        assert_eq!(a.render_durable(), b.render_durable());
        assert_eq!(
            to_jsonl(&a.optimize_records("optimize")),
            to_jsonl(&b.optimize_records("optimize"))
        );
    }

    #[test]
    fn records_parse_and_carry_guard_rates() {
        let report = small_report();
        let records = report.optimize_records("optimize");
        let text = to_jsonl(&records);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), report.workloads.len() + 1);
        assert_eq!(parsed[0].get("kind").unwrap().as_str(), Some("run"));
        for rec in &parsed[1..] {
            assert_eq!(rec.get("kind").unwrap().as_str(), Some("optimize"));
            assert!(rec.get("equivalent").is_some());
            assert!(rec.get("guard_hits").is_some());
            // Masking is the identity: nothing volatile is emitted.
            assert_eq!(&mask_volatile(rec), rec);
        }
    }

    #[test]
    fn durable_footer_verifies() {
        let report = small_report();
        let durable = report.render_durable();
        let body = report.render();
        assert!(durable.starts_with(&body));
        let footer = durable.strip_prefix(&body).unwrap();
        assert!(footer.starts_with(FOOTER_PREFIX));
        let crc = format!("{:08x}", crc32(body.as_bytes()));
        assert!(footer.contains(&crc), "{footer}");
    }
}
