//! Telemetry emission for suite runs and experiment binaries.
//!
//! Builds the schema-versioned records defined in [`vp_obs::telemetry`]
//! from a [`SuiteProfile`] (one `run` record, one `workload` record per
//! workload, `phase` records when a [`MemRecorder`] captured any) and
//! writes them as `telemetry.jsonl`.

use std::path::{Path, PathBuf};

use vp_obs::telemetry::{record, to_jsonl};
use vp_obs::{Counts, HistId, Json, MemRecorder};
use vp_workloads::DataSet;

use crate::suite::{SuiteOutcome, SuiteProfile};

/// Environment variable overriding the default telemetry path.
pub const TELEMETRY_ENV: &str = "VP_TELEMETRY";

/// Where telemetry goes when no path is given: `$VP_TELEMETRY` if set,
/// else `telemetry.jsonl` in the working directory.
pub fn default_path() -> PathBuf {
    std::env::var_os(TELEMETRY_ENV).map_or_else(|| PathBuf::from("telemetry.jsonl"), PathBuf::from)
}

/// Builds the telemetry records of one suite run: a `run` record leading
/// with the configuration and suite-wide event totals, then one
/// `workload` record per workload (deterministic event counts, masked-out
/// volatile wall times, the aggregate's headline metrics), then one
/// `phase` record per phase the recorder captured.
pub fn suite_records(
    tool: &str,
    ds: DataSet,
    jobs: usize,
    mode: &str,
    profile: &SuiteProfile,
    rec: Option<&MemRecorder>,
) -> Vec<Json> {
    let mut total_events = Counts::new();
    for w in &profile.workloads {
        total_events.merge(&w.events);
    }

    let mut run_fields = vec![
        ("tool", Json::Str(tool.to_string())),
        ("dataset", Json::Str(ds.name().to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("jobs", Json::U64(jobs as u64)),
        ("workloads", Json::U64(profile.workloads.len() as u64)),
        ("instructions", Json::U64(profile.total_instructions())),
        ("events", total_events.to_json()),
    ];
    if let Some(rec) = rec {
        let busy = rec.hist(HistId::WorkerBusyNs);
        let wait = rec.hist(HistId::WorkerQueueWaitNs);
        if busy.count() > 0 {
            run_fields.push((
                "workers",
                Json::obj(vec![
                    ("count", Json::U64(busy.count())),
                    ("busy_ns", Json::U64(busy.sum())),
                    ("wait_ns", Json::U64(wait.sum())),
                ]),
            ));
        }
    }
    let mut records = vec![record("run", tool, run_fields)];

    for w in &profile.workloads {
        let mut fields = vec![
            ("dataset", Json::Str(ds.name().to_string())),
            ("mode", Json::Str(mode.to_string())),
            ("instructions", Json::U64(w.instructions)),
            ("profile_fraction", Json::F64(w.profile_fraction)),
            ("inv_top1", Json::F64(w.aggregate.inv_top1)),
            ("lvp", Json::F64(w.aggregate.lvp)),
            ("pct_zero", Json::F64(w.aggregate.pct_zero)),
            ("events", w.events.to_json()),
            ("wall_ns", Json::U64(w.wall_ns)),
        ];
        if let Some(base) = w.baseline_wall_ns {
            fields.push(("baseline_wall_ns", Json::U64(base)));
        }
        if let Some(slowdown) = w.slowdown() {
            fields.push(("slowdown", Json::F64(slowdown)));
        }
        if let Some(gov) = &w.governor {
            fields.push((
                "governor",
                Json::obj(vec![
                    ("bytes_peak", Json::U64(gov.bytes_peak)),
                    ("entities_degraded", Json::U64(gov.entities_degraded)),
                    ("entities_dropped", Json::U64(gov.entities_dropped)),
                    ("observations_dropped", Json::U64(gov.observations_dropped)),
                ]),
            ));
        }
        if let Some(ph) = &w.phase {
            fields.push((
                "phase",
                Json::obj(vec![
                    ("windows", Json::U64(ph.windows)),
                    ("shifts_detected", Json::U64(ph.shifts_detected)),
                    ("rearms", Json::U64(ph.rearms)),
                    ("rearms_denied", Json::U64(ph.rearms_denied)),
                ]),
            ));
        }
        records.push(record("workload", w.name, fields));
    }

    if let Some(rec) = rec {
        for (name, nanos) in rec.phases() {
            records.push(record("phase", &name, vec![("phase_ns", Json::U64(nanos))]));
        }
    }
    records
}

/// Builds the fault records of a [`SuiteOutcome`]: one `faults` record
/// carrying the panic/retry/quarantine counters (only when any is
/// nonzero) and one `failure` record per quarantined workload. A clean
/// run contributes nothing, so existing telemetry stays byte-identical.
pub fn fault_records(tool: &str, outcome: &SuiteOutcome) -> Vec<Json> {
    let mut records = Vec::new();
    if outcome.faults.total() > 0 {
        records.push(record("faults", tool, vec![("events", outcome.faults.to_json())]));
    }
    for f in &outcome.failures {
        let mut fields = vec![
            ("attempts", Json::U64(f.attempts)),
            // `kind` is taken by the record type; the failure's own
            // classification gets its own key.
            ("failure_kind", Json::Str(f.kind_str().to_string())),
        ];
        if let Some(x) = &f.worker {
            // Which crash domain took the assignment down, and how it
            // ended — lets `vprof stats` render worker-death(w0:signal 9).
            fields.push(("worker", Json::U64(x.worker)));
            fields.push(("exit", Json::Str(x.status.clone())));
        }
        fields.push(("error", Json::Str(f.error.clone())));
        records.push(record("failure", f.name, fields));
    }
    records
}

/// Writes records to `path`, replacing any existing file. The write is
/// atomic ([`vp_core::durable::write_atomic`]): a crash mid-write leaves
/// the previous telemetry intact, never a torn file.
pub fn write_jsonl(path: &Path, records: &[Json]) -> std::io::Result<()> {
    vp_core::durable::write_atomic(path, to_jsonl(records).as_bytes())
}

/// Appends records to `path`, creating it if missing — used by `exp_all`
/// style sequences where several binaries log into one file. Goes through
/// [`vp_core::durable::append_jsonl`], which first truncates away a final
/// line torn by an earlier crash and fsyncs the append.
pub fn append_jsonl(path: &Path, records: &[Json]) -> std::io::Result<()> {
    vp_core::durable::append_jsonl(path, &to_jsonl(records)).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteRunner;
    use std::sync::Arc;
    use vp_obs::telemetry::parse_jsonl;
    use vp_obs::SCHEMA_VERSION;
    use vp_workloads::suite;

    #[test]
    fn records_cover_run_and_workloads() {
        let rec = Arc::new(MemRecorder::new());
        let profile =
            SuiteRunner::new().recorder(rec.clone()).run_workloads(&suite()[..2], DataSet::Test);
        let records =
            suite_records("profile-suite", DataSet::Test, 1, "full", &profile, Some(&rec));
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].get("kind").unwrap().as_str(), Some("run"));
        assert_eq!(records[0].get("schema").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert!(records[0].get("workers").is_some(), "worker summary present with a recorder");
        for (rec, w) in records[1..].iter().zip(&profile.workloads) {
            assert_eq!(rec.get("kind").unwrap().as_str(), Some("workload"));
            assert_eq!(rec.get("name").unwrap().as_str(), Some(w.name));
            assert_eq!(rec.get("instructions").unwrap().as_u64(), Some(w.instructions));
        }
        // The whole set round-trips through JSONL.
        let text = to_jsonl(&records);
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn write_and_append() {
        let dir = std::env::temp_dir().join("vp_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let profile = SuiteRunner::new().run_workloads(&suite()[..1], DataSet::Test);
        let records = suite_records("t", DataSet::Test, 1, "full", &profile, None);
        write_jsonl(&path, &records).unwrap();
        append_jsonl(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap().len(), records.len() * 2);
        std::fs::remove_file(&path).unwrap();
    }
}
