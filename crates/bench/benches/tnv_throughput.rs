//! Criterion bench: TNV table update throughput across policies and table
//! sizes, against the exact full-histogram profile.
//!
//! This is the engineering claim behind the TNV table: constant space and
//! a few nanoseconds per profiled value, versus a hash-map histogram whose
//! cost and footprint grow with distinct values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vp_core::{FullProfile, Policy, TnvTable};

/// A deterministic semi-invariant stream: 80% one value, the rest drawn
/// from a rotating set (the workload TNV tables actually face).
fn stream(len: usize) -> Vec<u64> {
    (0..len as u64).map(|i| if i % 5 == 4 { 1000 + (i % 97) } else { 7 }).collect()
}

fn bench_tnv(c: &mut Criterion) {
    let values = stream(10_000);
    let mut group = c.benchmark_group("tnv_update");
    group.throughput(Throughput::Elements(values.len() as u64));

    for capacity in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("lfu_clear", capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let mut t =
                    TnvTable::new(cap, Policy::LfuClear { steady: cap / 2, clear_interval: 2000 });
                for &v in &values {
                    t.observe(black_box(v));
                }
                black_box(t.inv_top(1))
            })
        });
        group.bench_with_input(BenchmarkId::new("lfu", capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let mut t = TnvTable::new(cap, Policy::Lfu);
                for &v in &values {
                    t.observe(black_box(v));
                }
                black_box(t.inv_top(1))
            })
        });
        group.bench_with_input(BenchmarkId::new("lru", capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let mut t = TnvTable::new(cap, Policy::Lru);
                for &v in &values {
                    t.observe(black_box(v));
                }
                black_box(t.inv_top(1))
            })
        });
    }

    group.bench_function("full_histogram", |b| {
        b.iter(|| {
            let mut f = FullProfile::new();
            for &v in &values {
                f.observe(black_box(v));
            }
            black_box(f.inv_all(1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tnv);
criterion_main!(benches);
