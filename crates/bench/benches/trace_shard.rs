//! Criterion bench: trace-event ingestion throughput.
//!
//! Compares the three ways a recorded `(pc, value)` stream can reach the
//! full profiler — the per-event `observe` call, the batched
//! `observe_batch` path (run-grouped, TNV top-slot fast path), and the
//! entity-sharded parallel replay — on both a synthetic semi-invariant
//! stream and a real recorded workload trace. The engineering claim is
//! that batching eliminates enough per-event dispatch to be ≥ 1.5× the
//! scalar path, and that sharding stacks on top for large streams.
//!
//! A second group measures *replay* — decode the binary trace container,
//! then profile — pitting the current zero-copy path (SWAR varints,
//! sliced CRC, one reused scratch buffer) against a faithful replica of
//! the previous release's decoder (byte-at-a-time varints, bit-at-a-time
//! CRC, a fresh `Vec` per chunk). The claim is ≥ 1.5× events/sec on the
//! recorded stream.
//!
//! With `BENCH_SHARD_JSON=<path>` set (and outside `cargo test`'s
//! `--test` smoke mode), a machine-readable events/sec summary is also
//! written to `<path>` — the vendored criterion stand-in has no JSON
//! reports of its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::{Duration, Instant};
use vp_bench::value_stream;
use vp_core::{
    profile_sharded, track::TrackerConfig, AdaptiveProfiler, ConvergentConfig, ConvergentProfiler,
    InstructionProfiler, PhaseBudget,
};
use vp_instrument::{trace_codec, Selection};
use vp_workloads::{suite, DataSet};

/// Faithful replica of the pre-zero-copy decoder, kept as the bench
/// baseline: LEB128 a byte at a time, CRC32 a bit at a time, and a
/// freshly sized `Vec` per chunk.
mod baseline {
    fn crc32_step(crc: u32, byte: u8) -> u32 {
        let mut crc = crc ^ u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
        crc
    }

    fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = bytes[*pos];
            *pos += 1;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return value;
            }
            shift += 7;
        }
    }

    /// Decodes one well-formed trace chunk-by-chunk, handing each chunk's
    /// freshly allocated event `Vec` to `sink` — the shape of the old
    /// serial replay loop. Panics on malformed input (bench streams are
    /// pristine by construction).
    pub fn replay(bytes: &[u8], mut sink: impl FnMut(Vec<(u32, u64)>)) {
        assert_eq!(&bytes[..4], b"VPC1");
        let mut pos = 4usize;
        loop {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if len == 0 {
                return; // trailer
            }
            let count = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            let stored = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap());
            let payload = &bytes[pos + 12..pos + 12 + len];
            let mut crc = !0u32;
            for &b in &bytes[pos..pos + 8] {
                crc = crc32_step(crc, b);
            }
            for &b in payload {
                crc = crc32_step(crc, b);
            }
            assert_eq!(!crc, stored, "baseline replica sees a valid chunk");
            let mut chunk: Vec<(u32, u64)> = Vec::with_capacity(count);
            let mut p = 0usize;
            while p < len {
                let pc = read_varint(payload, &mut p) as u32;
                let value = read_varint(payload, &mut p);
                chunk.push((pc, value));
            }
            sink(chunk);
            pos += 12 + len;
        }
    }
}

/// Semi-invariant stream over a rotating set of entities: 80% one value,
/// the rest churn — the mix workload TNV tables actually face. Each
/// entity stays hot for a short run (an inner loop re-executing the same
/// load) before the stream moves on, as recorded traces do.
fn synthetic(len: usize) -> Vec<(u32, u64)> {
    (0..len as u64)
        .map(|i| ((i / 16 % 13) as u32, if i % 5 == 4 { 1000 + (i % 97) } else { 7 }))
        .collect()
}

fn scalar(events: &[(u32, u64)]) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::default());
    for &(pc, value) in events {
        p.observe(black_box(pc), black_box(value));
    }
    p
}

fn batched(events: &[(u32, u64)]) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::default());
    p.observe_batch(black_box(events));
    p
}

fn sharded(events: &[(u32, u64)], shards: usize) -> InstructionProfiler {
    profile_sharded(
        black_box(events),
        shards,
        || InstructionProfiler::new(TrackerConfig::default()),
    )
}

fn convergent_ingest(events: &[(u32, u64)]) -> ConvergentProfiler {
    let mut p = ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
    p.observe_batch(black_box(events));
    p
}

/// The adaptive profiler on a stream whose distribution never shifts:
/// every event still feeds the per-entity window sketch, so this
/// measures the pure detector overhead over the stock convergent path
/// (target: ≤ 5%).
fn adaptive_ingest(events: &[(u32, u64)]) -> AdaptiveProfiler {
    let mut p = AdaptiveProfiler::new(
        TrackerConfig::default(),
        ConvergentConfig::default(),
        PhaseBudget::default(),
    );
    p.observe_batch(black_box(events));
    p
}

fn bench_ingestion(c: &mut Criterion) {
    let streams: Vec<(&str, Vec<(u32, u64)>)> = vec![
        ("synthetic", synthetic(200_000)),
        ("recorded", value_stream(&suite()[0], DataSet::Test, Selection::LoadsOnly)),
    ];
    for (name, events) in &streams {
        let mut group = c.benchmark_group(format!("trace_ingest/{name}"));
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_function("scalar", |b| b.iter(|| black_box(scalar(events))));
        group.bench_function("batched", |b| b.iter(|| black_box(batched(events))));
        for shards in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &s| {
                b.iter(|| black_box(sharded(events, s)))
            });
        }
        group.finish();
    }

    // Adaptive-overhead pair on the phase-free synthetic stream: the
    // detector watches every event but never fires, so the gap between
    // these two is the cost of phase detection alone.
    let events = synthetic(200_000);
    let mut group = c.benchmark_group("adaptive_overhead/synthetic");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("convergent", |b| b.iter(|| black_box(convergent_ingest(&events))));
    group.bench_function("adaptive", |b| b.iter(|| black_box(adaptive_ingest(&events))));
    group.finish();
}

/// Old replay loop: decode each chunk into a fresh `Vec`, profile it.
fn replay_baseline(encoded: &[u8]) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::default());
    baseline::replay(black_box(encoded), |chunk| p.observe_batch(&chunk));
    p
}

/// Current replay loop: zero-copy chunk reader decoding into one reused
/// scratch buffer — the `vprof replay` serial path.
fn replay_zerocopy(encoded: &[u8]) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::default());
    let mut reader = trace_codec::ChunkReader::new(black_box(encoded)).unwrap();
    let mut scratch: Vec<(u32, u64)> = Vec::new();
    while reader.next_chunk_into(&mut scratch).unwrap() {
        p.observe_batch(&scratch);
    }
    p
}

fn bench_replay(c: &mut Criterion) {
    let streams: Vec<(&str, Vec<(u32, u64)>)> = vec![
        ("synthetic", synthetic(200_000)),
        ("recorded", value_stream(&suite()[0], DataSet::Test, Selection::LoadsOnly)),
    ];
    for (name, events) in &streams {
        let encoded = trace_codec::encode(events, trace_codec::DEFAULT_CHUNK_EVENTS);
        // The replica must agree with the real decoder before it is a
        // meaningful baseline.
        let mut replica: Vec<(u32, u64)> = Vec::new();
        baseline::replay(&encoded, |chunk| replica.extend(chunk));
        assert_eq!(&replica, events, "{name}: baseline replica decodes correctly");

        let mut group = c.benchmark_group(format!("trace_replay/{name}"));
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_function("pr4_baseline", |b| b.iter(|| black_box(replay_baseline(&encoded))));
        group.bench_function("zerocopy", |b| b.iter(|| black_box(replay_zerocopy(&encoded))));
        group.finish();
    }
}

/// Best-of-batches events/sec for `f` over `events` — the vendored
/// criterion keeps its measurements private, so the JSON artifact
/// measures independently with the same best-of discipline. Generic over
/// the profiler type so the same harness times full, convergent and
/// adaptive ingestion.
type IngestFn<'a, P> = &'a dyn Fn(&[(u32, u64)]) -> P;

fn rate<P>(events: &[(u32, u64)], f: IngestFn<'_, P>) -> f64 {
    black_box(f(events)); // warm-up
    let mut best = Duration::MAX;
    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        let start = Instant::now();
        black_box(f(events));
        best = best.min(start.elapsed());
    }
    events.len() as f64 / best.as_secs_f64()
}

/// Writes `BENCH_shard.json`-style output when `BENCH_SHARD_JSON` names a
/// path: events/sec for scalar vs batched vs sharded ingestion.
fn write_json_summary() {
    let Ok(path) = std::env::var("BENCH_SHARD_JSON") else { return };
    if path.is_empty() || std::env::args().any(|a| a == "--test") {
        return;
    }
    let streams = [
        ("synthetic", synthetic(200_000)),
        ("recorded", value_stream(&suite()[0], DataSet::Test, Selection::LoadsOnly)),
    ];
    let mut entries = Vec::new();
    for (name, events) in &streams {
        let scalar_eps = rate(events, &scalar);
        let batched_eps = rate(events, &batched);
        let sharded2_eps = rate(events, &|e| sharded(e, 2));
        let sharded4_eps = rate(events, &|e| sharded(e, 4));
        let encoded = trace_codec::encode(events, trace_codec::DEFAULT_CHUNK_EVENTS);
        let replay_pr4_eps = rate(events, &|e| {
            let _ = e;
            replay_baseline(&encoded)
        });
        let replay_zerocopy_eps = rate(events, &|e| {
            let _ = e;
            replay_zerocopy(&encoded)
        });
        entries.push(format!(
            "{{\"stream\":\"{name}\",\"events\":{},\"scalar_eps\":{scalar_eps:.0},\
             \"batched_eps\":{batched_eps:.0},\"sharded2_eps\":{sharded2_eps:.0},\
             \"sharded4_eps\":{sharded4_eps:.0},\"batched_over_scalar\":{:.3},\
             \"replay_pr4_eps\":{replay_pr4_eps:.0},\
             \"replay_zerocopy_eps\":{replay_zerocopy_eps:.0},\
             \"replay_speedup\":{:.3}}}",
            events.len(),
            batched_eps / scalar_eps,
            replay_zerocopy_eps / replay_pr4_eps,
        ));
    }
    // Adaptive-overhead entry: phase detection on a stream that never
    // shifts. `adaptive_overhead` is the fractional slowdown over the
    // stock convergent profiler; the target is ≤ 0.05 (recorded here for
    // trend tracking, not hard-asserted — CI machines are noisy).
    let phase_free = synthetic(200_000);
    let convergent_eps = rate(&phase_free, &convergent_ingest);
    let adaptive_eps = rate(&phase_free, &adaptive_ingest);
    let adaptive = format!(
        "{{\"stream\":\"synthetic\",\"convergent_eps\":{convergent_eps:.0},\
         \"adaptive_eps\":{adaptive_eps:.0},\"adaptive_overhead\":{:.3},\
         \"target_overhead\":0.05}}",
        convergent_eps / adaptive_eps - 1.0,
    );
    let json = format!(
        "{{\"bench\":\"trace_shard\",\"streams\":[{}],\"adaptive\":{adaptive}}}\n",
        entries.join(",")
    );
    match std::fs::write(&path, &json) {
        Ok(()) => print!("wrote {path}: {json}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn bench_all(c: &mut Criterion) {
    bench_ingestion(c);
    bench_replay(c);
    write_json_summary();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
