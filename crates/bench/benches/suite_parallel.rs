//! Criterion bench: wall-clock of profiling the whole workload suite
//! serially versus fanned out over worker threads (the parallel suite
//! runner). The parallel run produces bit-identical per-workload profiles
//! — this bench measures what the fan-out buys in elapsed time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vp_bench::SuiteRunner;
use vp_workloads::DataSet;

fn bench_suite(c: &mut Criterion) {
    let instrs = SuiteRunner::new().run(DataSet::Test).total_instructions();
    let mut group = c.benchmark_group("suite_profile");
    group.throughput(Throughput::Elements(instrs));
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                black_box(SuiteRunner::new().jobs(jobs).run(DataSet::Test).total_instructions())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
