//! Criterion bench: raw emulator speed (instructions per second) on the
//! benchmark suite — the baseline every profiling-overhead figure divides
//! by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vp_sim::Machine;
use vp_workloads::{DataSet, Workload};

fn bench_emulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator_run");
    for name in ["li", "m88ksim", "hydro2d"] {
        let w = Workload::by_name(name).expect("workload");
        let instrs = w.run(DataSet::Test, 100_000_000).expect("run").instructions;
        group.throughput(Throughput::Elements(instrs));
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w: &Workload| {
            b.iter(|| {
                let mut machine =
                    Machine::new(w.program().clone(), w.machine_config(DataSet::Test))
                        .expect("machine");
                black_box(machine.run(100_000_000).expect("run").instructions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
