//! Criterion bench: wall-clock cost of the profiling pipeline (experiment
//! E12's timing column, measured rigorously): uninstrumented run vs
//! no-op instrumentation vs load profiling vs all-instruction profiling vs
//! the convergent profiler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vp_core::{track::TrackerConfig, ConvergentConfig, ConvergentProfiler, InstructionProfiler};
use vp_instrument::{Analysis, Instrumenter, Selection};
use vp_sim::Machine;
use vp_workloads::{DataSet, Workload};

struct Nop;
impl Analysis for Nop {}

fn bench_overhead(c: &mut Criterion) {
    let w = Workload::by_name("m88ksim").expect("workload");
    let instrs = w.run(DataSet::Test, 100_000_000).expect("run").instructions;
    let mut group = c.benchmark_group("profiling_overhead");
    group.throughput(Throughput::Elements(instrs));

    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut m = Machine::new(w.program().clone(), w.machine_config(DataSet::Test))
                .expect("machine");
            black_box(m.run(100_000_000).expect("run").instructions)
        })
    });
    group.bench_function("noop_analysis", |b| {
        b.iter(|| {
            let mut a = Nop;
            black_box(
                Instrumenter::new()
                    .select(Selection::None)
                    .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut a)
                    .expect("run")
                    .outcome
                    .instructions,
            )
        })
    });
    group.bench_function("loads_full", |b| {
        b.iter(|| {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            black_box(
                Instrumenter::new()
                    .select(Selection::LoadsOnly)
                    .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut p)
                    .expect("run")
                    .counts
                    .total(),
            )
        })
    });
    group.bench_function("all_instrs_full", |b| {
        b.iter(|| {
            let mut p = InstructionProfiler::new(TrackerConfig::default());
            black_box(
                Instrumenter::new()
                    .select(Selection::RegisterDefining)
                    .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut p)
                    .expect("run")
                    .counts
                    .total(),
            )
        })
    });
    group.bench_function("all_instrs_convergent", |b| {
        b.iter(|| {
            let mut p =
                ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
            black_box(
                Instrumenter::new()
                    .select(Selection::RegisterDefining)
                    .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut p)
                    .expect("run")
                    .counts
                    .total(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
