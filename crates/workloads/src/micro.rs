//! Oracle micro-workloads with closed-form metric expectations, used to
//! validate the profiler end to end (see `tests/oracle.rs` at the
//! workspace root).

use vp_asm::Program;

/// A micro-workload: program plus the analytically expected metrics of its
/// single profiled load/instruction.
#[derive(Debug, Clone)]
pub struct MicroWorkload {
    /// Name for test diagnostics.
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Instruction index of the entity whose metrics are known.
    pub target_index: u32,
    /// Expected executions of the target.
    pub executions: u64,
    /// Expected `Inv-Top(1)` (exact).
    pub inv_top1: f64,
    /// Expected LVP.
    pub lvp: f64,
    /// Expected `%zero`.
    pub pct_zero: f64,
}

fn assemble(name: &str, src: &str) -> Program {
    vp_asm::assemble(src).unwrap_or_else(|e| panic!("micro workload {name}: {e}"))
}

/// A load executing `n` times, always returning the same non-zero value:
/// `Inv-Top(1) = 1`, `LVP = (n-1)/n`, `%zero = 0`.
pub fn constant_load(n: u64) -> MicroWorkload {
    let src = format!(
        r#"
        .data
        x: .quad 77
        .text
        main:
            li  r9, {n}
            la  r8, x
        loop:
            ldd r2, 0(r8)
            addi r9, r9, -1
            bnz r9, loop
            sys exit
        "#
    );
    let program = assemble("constant_load", &src);
    let target_index = find_first_load(&program);
    MicroWorkload {
        name: "constant_load",
        program,
        target_index,
        executions: n,
        inv_top1: 1.0,
        lvp: (n - 1) as f64 / n as f64,
        pct_zero: 0.0,
    }
}

/// A load alternating between two values (0 and 5) on every execution:
/// `Inv-Top(1) = 1/2`, `LVP = 0`, `%zero = 1/2`. `n` must be even.
pub fn alternating_load(n: u64) -> MicroWorkload {
    assert!(n.is_multiple_of(2), "n must be even for exact expectations");
    let src = format!(
        r#"
        .data
        x: .quad 0
        .quad 5
        .text
        main:
            li  r9, {n}
            la  r8, x
            li  r10, 0          # toggle
        loop:
            slli r11, r10, 3
            add  r11, r11, r8
            ldd  r2, 0(r11)
            xori r10, r10, 1
            addi r9, r9, -1
            bnz  r9, loop
            sys exit
        "#
    );
    let program = assemble("alternating_load", &src);
    let target_index = find_first_load(&program);
    MicroWorkload {
        name: "alternating_load",
        program,
        target_index,
        executions: n,
        inv_top1: 0.5,
        lvp: 0.0,
        pct_zero: 0.5,
    }
}

/// An instruction producing `n` distinct values (a counter):
/// `Inv-Top(1) = 1/n`, `LVP = 0`, `%zero = 1/n` (the final 0).
/// The target is the `addi` that decrements the counter.
pub fn counter(n: u64) -> MicroWorkload {
    let src = format!(
        r#"
        .text
        main:
            li r9, {n}
        loop:
            addi r9, r9, -1
            bnz r9, loop
            sys exit
        "#
    );
    let program = assemble("counter", &src);
    // li may expand; the decrementing addi is the instruction right
    // before the terminating branch.
    let target_index = program.len() as u32 - 3;
    MicroWorkload {
        name: "counter",
        program,
        target_index,
        executions: n,
        inv_top1: 1.0 / n as f64,
        lvp: 0.0,
        pct_zero: 1.0 / n as f64,
    }
}

/// A load seeing value A for the first half of the run and value B for the
/// second half: `Inv-Top(1) = 1/2` exactly, LVP = (n-2)/n. Exercises
/// phase-change behaviour of TNV policies. `n` must be even.
pub fn phase_change_load(n: u64) -> MicroWorkload {
    assert!(n.is_multiple_of(2), "n must be even for exact expectations");
    // The store executes after the load of the same iteration, so to have
    // exactly n/2 loads of each value the flip must fire when the counter
    // is at half + 1.
    let flip_at = n / 2 + 1;
    let src = format!(
        r#"
        .data
        x: .quad 3
        .text
        main:
            li  r9, {n}
            li  r12, {flip_at}
            la  r8, x
        loop:
            ldd r2, 0(r8)
            bne r9, r12, nophase
            li  r13, 9
            std r13, 0(r8)      # flip the loaded value at half time
        nophase:
            addi r9, r9, -1
            bnz r9, loop
            sys exit
        "#
    );
    let program = assemble("phase_change_load", &src);
    let target_index = find_first_load(&program);
    MicroWorkload {
        name: "phase_change_load",
        program,
        target_index,
        executions: n,
        inv_top1: 0.5,
        lvp: (n - 2) as f64 / n as f64,
        pct_zero: 0.0,
    }
}

/// A load that is 90% value A and 10% value B (every 10th execution):
/// `Inv-Top(1) = 0.9`, `LVP = 0.8 + 2/n`-ish — the canonical
/// *semi-invariant* entity. Expectations are given for `n % 10 == 0`.
pub fn semi_invariant_load(n: u64) -> MicroWorkload {
    assert!(n.is_multiple_of(10), "n must be a multiple of 10");
    let src = format!(
        r#"
        .data
        x: .quad 21
        y: .quad 4
        .text
        main:
            li  r9, {n}
            la  r8, x
            li  r10, 0          # modulo counter
        loop:
            li   r11, 9
            bne  r10, r11, common
            ldd  r2, 8(r8)      # rare path (same pc not used; distinct load)
            j    bump
        common:
            ldd  r2, 0(r8)
        bump:
            addi r10, r10, 1
            remi r10, r10, 10
            addi r9, r9, -1
            bnz  r9, loop
            sys  exit
        "#
    );
    // Here the *common* load is the target: it runs 0.9n times, always 21.
    let program = assemble("semi_invariant_load", &src);
    let loads: Vec<u32> = program
        .code()
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_load())
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(loads.len(), 2);
    MicroWorkload {
        name: "semi_invariant_load",
        program,
        target_index: loads[1],
        executions: n * 9 / 10,
        inv_top1: 1.0,
        lvp: 0.0, // overwritten below; computed by the caller if needed
        pct_zero: 0.0,
    }
}

fn find_first_load(program: &Program) -> u32 {
    program.code().iter().position(|i| i.is_load()).expect("micro workload has a load") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{Machine, MachineConfig};

    fn runs_clean(w: &MicroWorkload) {
        let mut m = Machine::new(w.program.clone(), MachineConfig::new()).unwrap();
        let out = m.run(10_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(out.instructions > 0);
        assert!((w.target_index as usize) < w.program.len(), "{}", w.name);
    }

    #[test]
    fn all_micro_workloads_run() {
        runs_clean(&constant_load(100));
        runs_clean(&alternating_load(100));
        runs_clean(&counter(100));
        runs_clean(&phase_change_load(100));
        runs_clean(&semi_invariant_load(100));
    }

    #[test]
    fn counter_target_is_the_decrement() {
        let w = counter(10);
        let instr = w.program.code()[w.target_index as usize];
        assert!(matches!(
            instr,
            vp_isa::Instruction::AluImm { op: vp_isa::AluOp::Add, imm: -1, .. }
        ));
    }
}
