//! # vp-workloads — the benchmark suite
//!
//! The paper profiled SPEC95 binaries (compress, gcc, li, ijpeg, go,
//! m88ksim, perl, vortex, hydro2d, applu, …), each with a *test* and a
//! *train* input (Table III.1). SPEC95 binaries and inputs are not
//! available to this reproduction, so this crate provides ten synthetic
//! VP64 programs, one per SPEC program family, engineered to exhibit the
//! value-locality phenomenology the paper reports for its counterpart:
//!
//! | workload | models | value behaviour exercised |
//! |---|---|---|
//! | `compress` | compress95 | hash-table loads, counts growing from zero (%zero decays) |
//! | `gcc` | gcc | three compile phases; a phase-changing mode load (0→1→2) |
//! | `li` | xlisp | interpreter: jump-table dispatch on skewed opcodes |
//! | `ijpeg` | ijpeg | quantization-table loads cycling few values |
//! | `go` | go | board scan: mostly-empty byte loads (high %zero) |
//! | `m88ksim` | m88ksim | simulator: fully invariant config loads + decode dispatch |
//! | `perl` | perl | string hashing + opcode dispatch |
//! | `vortex` | vortex | DB record walk: semi-invariant type tags |
//! | `hydro2d` | hydro2d | FP stencil converging toward uniform values |
//! | `applu` | applu | FP solver: repeated coefficients |
//!
//! Each workload carries seeded `test` and `train` [`InputSet`]s that
//! differ in seed, size and mixture parameters, supporting the paper's
//! cross-input experiments.
//!
//! The [`micro`] module additionally provides *oracle* workloads whose
//! metric values are known in closed form, used to validate the profiler.
//!
//! ```
//! use vp_workloads::{DataSet, Workload};
//!
//! let w = Workload::by_name("compress").unwrap();
//! let outcome = w.run(DataSet::Test, 10_000_000).unwrap();
//! assert!(outcome.instructions > 1_000);
//! ```

pub mod adversarial;
pub mod inputs;
pub mod micro;
pub mod programs;

use vp_asm::Program;
use vp_sim::{InputSet, Machine, MachineConfig, RunOutcome, SimError};

/// Which input data set to run — the paper's test/train methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSet {
    /// The `test` input.
    Test,
    /// The `train` input.
    Train,
}

impl DataSet {
    /// Data-set name as used in tables.
    pub fn name(self) -> &'static str {
        match self {
            DataSet::Test => "test",
            DataSet::Train => "train",
        }
    }
}

/// A benchmark: an assembled program plus its two input data sets.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    program: Program,
    test: InputSet,
    train: InputSet,
}

impl Workload {
    /// Builds one workload by name (see the crate docs for the list).
    pub fn by_name(name: &str) -> Option<Workload> {
        suite().into_iter().find(|w| w.name == name)
    }

    /// Workload name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The input for a data set.
    pub fn input(&self, ds: DataSet) -> &InputSet {
        match ds {
            DataSet::Test => &self.test,
            DataSet::Train => &self.train,
        }
    }

    /// Machine configuration for running this workload with `ds`.
    pub fn machine_config(&self, ds: DataSet) -> MachineConfig {
        MachineConfig::new().input(self.input(ds).clone())
    }

    /// Runs the workload to completion (uninstrumented).
    ///
    /// # Errors
    ///
    /// Propagates emulator faults, including budget exhaustion.
    pub fn run(&self, ds: DataSet, budget: u64) -> Result<RunOutcome, SimError> {
        let mut machine = Machine::new(self.program.clone(), self.machine_config(ds))?;
        machine.run(budget)
    }
}

/// The full ten-workload suite, in canonical order.
///
/// # Panics
///
/// Panics if a built-in program fails to assemble (a bug in this crate,
/// covered by tests).
pub fn suite() -> Vec<Workload> {
    programs::ALL
        .iter()
        .map(|&(name, description, source_fn)| {
            let source = source_fn();
            let program = vp_asm::assemble(&source)
                .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}"));
            Workload {
                name,
                description,
                program,
                test: inputs::generate(name, DataSet::Test),
                train: inputs::generate(name, DataSet::Train),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = 50_000_000;

    #[test]
    fn all_workloads_assemble_and_run_on_both_inputs() {
        for w in suite() {
            for ds in [DataSet::Test, DataSet::Train] {
                let out = w
                    .run(ds, BUDGET)
                    .unwrap_or_else(|e| panic!("{} [{}] failed: {e}", w.name(), ds.name()));
                assert!(
                    out.instructions > 10_000,
                    "{} [{}] ran only {} instructions",
                    w.name(),
                    ds.name(),
                    out.instructions
                );
                assert!(
                    out.instructions < 10_000_000,
                    "{} [{}] is too long for the experiment harness: {}",
                    w.name(),
                    ds.name(),
                    out.instructions
                );
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::by_name("li").unwrap();
        let a = w.run(DataSet::Test, BUDGET).unwrap();
        let b = w.run(DataSet::Test, BUDGET).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn test_and_train_differ() {
        for w in suite() {
            assert_ne!(
                w.input(DataSet::Test),
                w.input(DataSet::Train),
                "{}: inputs must differ",
                w.name()
            );
        }
    }

    #[test]
    fn suite_names_are_unique_and_lookup_works() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let mut names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        assert!(Workload::by_name("go").is_some());
        assert!(Workload::by_name("nonesuch").is_none());
        for w in &s {
            assert!(!w.description().is_empty());
            assert!(!w.program().is_empty());
        }
    }

    #[test]
    fn gcc_mode_load_is_phase_changing() {
        // The gcc stand-in's defining feature: its mode load sees exactly
        // three values, one per compile phase.
        use vp_instrument::{Instrumenter, Selection};
        let w = Workload::by_name("gcc").unwrap();
        let mut profiler = vp_core::InstructionProfiler::new(vp_core::TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut profiler)
            .unwrap();
        let mode_load = profiler
            .metrics()
            .into_iter()
            .find(|m| m.distinct == Some(3))
            .expect("a load seeing exactly the three phase values");
        // Each phase is one third of the run.
        assert!((mode_load.inv_all1.unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_names() {
        assert_eq!(DataSet::Test.name(), "test");
        assert_eq!(DataSet::Train.name(), "train");
    }
}
