//! The nine benchmark programs, as VP64 assembly source.
//!
//! Every program follows one input convention: the first `getinput` value
//! is an iteration/size parameter, further values are consumed as the
//! program's data. Exit codes are checksums, making runs deterministic and
//! comparable across profiling configurations.

/// One workload row: `(name, description, source builder)`.
pub type WorkloadSpec = (&'static str, &'static str, fn() -> String);

/// Table of all workloads.
pub const ALL: [WorkloadSpec; 10] = [
    ("compress", "hash-table substring counting (compress95 stand-in)", compress),
    ("gcc", "three-phase compile pipeline with phase-changing mode (gcc stand-in)", gcc),
    ("li", "tag-dispatched bytecode interpreter (xlisp stand-in)", li),
    ("ijpeg", "quantized block transform (ijpeg stand-in)", ijpeg),
    ("go", "board scanning with sparse stones (go stand-in)", go),
    ("m88ksim", "CPU simulator decode loop (m88ksim stand-in)", m88ksim),
    ("perl", "string hashing and op dispatch (perl stand-in)", perl),
    ("vortex", "record store with skewed type tags (vortex stand-in)", vortex),
    ("hydro2d", "Jacobi stencil relaxation (hydro2d stand-in)", hydro2d),
    ("applu", "coefficient-driven FP recurrence (applu stand-in)", applu),
];

/// compress95 stand-in: a hash loop over the input stream, bumping
/// counters in a large table. Table loads start at zero (high `%zero`
/// early) and grow; the hash state load is highly varying.
pub fn compress() -> String {
    r#"
    .data
    table:  .space 65536          # 8192 counters
    .text
    .proc main
    main:
        sys  getinput             # N = number of symbols
        mov  r9, v0
        la   r10, table
        li   r11, 0               # hash state
        li   r18, 0               # checksum
    loop:
        bz   r9, done
        sys  getinput             # next symbol
        mov  r12, v0
        muli r13, r11, 31
        add  r13, r13, r12
        andi r11, r13, 8191       # h = (h*31 + sym) & 8191
        slli r14, r11, 3
        add  r14, r14, r10
        ldd  r15, 0(r14)          # counter load: mostly 0 early on
        addi r15, r15, 1
        std  r15, 0(r14)
        add  r18, r18, r15
        addi r9, r9, -1
        j    loop
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// gcc stand-in: a three-phase pipeline (parse → optimize → emit) driven
/// by a `mode` word reloaded on every iteration of the central loop. The
/// mode load changes value exactly twice — the *phase-changing* stream the
/// TNV table's clearing policy is designed for — while each phase
/// exercises its own loads (symbol-table counters, IR rewriting, output
/// accumulation).
pub fn gcc() -> String {
    r#"
    .data
    mode:   .quad 0
    symtab: .space 2048           # 256 symbol buckets
    ir:     .space 4096           # 512 IR slots
    .text
    .proc main
    main:
        sys  getinput             # NP = iterations per phase
        mov  r14, v0
        slli r15, r14, 1          # 2*NP
        muli r16, r14, 3          # 3*NP
        la   r12, mode
        la   r10, symtab
        la   r11, ir
        li   r13, 0               # i
        li   r18, 0               # checksum
    loop:
        beq  r13, r16, done
        bne  r13, r14, notp1
        li   r20, 1               # enter optimize phase
        std  r20, 0(r12)
    notp1:
        bne  r13, r15, notp2
        li   r20, 2               # enter emit phase
        std  r20, 0(r12)
    notp2:
        ldd  r21, 0(r12)          # phase-changing mode load (0 -> 1 -> 2)
        bz   r21, parse
        li   r22, 1
        beq  r21, r22, opt
        # emit: read an IR slot and fold it into the output checksum
        remi r23, r13, 512
        slli r23, r23, 3
        add  r23, r23, r11
        ldd  r24, 0(r23)
        add  r18, r18, r24
        j    next
    parse:
        sys  getinput             # identifier token
        li   r25, 40503
        mul  r26, v0, r25
        andi r26, r26, 255        # bucket
        slli r26, r26, 3
        add  r26, r26, r10
        ldd  r27, 0(r26)          # symbol counter load
        addi r27, r27, 1
        std  r27, 0(r26)
        j    next
    opt:
        remi r23, r13, 512
        slli r23, r23, 3
        add  r23, r23, r11
        ldd  r24, 0(r23)          # IR slot load
        muli r24, r24, 3
        remi r17, r13, 256
        slli r17, r17, 3
        add  r17, r17, r10
        ldd  r19, 0(r17)          # symbol lookup load
        add  r24, r24, r19
        addi r24, r24, 7
        std  r24, 0(r23)
    next:
        addi r13, r13, 1
        j    loop
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// xlisp stand-in: a bytecode interpreter dispatching through a jump
/// table. Opcode frequencies are skewed, so the dispatch load is
/// semi-invariant — the behaviour that makes interpreters prime
/// specialization targets.
pub fn li() -> String {
    r#"
    .data
    jumptab: .quad op_add, op_sub, op_inc, op_set, op_zero, op_nop
    .text
    .proc main
    main:
        sys  getinput             # N = number of ops
        mov  r9, v0
        la   r10, jumptab
        li   r11, 0               # accumulator
        li   r12, 1               # operand register
    loop:
        bz   r9, done
        sys  getinput             # opcode
        remi r13, v0, 6
        slli r14, r13, 3
        add  r14, r14, r10
        ldd  r15, 0(r14)          # dispatch target: skewed values
        jr   r15
    op_add:
        add  r11, r11, r12
        j    next
    op_sub:
        sub  r11, r11, r12
        j    next
    op_inc:
        addi r12, r12, 1
        j    next
    op_set:
        mov  r11, r12
        j    next
    op_zero:
        li   r11, 0
        j    next
    op_nop:
    next:
        addi r9, r9, -1
        j    loop
    done:
        andi a0, r11, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// ijpeg stand-in: per-block pixel generation (in-program LCG seeded from
/// the input) divided by an 8-entry quantization table. The quant-table
/// load cycles through 8 constants: `Inv-Top(1)` is low but `Inv-Top(8)`
/// is total — the case that separates the two metrics.
pub fn ijpeg() -> String {
    r#"
    .data
    quant:  .quad 16, 11, 10, 16, 24, 40, 51, 61
    .text
    .proc main
    main:
        sys  getinput             # number of blocks
        mov  r9, v0
        la   r10, quant
        li   r11, 0               # checksum
        li   r20, 1103515245      # LCG multiplier
        li   r21, 12345           # LCG increment
        li   r22, 0x7fffffff      # LCG mask
    block:
        bz   r9, done
        sys  getinput             # block seed
        mov  r13, v0
        li   r12, 0               # pixel index
    pix:
        mul  r13, r13, r20
        add  r13, r13, r21
        and  r13, r13, r22        # next pseudo pixel
        andi r16, r13, 255
        andi r14, r12, 7
        slli r14, r14, 3
        add  r14, r14, r10
        ldd  r15, 0(r14)          # quantization coefficient
        div  r17, r16, r15
        add  r11, r11, r17
        addi r12, r12, 1
        slti r19, r12, 64
        bnz  r19, pix
        addi r9, r9, -1
        j    block
    done:
        andi a0, r11, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// go stand-in: a 19x19 board with sparse stones; repeated full-board
/// scans counting stones. Almost every board load returns 0, giving the
/// high `%zero` and load invariance the paper reports for go.
pub fn go() -> String {
    r#"
    .data
    board:  .space 361
    .align 8
    posarr: .space 512            # up to 64 stone positions
    .text
    .proc main
    main:
        sys  getinput             # S = stones
        mov  r9, v0
        mov  r16, r9              # remember S
        la   r10, board
        la   r17, posarr
        mov  r11, r17
    readpos:
        bz   r9, scansetup
        sys  getinput             # stone position
        remi r12, v0, 361
        std  r12, 0(r11)
        addi r11, r11, 8
        addi r9, r9, -1
        j    readpos
    scansetup:
        sys  getinput             # R = number of scans
        mov  r9, v0
        li   r18, 0               # stone counter
    scan:
        bz   r9, done
        # re-place every stone (same value to the same cell each scan:
        # the invariant stores of the memory-location study)
        mov  r11, r17
        mov  r13, r16
    place:
        bz   r13, placed
        ldd  r12, 0(r11)          # stone position (cycling values)
        add  r14, r12, r10
        andi r15, r12, 1
        addi r15, r15, 1          # colour 1 or 2
        stb  r15, 0(r14)
        addi r11, r11, 8
        addi r13, r13, -1
        j    place
    placed:
        li   r12, 0               # cell index
    cell:
        add  r13, r12, r10
        ldb  r14, 0(r13)          # mostly zero
        bz   r14, empty
        add  r18, r18, r14
    empty:
        addi r12, r12, 1
        li   r15, 361
        blt  r12, r15, cell
        addi r9, r9, -1
        j    scan
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// m88ksim stand-in: a tiny CPU simulator. A configuration word is loaded
/// from memory on *every* decoded instruction and never changes after
/// initialization — the fully invariant load that made m88ksim the
/// paper's flagship specialization example.
pub fn m88ksim() -> String {
    r#"
    .data
    config:  .quad 0
    regfile: .space 128           # 16 simulated registers
    .text
    .proc main
    main:
        sys  getinput             # configuration word
        la   r10, config
        std  v0, 0(r10)
        la   r11, regfile
        sys  getinput             # N = instructions to simulate
        mov  r9, v0
        li   r18, 0               # cycle checksum
    loop:
        bz   r9, done
        sys  getinput             # simulated instruction word
        mov  r12, v0
        ldd  r13, 0(r10)          # config load: fully invariant
        # derive the decode key from the configuration — a pure chain on
        # the invariant value, the paper's m88ksim specialization target
        srli r19, r13, 3
        andi r19, r19, 1023
        muli r19, r19, 37
        addi r19, r19, 11
        xori r19, r19, 0x5a
        slli r20, r19, 2
        add  r19, r19, r20
        srli r19, r19, 1
        andi r19, r19, 255
        srli r14, r12, 8
        andi r14, r14, 7          # opcode field
        andi r15, r12, 15         # dest register field
        slli r15, r15, 3
        add  r15, r15, r11
        ldd  r16, 0(r15)          # old register value
        beq  r14, r0, op_nopx
        li   r17, 1
        beq  r14, r17, op_addx
        li   r17, 2
        beq  r14, r17, op_shx
        # default: xor with the derived decode key
        xor  r16, r16, r19
        j    writeback
    op_addx:
        add  r16, r16, r19
        j    writeback
    op_shx:
        srli r16, r16, 1
        j    writeback
    op_nopx:
    writeback:
        std  r16, 0(r15)
        add  r18, r18, r14
        addi r9, r9, -1
        j    loop
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// perl stand-in: hashes 8-byte input words byte by byte, then dispatches
/// on the hash class. String hashing gives varying ALU values while the
/// dispatch comparisons are skewed.
pub fn perl() -> String {
    r#"
    .data
    buckets: .space 256           # 32 hash buckets
    .text
    .proc main
    main:
        sys  getinput             # N = words to hash
        mov  r9, v0
        la   r10, buckets
        li   r18, 0               # checksum
    word:
        bz   r9, done
        sys  getinput             # next 8-byte word
        mov  a0, v0
        call hashword             # hash it (argument varies)
        mov  r13, v0
        andi r17, r13, 31         # bucket index
        slli r17, r17, 3
        add  r17, r17, r10
        ldd  r19, 0(r17)
        addi r19, r19, 1
        std  r19, 0(r17)
        andi r20, r13, 3          # dispatch class: skewed by hash
        bz   r20, clsa
        add  r18, r18, r13
        j    next
    clsa:
        xor  r18, r18, r13
    next:
        addi r9, r9, -1
        j    word
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    .proc hashword
    hashword:
        mov  r12, a0
        li   r13, 5381            # hash state
        li   r14, 8               # byte counter
    byte:
        andi r15, r12, 255
        muli r16, r13, 33
        add  r13, r16, r15        # h = h*33 + byte
        srli r12, r12, 8
        addi r14, r14, -1
        bnz  r14, byte
        mov  v0, r13
        ret
    .endp
    "#
    .to_string()
}

/// vortex stand-in: an in-memory record store. Record type tags are
/// heavily skewed (most records share one type), so the tag load is
/// semi-invariant while payload loads vary — the object-database
/// behaviour the paper describes for vortex.
pub fn vortex() -> String {
    r#"
    .data
    records: .space 1024          # 64 records x (tag quad, payload quad)
    .text
    .proc main
    main:
        la   r10, records
        li   r9, 64               # build 64 records from input
        mov  r11, r10
    build:
        bz   r9, querysetup
        sys  getinput             # tag (skewed)
        std  v0, 0(r11)
        sys  getinput             # payload
        std  v0, 8(r11)
        addi r11, r11, 16
        addi r9, r9, -1
        j    build
    querysetup:
        sys  getinput             # R = number of queries
        mov  r9, v0
        li   r18, 0               # matched payload sum
    query:
        bz   r9, done
        li   a0, 1                # query tag: always 1 (invariant argument)
        mov  a1, r10
        call sumtag
        add  r18, r18, v0
        addi r9, r9, -1
        j    query
    done:
        andi a0, r18, 255
        sys  exit
    .endp
    .proc sumtag
    sumtag:
        mov  r11, a1
        li   r12, 64
        li   v0, 0
    rec:
        ldd  r13, 0(r11)          # tag load: semi-invariant
        bne  r13, a0, skip
        ldd  r15, 8(r11)          # payload load: varying
        add  v0, v0, r15
    skip:
        addi r11, r11, 16
        addi r12, r12, -1
        bnz  r12, rec
        ret
    .endp
    "#
    .to_string()
}

/// hydro2d stand-in: Jacobi relaxation on a 32x32 grid of f64 values.
/// As the solution converges the stencil loads return ever more similar
/// bit patterns — FP value locality emerging over time.
pub fn hydro2d() -> String {
    r#"
    .data
    grid:    .space 8192          # 32x32 f64
    quarter: .quad 0              # holds 0.25 after init
    .text
    .proc main
    main:
        la   r10, grid
        # store the stencil coefficient 0.25 (loaded invariantly below)
        la   r25, quarter
        li   r26, 1
        cvtif r26, r26
        li   r27, 4
        cvtif r27, r27
        fdiv r26, r26, r27
        std  r26, 0(r25)
        # initialize border row 0 to the input temperature, rest zero
        sys  getinput
        cvtif r20, v0             # boundary value as f64
        li   r12, 0
    init:
        slli r13, r12, 3
        add  r13, r13, r10
        std  r20, 0(r13)
        addi r12, r12, 1
        li   r14, 32
        blt  r12, r14, init
        sys  getinput             # iterations
        mov  r9, v0
    iter:
        bz   r9, done
        li   r12, 1               # row
    row:
        li   r13, 1               # col
    col:
        slli r14, r12, 5
        add  r14, r14, r13        # idx = row*32 + col
        slli r15, r14, 3
        add  r15, r15, r10
        ldd  r16, -8(r15)         # west
        ldd  r17, 8(r15)          # east
        ldd  r19, -256(r15)       # north
        ldd  r23, 256(r15)        # south
        fadd r16, r16, r17
        fadd r16, r16, r19
        fadd r16, r16, r23
        ldd  r28, 0(r25)          # coefficient load: fully invariant
        fmul r16, r16, r28        # average of neighbours
        std  r16, 0(r15)
        addi r13, r13, 1
        li   r24, 31
        blt  r13, r24, col
        addi r12, r12, 1
        blt  r12, r24, row
        addi r9, r9, -1
        j    iter
    done:
        # checksum: centre cell as integer
        li   r14, 528             # 16*32 + 16
        slli r15, r14, 3
        add  r15, r15, r10
        ldd  r16, 0(r15)
        cvtfi a0, r16
        andi a0, a0, 255
        sys  exit
    .endp
    "#
    .to_string()
}

/// applu stand-in: a first-order FP recurrence `acc = acc*c[i%4] + d`
/// with a tiny coefficient table. Coefficient loads cycle a handful of
/// values; the accumulator varies.
pub fn applu() -> String {
    r#"
    .data
    coef:   .space 32             # 4 f64 coefficients
    .text
    .proc main
    main:
        la   r10, coef
        li   r9, 4
        mov  r11, r10
    fill:
        bz   r9, start
        sys  getinput
        remi r12, v0, 9
        addi r12, r12, 1
        cvtif r13, r12
        li   r14, 10
        cvtif r14, r14
        fdiv r13, r13, r14        # coefficient in (0, 1]
        std  r13, 0(r11)
        addi r11, r11, 8
        addi r9, r9, -1
        j    fill
    start:
        sys  getinput             # N iterations
        mov  r9, v0
        li   r15, 1
        cvtif r15, r15            # acc = 1.0
        li   r16, 3
        cvtif r16, r16            # d = 3.0
        li   r12, 0               # index
    loop:
        bz   r9, done
        andi r13, r12, 3
        slli r13, r13, 3
        add  r13, r13, r10
        ldd  r14, 0(r13)          # coefficient load: 4 cycling values
        fmul r15, r15, r14
        fadd r15, r15, r16
        addi r12, r12, 1
        addi r9, r9, -1
        j    loop
    done:
        cvtfi a0, r15
        andi a0, a0, 255
        sys  exit
    .endp
    "#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_assemble() {
        for (name, _, f) in ALL {
            let src = f();
            let program =
                vp_asm::assemble(&src).unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
            assert!(program.len() > 10, "{name} is suspiciously small");
            assert!(program.procedure("main").is_some(), "{name} must declare .proc main");
        }
    }

    #[test]
    fn programs_have_loads_to_profile() {
        for (name, _, f) in ALL {
            let program = vp_asm::assemble(&f()).unwrap();
            let loads = program.code().iter().filter(|i| i.is_load()).count();
            assert!(loads >= 1, "{name} has no loads");
        }
    }
}
