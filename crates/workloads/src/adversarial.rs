//! Adversarial value-stream families for the phase-aware profiler.
//!
//! Every generator here returns a plain `(pc, value)` event stream — the
//! same shape `vp_bench::value_stream` extracts from a real workload — so
//! the differential harnesses can run real traces and adversarial
//! synthetics through identical code paths. Each family is engineered to
//! break one assumption the convergent profiler relies on:
//!
//! | family | pathology | what it breaks |
//! |---|---|---|
//! | [`phase_oscillating`] | top value flips every `period` events | convergence on phase 1 blinds the skip ladder to phase 2 |
//! | [`heavy_tailed`] | power-law value ranks (Zipf-like, exponent `alpha`) | a fat tail of rare values churns the TNV table while the head stays stable |
//! | [`tnv_churn`] | rotating dominance over more values than the 8-entry TNV table | every rotation evicts a resident entry, so TNV estimates decay |
//! | [`diurnal`] | slow drift of the dominant value across long epochs | the shift is gradual per window, stressing the detector's quantized share rule |
//!
//! All generators are **deterministic and clock-free**: the only
//! randomness is a seeded xorshift, so the same parameters always produce
//! the same stream — a requirement for the bit-identical shard oracles.

/// Deterministic xorshift64* generator; seeded, no global state.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator. A zero seed is mapped to a fixed nonzero one
    /// (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)` via 128-bit multiply (no modulo bias
    /// worth caring about at these stream lengths, and fully portable).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Phase-oscillating stream: `entities` program counters, each emitting
/// `values[k]` during its `k`-th phase, switching phase every `period`
/// events *per entity*. Events round-robin across entities so every
/// entity sees the same per-entity event count.
///
/// Pathology: within a phase each entity is perfectly invariant, so a
/// convergent profiler converges and backs off; at the phase boundary the
/// top value changes completely, which the backed-off profiler never
/// sees. The oscillation period (in per-entity events) is *exactly*
/// `period` — asserted by the property tests.
///
/// `len` is the total event count across all entities.
pub fn phase_oscillating(
    entities: u32,
    period: u64,
    values: &[u64],
    len: usize,
) -> Vec<(u32, u64)> {
    assert!(entities > 0, "need at least one entity");
    assert!(period > 0, "oscillation period must be positive");
    assert!(values.len() >= 2, "need at least two phase values to oscillate");
    let mut out = Vec::with_capacity(len);
    let mut per_entity = vec![0u64; entities as usize];
    for i in 0..len {
        let pc = (i as u64 % u64::from(entities)) as u32;
        let n = &mut per_entity[pc as usize];
        let phase = (*n / period) as usize % values.len();
        out.push((pc, values[phase]));
        *n += 1;
    }
    out
}

/// Heavy-tailed stream: values are ranks `1..=ranks` drawn from a
/// power-law with exponent `alpha` (weight of rank `r` ∝ `r^-alpha`),
/// spread round-robin over `entities` program counters.
///
/// Pathology: the head rank dominates (so the stream *looks*
/// semi-invariant), but the tail contains many distinct rare values that
/// continuously probe the TNV table's replacement policy. For Zipf
/// streams the rank-frequency curve obeys
/// `freq(r) / freq(2r) ≈ 2^alpha` — the property tests estimate the tail
/// index this way.
///
/// The emitted value for rank `r` is `r` itself, so tests can recover the
/// rank directly from the value.
pub fn heavy_tailed(
    entities: u32,
    ranks: u64,
    alpha: f64,
    len: usize,
    seed: u64,
) -> Vec<(u32, u64)> {
    assert!(entities > 0, "need at least one entity");
    assert!(ranks >= 2, "need at least two ranks for a tail");
    assert!(alpha > 0.0, "tail exponent must be positive");
    // Inverse-CDF table over the rank weights, scaled to u64 so the draw
    // itself stays integer-only (float work happens once, here, and is
    // identical on every run).
    let weights: Vec<f64> = (1..=ranks).map(|r| (r as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(ranks as usize);
    let mut acc = 0.0f64;
    for w in &weights {
        acc += w;
        cum.push(((acc / total) * u64::MAX as f64) as u64);
    }
    *cum.last_mut().expect("ranks >= 2") = u64::MAX;
    let mut rng = XorShift64::new(seed);
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let pc = (i as u64 % u64::from(entities)) as u32;
        let draw = rng.next_u64();
        let rank = cum.partition_point(|&c| c < draw) as u64 + 1;
        out.push((pc, rank.min(ranks)));
    }
    out
}

/// TNV-eviction churn: a single entity cycling dominance over `distinct`
/// values, where `distinct` should exceed the TNV table capacity (8 by
/// default). During block `b` (of `block` events) value `b % distinct`
/// receives every observation except that each `noise_every`-th event
/// emits the *next* block's value — guaranteeing every resident value is
/// eventually displaced.
///
/// Pathology: with more live values than table slots, each block's
/// dominant value must evict a resident entry, so the per-observation
/// eviction rate is bounded below — asserted by the property tests.
pub fn tnv_churn(distinct: u64, block: u64, noise_every: u64, len: usize) -> Vec<(u32, u64)> {
    assert!(distinct >= 2, "need at least two rotating values");
    assert!(block > 0, "block length must be positive");
    assert!(noise_every > 1, "noise period must leave room for the dominant value");
    let mut out = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let b = i / block;
        let dominant = b % distinct;
        let value = if i % noise_every == noise_every - 1 { (b + 1) % distinct } else { dominant };
        // Offset values away from 0 so %zero stays out of the picture.
        out.push((0, value + 1_000));
    }
    out
}

/// Diurnal-style long-run shift: `entities` program counters whose
/// dominant value drifts once per `epoch` per-entity events, mixing in
/// `noise_pct`% uniform noise drawn from a seeded xorshift. Models a
/// long-running service whose hot value changes with the workload du
/// jour — the drift is slow relative to any detector window.
///
/// Pathology: unlike [`phase_oscillating`], consecutive epochs share the
/// noise floor, so each individual detector window changes only a little;
/// the quantized share rule has to accumulate the drift across the epoch
/// boundary rather than see a clean flip.
pub fn diurnal(
    entities: u32,
    epoch: u64,
    epochs: u64,
    noise_pct: u64,
    seed: u64,
) -> Vec<(u32, u64)> {
    assert!(entities > 0, "need at least one entity");
    assert!(epoch > 0, "epoch length must be positive");
    assert!(epochs >= 2, "need at least two epochs for a shift");
    assert!(noise_pct < 50, "noise must stay a minority or dominance is lost");
    let len = (u64::from(entities) * epoch * epochs) as usize;
    let mut rng = XorShift64::new(seed);
    let mut out = Vec::with_capacity(len);
    let mut per_entity = vec![0u64; entities as usize];
    for i in 0..len {
        let pc = (i as u64 % u64::from(entities)) as u32;
        let n = &mut per_entity[pc as usize];
        let e = *n / epoch;
        // Dominant value encodes the epoch so tests can recover it.
        let value = if rng.below(100) < noise_pct {
            // Noise: uniform over a small alphabet disjoint from the
            // dominant values (which start at 10_000).
            rng.below(64)
        } else {
            10_000 + e
        };
        out.push((pc, value));
        *n += 1;
    }
    out
}

/// The adversarial families under default parameters, named — the
/// counterpart of [`crate::suite`] for the phase-detection harnesses.
/// Streams are sized for tests: large enough that every pathology
/// manifests, small enough to keep the suite fast.
pub fn adversarial_streams() -> Vec<(&'static str, Vec<(u32, u64)>)> {
    vec![
        ("phase-oscillating", phase_oscillating(3, 4_096, &[7, 9], 98_304)),
        ("heavy-tailed", heavy_tailed(5, 512, 1.2, 60_000, 0xDECAF)),
        ("tnv-churn", tnv_churn(24, 500, 5, 60_000)),
        ("diurnal", diurnal(2, 8_192, 4, 10, 0xC0FFEE)),
    ]
}

/// A program-level adversarial case for the optimize pipeline: a kernel
/// whose configuration load is perfectly invariant on the *train* input
/// but hostile on the *test* input. Specializing on the train profile must
/// stay output-equivalent (the guards save correctness) while the report
/// shows the guard-miss rate honestly.
#[derive(Debug, Clone)]
pub struct OptimizeCase {
    /// Family name (`phase-flip`, `tnv-churn`).
    pub name: &'static str,
    /// The kernel program.
    pub program: vp_asm::Program,
    /// Stationary profiling input: the config never changes.
    pub train: vp_sim::InputSet,
    /// Hostile evaluation input.
    pub test: vp_sim::InputSet,
    /// Loop iterations of both inputs (each runs the config load once).
    pub iterations: u64,
}

/// The config value the optimize-case kernel starts with (and the train
/// input keeps forever).
pub const OPTIMIZE_CASE_BASE: u64 = 0x2468;

/// Assembles the optimize-case kernel: an m88ksim-style loop that reloads
/// a configuration word every iteration and decodes it through a pure ALU
/// chain. Each iteration first reads a directive from the input stream —
/// `0` keeps the current configuration, anything else is stored as the
/// new one.
fn optimize_case_program() -> vp_asm::Program {
    vp_asm::assemble(
        r#"
        .data
        config: .quad 0x2468
        .text
        .proc main
        main:
            la   r10, config
            sys  getinput             # N = iterations
            mov  r9, v0
            li   r18, 0
        loop:
            bz   r9, done
            sys  getinput             # 0 = keep config, else new value
            bz   v0, keep
            std  v0, 0(r10)
        keep:
            ldd  r2, 0(r10)           # the profiled configuration load
            srli r3, r2, 3
            andi r3, r3, 1023
            muli r4, r3, 37
            addi r4, r4, 11
            xori r5, r4, 0x5a
            slli r6, r5, 2
            add  r7, r6, r4
            srli r8, r7, 1
            add  r18, r18, r8
            addi r9, r9, -1
            j    loop
        done:
            andi a0, r18, 255
            sys  exit
        .endp
        "#,
    )
    .expect("optimize-case kernel assembles")
}

/// Builds an input for the optimize-case kernel from per-iteration
/// directives produced by `directive(i)` (`0` = keep).
fn optimize_case_input(
    name: &str,
    iterations: u64,
    directive: impl Fn(u64) -> u64,
) -> vp_sim::InputSet {
    let mut values = vec![iterations];
    values.extend((0..iterations).map(directive));
    vp_sim::InputSet::named(name.to_string(), values)
}

/// The program-level adversarial optimize cases:
///
/// * `phase-flip` — the test input switches the configuration to a new
///   value at the halfway point and never switches back: the train-picked
///   guard hits the first half and misses the entire second half
///   (phase-oscillating taken to the cross-input extreme).
/// * `tnv-churn` — the test input rotates the configuration through many
///   distinct values in short blocks, so no single guard value can cover
///   more than a sliver of the run.
pub fn optimize_cases() -> Vec<OptimizeCase> {
    let iterations = 2_000u64;
    let train = |name: &str| optimize_case_input(name, iterations, |_| 0);
    let flip_at = iterations / 2;
    let phase_flip = OptimizeCase {
        name: "phase-flip",
        program: optimize_case_program(),
        train: train("phase-flip-train"),
        test: optimize_case_input("phase-flip-test", iterations, |i| {
            if i == flip_at {
                0x9999
            } else {
                0
            }
        }),
        iterations,
    };
    let block = 50;
    let distinct = 24;
    let tnv_churn = OptimizeCase {
        name: "tnv-churn",
        program: optimize_case_program(),
        train: train("tnv-churn-train"),
        test: optimize_case_input("tnv-churn-test", iterations, |i| {
            if i.is_multiple_of(block) {
                0x8000 + (i / block) % distinct
            } else {
                0
            }
        }),
        iterations,
    };
    vec![phase_flip, tnv_churn]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for (name, stream) in adversarial_streams() {
            let again = adversarial_streams()
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("same family present")
                .1;
            assert_eq!(stream, again, "{name} must be reproducible");
            assert!(!stream.is_empty(), "{name} must be non-trivial");
        }
    }

    #[test]
    fn oscillation_switches_exactly_at_period() {
        let period = 100;
        let stream = phase_oscillating(1, period, &[1, 2, 3], 1_000);
        for (i, &(_, v)) in stream.iter().enumerate() {
            let expect = [1, 2, 3][(i as u64 / period) as usize % 3];
            assert_eq!(v, expect, "event {i}");
        }
    }

    #[test]
    fn optimize_cases_run_and_differ_between_inputs() {
        use vp_sim::{Machine, MachineConfig};
        for case in optimize_cases() {
            let run = |input: &vp_sim::InputSet| {
                Machine::new(case.program.clone(), MachineConfig::new().input(input.clone()))
                    .unwrap()
                    .run(10_000_000)
                    .unwrap()
            };
            let train = run(&case.train);
            let test = run(&case.test);
            assert!(train.instructions > case.iterations * 10, "{}", case.name);
            // The hostile input must actually perturb the run (each
            // non-keep directive executes one extra store).
            assert!(test.instructions > train.instructions, "{}", case.name);
            // Determinism: rebuilding the case reproduces it exactly.
            let again =
                optimize_cases().into_iter().find(|c| c.name == case.name).expect("case present");
            let test_again = run(&again.test);
            assert_eq!(test_again.exit_code, test.exit_code, "{}", case.name);
            assert_eq!(test_again.instructions, test.instructions, "{}", case.name);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(0);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }
}
