//! Seeded input-data-set generation.
//!
//! Each workload gets a `test` and a `train` input that differ in seed,
//! length and mixture parameters — distinct runs of "the same program on
//! different data", which is what the paper's cross-input experiments
//! (Table V.5) need. Generation is fully deterministic.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vp_sim::InputSet;

use crate::DataSet;

/// Generates the input data set for `workload` (by name) and `ds`.
///
/// # Panics
///
/// Panics on an unknown workload name (the public entry points only pass
/// names from [`crate::programs::ALL`]).
pub fn generate(workload: &str, ds: DataSet) -> InputSet {
    let mut rng = rng_for(workload, ds);
    let values = match workload {
        "compress" => compress(&mut rng, ds),
        "gcc" => gcc(&mut rng, ds),
        "li" => li(&mut rng, ds),
        "ijpeg" => ijpeg(&mut rng, ds),
        "go" => go(&mut rng, ds),
        "m88ksim" => m88ksim(&mut rng, ds),
        "perl" => perl(&mut rng, ds),
        "vortex" => vortex(&mut rng, ds),
        "hydro2d" => hydro2d(&mut rng, ds),
        "applu" => applu(&mut rng, ds),
        other => panic!("unknown workload `{other}`"),
    };
    InputSet::named(ds.name(), values)
}

fn rng_for(workload: &str, ds: DataSet) -> StdRng {
    let mut seed = match ds {
        DataSet::Test => 0x5eed_0001u64,
        DataSet::Train => 0x5eed_0002u64,
    };
    for b in workload.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
    }
    StdRng::seed_from_u64(seed)
}

fn sized(ds: DataSet, test: u64, train: u64) -> u64 {
    match ds {
        DataSet::Test => test,
        DataSet::Train => train,
    }
}

fn compress(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let n = sized(ds, 4_000, 5_000);
    // A small, skewed symbol alphabet: repeated substrings hash alike.
    let symbols: Vec<u64> = (0..48).collect();
    let weights: Vec<u32> = (0..48).map(|i| 1 + (48 - i) * (48 - i) / 16).collect();
    let dist = WeightedIndex::new(&weights).expect("weights");
    let mut values = vec![n];
    values.extend((0..n).map(|_| symbols[dist.sample(rng)]));
    values
}

fn gcc(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let per_phase = sized(ds, 1_500, 1_900);
    // Identifier tokens from a skewed dictionary (keywords dominate).
    let dict: Vec<u64> = (1..=64).collect();
    let weights: Vec<u32> = (0..64).map(|i| 1 + (64 - i) * (64 - i) / 32).collect();
    let dist = WeightedIndex::new(&weights).expect("weights");
    let mut values = vec![per_phase];
    values.extend((0..per_phase).map(|_| dict[dist.sample(rng)]));
    values
}

fn li(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let n = sized(ds, 6_000, 7_500);
    // Opcode mix: add-heavy, like real interpreter traces. The train set
    // shifts the mix slightly.
    let weights: [u32; 6] = match ds {
        DataSet::Test => [40, 10, 15, 10, 5, 20],
        DataSet::Train => [35, 12, 18, 10, 6, 19],
    };
    let dist = WeightedIndex::new(weights).expect("weights");
    let mut values = vec![n];
    values.extend((0..n).map(|_| dist.sample(rng) as u64));
    values
}

fn ijpeg(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let blocks = sized(ds, 80, 100);
    let mut values = vec![blocks];
    values.extend((0..blocks).map(|_| rng.gen_range(1..=u64::from(u32::MAX))));
    values
}

fn go(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let stones = sized(ds, 40, 55);
    let scans = sized(ds, 30, 35);
    let mut values = vec![stones];
    values.extend((0..stones).map(|_| rng.gen_range(0..10_000)));
    values.push(scans);
    values
}

fn m88ksim(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let n = sized(ds, 5_000, 6_500);
    // Simulated opcode field is skewed toward op 1 (add).
    let op_weights: [u32; 8] = [5, 50, 15, 10, 8, 5, 4, 3];
    let dist = WeightedIndex::new(op_weights).expect("weights");
    // The configuration word models the simulated machine's build-time
    // setup: fixed across data sets, like the real m88ksim's — only the
    // instruction stream varies per input. That makes this the paper's
    // flagship cross-input specialization case (profile the config load
    // on train, win on test; Table V.5).
    let config = 0x00c0_ffee;
    let mut values = vec![config, n];
    values.extend((0..n).map(|_| {
        let op = dist.sample(rng) as u64;
        let dest = rng.gen_range(0..16u64);
        (op << 8) | dest
    }));
    values
}

fn perl(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let n = sized(ds, 1_500, 2_000);
    // Words drawn from a modest dictionary: hashing revisits values.
    let dict: Vec<u64> = (0..96).map(|_| rng.gen::<u64>()).collect();
    let mut values = vec![n];
    values.extend((0..n).map(|_| dict[rng.gen_range(0..dict.len())]));
    values
}

fn vortex(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let queries = sized(ds, 60, 75);
    let hot_tag_pct = sized(ds, 90, 85);
    let mut values = Vec::with_capacity(130);
    for _ in 0..64 {
        let tag = if rng.gen_range(0..100) < hot_tag_pct { 1 } else { rng.gen_range(2..6) };
        values.push(tag);
        values.push(rng.gen_range(0..1_000_000));
    }
    values.push(queries);
    values
}

fn hydro2d(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let iters = sized(ds, 15, 18);
    vec![rng.gen_range(50..150), iters]
}

fn applu(rng: &mut StdRng, ds: DataSet) -> Vec<u64> {
    let n = sized(ds, 5_000, 6_000);
    let mut values: Vec<u64> = (0..4).map(|_| rng.gen_range(0..1_000)).collect();
    values.push(n);
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for (name, _, _) in crate::programs::ALL {
            let a = generate(name, DataSet::Test);
            let b = generate(name, DataSet::Test);
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn test_and_train_have_different_seeds() {
        for (name, _, _) in crate::programs::ALL {
            let t = generate(name, DataSet::Test);
            let r = generate(name, DataSet::Train);
            assert_ne!(t.values(), r.values(), "{name}");
            assert_eq!(t.name(), "test");
            assert_eq!(r.name(), "train");
        }
    }

    #[test]
    fn li_opcodes_in_range() {
        let input = generate("li", DataSet::Test);
        for &op in &input.values()[1..] {
            assert!(op < 6);
        }
    }

    #[test]
    fn vortex_tags_are_skewed() {
        let input = generate("vortex", DataSet::Test);
        let hot = input.values()[..128].chunks(2).filter(|c| c[0] == 1).count();
        assert!(hot > 64 * 7 / 10, "hot tags: {hot}/64");
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        let _ = generate("nonesuch", DataSet::Test);
    }
}
