//! Property tests: encode/decode round-trip for arbitrary instructions.

use proptest::prelude::*;
use vp_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg, Syscall};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_fp_op() -> impl Strategy<Value = FpOp> {
    (0usize..FpOp::ALL.len()).prop_map(|i| FpOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    (0usize..BranchCond::ALL.len()).prop_map(|i| BranchCond::ALL[i])
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    (0usize..4).prop_map(|i| MemWidth::ALL[i])
}

fn arb_signed_width() -> impl Strategy<Value = MemWidth> {
    (0usize..3).prop_map(|i| MemWidth::ALL[i])
}

fn arb_syscall() -> impl Strategy<Value = Syscall> {
    (0usize..Syscall::ALL.len()).prop_map(|i| Syscall::ALL[i])
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| Instruction::Alu { op, rd, rs, rt }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rd, rs, imm)| Instruction::AluImm { op, rd, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_fp_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| Instruction::Fp { op, rd, rs, rt }),
        (arb_reg(), arb_reg(), any::<i16>(), arb_width())
            .prop_map(|(rd, base, offset, width)| Instruction::Load { rd, base, offset, width }),
        (arb_reg(), arb_reg(), any::<i16>(), arb_signed_width()).prop_map(
            |(rd, base, offset, width)| Instruction::LoadSigned { rd, base, offset, width }
        ),
        (arb_reg(), arb_reg(), any::<i16>(), arb_width())
            .prop_map(|(rs, base, offset, width)| Instruction::Store { rs, base, offset, width }),
        (arb_cond(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(cond, rs, rt, disp)| Instruction::Branch { cond, rs, rt, disp }),
        (0u32..(1 << 26)).prop_map(|target| Instruction::Jump { target }),
        (0u32..(1 << 26)).prop_map(|target| Instruction::Jal { target }),
        arb_reg().prop_map(|rs| Instruction::Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
        arb_syscall().prop_map(|call| Instruction::Sys { call }),
    ]
}

proptest! {
    /// encode → decode must reproduce the instruction exactly.
    #[test]
    fn encode_decode_round_trip(instr in arb_instruction()) {
        let word = instr.encode();
        prop_assert_eq!(Instruction::decode(word), Ok(instr));
    }

    /// Decoding any word either fails or re-encodes to a word that decodes
    /// to the same instruction (decode is a partial inverse of encode).
    #[test]
    fn decode_encode_stable(word in any::<u32>()) {
        if let Ok(instr) = Instruction::decode(word) {
            let again = Instruction::decode(instr.encode());
            prop_assert_eq!(again, Ok(instr));
        }
    }

    /// Classification helpers never panic and agree with each other.
    #[test]
    fn classification_consistent(instr in arb_instruction()) {
        if instr.is_load() {
            prop_assert_eq!(instr.class(), vp_isa::OpClass::Load);
            prop_assert!(instr.is_register_defining() || instr.dest_register().unwrap().is_zero());
        }
        if instr.is_register_defining() {
            prop_assert!(instr.dest_register().is_some());
        }
        prop_assert!(instr.source_registers().len() <= 2);
    }
}
