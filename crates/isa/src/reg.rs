//! Architectural registers of the VP64 ISA.

use std::fmt;
use std::str::FromStr;

/// One of the 32 architectural registers, `r0`..`r31`.
///
/// Conventions (enforced only by the assembler/workloads, not the hardware):
///
/// | register | role |
/// |----------|------|
/// | `r0` (`zero`) | hard-wired zero: writes are discarded |
/// | `r1`  (`v0`)  | return value |
/// | `r4`..`r7` (`a0`..`a3`) | procedure arguments |
/// | `r29` (`sp`) | stack pointer |
/// | `r30` (`ra`) | return address (written by `jal`/`jalr`) |
///
/// ```
/// use vp_isa::Reg;
/// assert_eq!(Reg::R0.index(), 0);
/// assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
/// assert_eq!(Reg::from_index(30), Some(Reg::RA));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
    R16 = 16,
    R17 = 17,
    R18 = 18,
    R19 = 19,
    R20 = 20,
    R21 = 21,
    R22 = 22,
    R23 = 23,
    R24 = 24,
    R25 = 25,
    R26 = 26,
    R27 = 27,
    R28 = 28,
    R29 = 29,
    R30 = 30,
    R31 = 31,
}

impl Reg {
    /// Register count of the architecture.
    pub const COUNT: usize = 32;

    /// The hard-wired zero register (alias of [`Reg::R0`]).
    pub const ZERO: Reg = Reg::R0;
    /// Return-value register (alias of [`Reg::R1`]).
    pub const V0: Reg = Reg::R1;
    /// First argument register (alias of [`Reg::R4`]).
    pub const A0: Reg = Reg::R4;
    /// Second argument register.
    pub const A1: Reg = Reg::R5;
    /// Third argument register.
    pub const A2: Reg = Reg::R6;
    /// Fourth argument register.
    pub const A3: Reg = Reg::R7;
    /// Stack pointer (alias of [`Reg::R29`]).
    pub const SP: Reg = Reg::R29;
    /// Return-address register (alias of [`Reg::R30`]).
    pub const RA: Reg = Reg::R30;

    /// Numeric index of the register, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its index; `None` if `idx >= 32`.
    #[inline]
    pub fn from_index(idx: usize) -> Option<Reg> {
        if idx < Self::COUNT {
            // SAFETY-free mapping via a lookup table.
            Some(ALL_REGS[idx])
        } else {
            None
        }
    }

    /// All 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        ALL_REGS.iter().copied()
    }

    /// True for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }

    /// The canonical `rN` spelling.
    pub fn name(self) -> String {
        format!("r{}", self.index())
    }
}

const ALL_REGS: [Reg; 32] = [
    Reg::R0,
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
    Reg::R16,
    Reg::R17,
    Reg::R18,
    Reg::R19,
    Reg::R20,
    Reg::R21,
    Reg::R22,
    Reg::R23,
    Reg::R24,
    Reg::R25,
    Reg::R26,
    Reg::R27,
    Reg::R28,
    Reg::R29,
    Reg::R30,
    Reg::R31,
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    /// The text that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.input)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `rN` as well as the ABI aliases `zero`, `v0`, `a0`..`a3`,
    /// `sp`, `ra`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { input: s.to_owned() };
        match s {
            "zero" => return Ok(Reg::ZERO),
            "v0" => return Ok(Reg::V0),
            "a0" => return Ok(Reg::A0),
            "a1" => return Ok(Reg::A1),
            "a2" => return Ok(Reg::A2),
            "a3" => return Ok(Reg::A3),
            "sp" => return Ok(Reg::SP),
            "ra" => return Ok(Reg::RA),
            _ => {}
        }
        let digits = s.strip_prefix('r').ok_or_else(err)?;
        let idx: usize = digits.parse().map_err(|_| err())?;
        Reg::from_index(idx).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..32 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn parse_canonical_names() {
        for r in Reg::all() {
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::R0);
        assert_eq!("v0".parse::<Reg>().unwrap(), Reg::R1);
        assert_eq!("a0".parse::<Reg>().unwrap(), Reg::R4);
        assert_eq!("a3".parse::<Reg>().unwrap(), Reg::R7);
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::R29);
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::R30);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "r", "r32", "r-1", "x5", "R5", "r05x"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::R17.to_string(), "r17");
        assert_eq!(Reg::R17.name(), "r17");
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn all_yields_each_register_once() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
