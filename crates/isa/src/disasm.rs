//! Disassembly: `Display` for [`Instruction`] producing the same syntax the
//! `vp-asm` assembler accepts, so `assemble(disassemble(i)) == i`.

use std::fmt;

use crate::instr::Instruction;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Alu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Instruction::AluImm { op, rd, rs, imm } => {
                write!(f, "{}i {rd}, {rs}, {imm}", op.mnemonic())
            }
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Instruction::Fp { op, rd, rs, rt } => {
                if op.uses_rt() {
                    write!(f, "{op} {rd}, {rs}, {rt}")
                } else {
                    write!(f, "{op} {rd}, {rs}")
                }
            }
            Instruction::Load { rd, base, offset, width } => {
                write!(f, "ld{} {rd}, {offset}({base})", width.suffix())
            }
            Instruction::LoadSigned { rd, base, offset, width } => {
                write!(f, "ld{}s {rd}, {offset}({base})", width.suffix())
            }
            Instruction::Store { rs, base, offset, width } => {
                write!(f, "st{} {rs}, {offset}({base})", width.suffix())
            }
            Instruction::Branch { cond, rs, rt, disp } => {
                write!(f, "{cond} {rs}, {rt}, {disp}")
            }
            Instruction::Jump { target } => write!(f, "j {target}"),
            Instruction::Jal { target } => write!(f, "jal {target}"),
            Instruction::Jr { rs } => write!(f, "jr {rs}"),
            Instruction::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Instruction::Sys { call } => write!(f, "sys {call}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, BranchCond, FpOp, MemWidth};
    use crate::reg::Reg;

    #[test]
    fn display_forms() {
        let cases: Vec<(Instruction, &str)> = vec![
            (Instruction::Nop, "nop"),
            (
                Instruction::Alu { op: AluOp::Add, rd: Reg::R3, rs: Reg::R1, rt: Reg::R2 },
                "add r3, r1, r2",
            ),
            (
                Instruction::AluImm { op: AluOp::Add, rd: Reg::R3, rs: Reg::R1, imm: -4 },
                "addi r3, r1, -4",
            ),
            (Instruction::Lui { rd: Reg::R3, imm: 16 }, "lui r3, 16"),
            (
                Instruction::Load { rd: Reg::R3, base: Reg::SP, offset: 8, width: MemWidth::D },
                "ldd r3, 8(r29)",
            ),
            (
                Instruction::LoadSigned {
                    rd: Reg::R3,
                    base: Reg::SP,
                    offset: -8,
                    width: MemWidth::B,
                },
                "ldbs r3, -8(r29)",
            ),
            (
                Instruction::Store { rs: Reg::R3, base: Reg::SP, offset: 8, width: MemWidth::W },
                "stw r3, 8(r29)",
            ),
            (
                Instruction::Branch { cond: BranchCond::Ne, rs: Reg::R1, rt: Reg::R0, disp: -3 },
                "bne r1, r0, -3",
            ),
            (Instruction::Jump { target: 12 }, "j 12"),
            (Instruction::Jal { target: 12 }, "jal 12"),
            (Instruction::Jr { rs: Reg::RA }, "jr r30"),
            (Instruction::Jalr { rd: Reg::RA, rs: Reg::R8 }, "jalr r30, r8"),
            (
                Instruction::Fp { op: FpOp::CvtIF, rd: Reg::R1, rs: Reg::R2, rt: Reg::R0 },
                "cvtif r1, r2",
            ),
            (
                Instruction::Fp { op: FpOp::FMul, rd: Reg::R1, rs: Reg::R2, rt: Reg::R3 },
                "fmul r1, r2, r3",
            ),
        ];
        for (instr, text) in cases {
            assert_eq!(instr.to_string(), text);
        }
    }
}
