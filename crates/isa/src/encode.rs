//! Binary encoding and decoding of VP64 instructions.
//!
//! Every instruction is one 32-bit word:
//!
//! ```text
//!  31    26 25  21 20  16 15  11 10     0
//! +--------+------+------+------+--------+
//! | opcode |  rd  |  rs  |  rt  | funct  |   R-format (alu, fp)
//! +--------+------+------+------+--------+
//! | opcode |  rd  |  rs  |     imm16     |   I-format (alu-imm, mem, branch)
//! +--------+------+------+---------------+
//! | opcode |           target26          |   J-format (jump, jal)
//! +--------+-----------------------------+
//! ```
//!
//! Branch/jump displacements and targets are in instruction words.

use std::fmt;

use crate::instr::Instruction;
use crate::op::{AluOp, BranchCond, FpOp, MemWidth, Syscall};
use crate::reg::Reg;

// Primary opcode assignments.
const OP_NOP: u32 = 0;
const OP_ALU: u32 = 1;
const OP_FP: u32 = 2;
const OP_ALU_IMM_BASE: u32 = 3; // 3..=18, one per AluOp
const OP_LUI: u32 = 19;
const OP_LOAD_BASE: u32 = 20; // 20..=23, one per MemWidth
const OP_LOAD_SIGNED_BASE: u32 = 24; // 24..=26, B/H/W
const OP_STORE_BASE: u32 = 27; // 27..=30, one per MemWidth
const OP_BRANCH_BASE: u32 = 31; // 31..=36, one per BranchCond
const OP_JUMP: u32 = 37;
const OP_JAL: u32 = 38;
const OP_JR: u32 = 39;
const OP_JALR: u32 = 40;
const OP_SYS: u32 = 41;

/// Error produced when decoding an instruction word fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The primary opcode field does not name an instruction.
    UnknownOpcode {
        /// The offending 6-bit opcode value.
        opcode: u32,
    },
    /// An R-format funct field is out of range for its opcode.
    UnknownFunct {
        /// The primary opcode.
        opcode: u32,
        /// The offending funct value.
        funct: u32,
    },
    /// A syscall number is out of range.
    UnknownSyscall {
        /// The offending syscall number.
        number: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode {opcode:#x}")
            }
            DecodeError::UnknownFunct { opcode, funct } => {
                write!(f, "unknown funct {funct:#x} for opcode {opcode:#x}")
            }
            DecodeError::UnknownSyscall { number } => {
                write!(f, "unknown syscall number {number}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn field_rd(word: u32) -> Reg {
    Reg::from_index(((word >> 21) & 0x1f) as usize).expect("5-bit field")
}

#[inline]
fn field_rs(word: u32) -> Reg {
    Reg::from_index(((word >> 16) & 0x1f) as usize).expect("5-bit field")
}

#[inline]
fn field_rt(word: u32) -> Reg {
    Reg::from_index(((word >> 11) & 0x1f) as usize).expect("5-bit field")
}

#[inline]
fn field_imm(word: u32) -> i16 {
    (word & 0xffff) as u16 as i16
}

#[inline]
fn pack_r(opcode: u32, rd: Reg, rs: Reg, rt: Reg, funct: u32) -> u32 {
    debug_assert!(opcode < 64 && funct < (1 << 11));
    (opcode << 26)
        | ((rd.index() as u32) << 21)
        | ((rs.index() as u32) << 16)
        | ((rt.index() as u32) << 11)
        | funct
}

#[inline]
fn pack_i(opcode: u32, rd: Reg, rs: Reg, imm: i16) -> u32 {
    (opcode << 26) | ((rd.index() as u32) << 21) | ((rs.index() as u32) << 16) | (imm as u16 as u32)
}

#[inline]
fn pack_j(opcode: u32, target: u32) -> u32 {
    debug_assert!(target < (1 << 26));
    (opcode << 26) | (target & 0x03ff_ffff)
}

fn width_index(w: MemWidth) -> u32 {
    match w {
        MemWidth::B => 0,
        MemWidth::H => 1,
        MemWidth::W => 2,
        MemWidth::D => 3,
    }
}

impl Instruction {
    /// Encodes the instruction into its 32-bit word.
    ///
    /// Encoding is total: every `Instruction` value has a word. Jump targets
    /// wider than 26 bits are truncated (programs that large are rejected by
    /// the assembler long before encoding).
    pub fn encode(self) -> u32 {
        match self {
            Instruction::Nop => pack_j(OP_NOP, 0),
            Instruction::Alu { op, rd, rs, rt } => {
                let funct = AluOp::ALL.iter().position(|&o| o == op).expect("alu op") as u32;
                pack_r(OP_ALU, rd, rs, rt, funct)
            }
            Instruction::Fp { op, rd, rs, rt } => {
                let funct = FpOp::ALL.iter().position(|&o| o == op).expect("fp op") as u32;
                pack_r(OP_FP, rd, rs, rt, funct)
            }
            Instruction::AluImm { op, rd, rs, imm } => {
                let idx = AluOp::ALL.iter().position(|&o| o == op).expect("alu op") as u32;
                pack_i(OP_ALU_IMM_BASE + idx, rd, rs, imm)
            }
            Instruction::Lui { rd, imm } => pack_i(OP_LUI, rd, Reg::R0, imm as i16),
            Instruction::Load { rd, base, offset, width } => {
                pack_i(OP_LOAD_BASE + width_index(width), rd, base, offset)
            }
            Instruction::LoadSigned { rd, base, offset, width } => {
                let idx = width_index(width).min(2);
                pack_i(OP_LOAD_SIGNED_BASE + idx, rd, base, offset)
            }
            Instruction::Store { rs, base, offset, width } => {
                pack_i(OP_STORE_BASE + width_index(width), rs, base, offset)
            }
            Instruction::Branch { cond, rs, rt, disp } => {
                let idx = BranchCond::ALL.iter().position(|&c| c == cond).expect("cond") as u32;
                pack_i(OP_BRANCH_BASE + idx, rs, rt, disp)
            }
            Instruction::Jump { target } => pack_j(OP_JUMP, target),
            Instruction::Jal { target } => pack_j(OP_JAL, target),
            Instruction::Jr { rs } => pack_i(OP_JR, rs, Reg::R0, 0),
            Instruction::Jalr { rd, rs } => pack_i(OP_JALR, rd, rs, 0),
            Instruction::Sys { call } => {
                let n = Syscall::ALL.iter().position(|&c| c == call).expect("syscall") as i16;
                pack_i(OP_SYS, Reg::R0, Reg::R0, n)
            }
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the opcode, funct or syscall field
    /// does not correspond to any instruction.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opcode = word >> 26;
        match opcode {
            OP_NOP => Ok(Instruction::Nop),
            OP_ALU => {
                let funct = word & 0x7ff;
                let op = *AluOp::ALL
                    .get(funct as usize)
                    .ok_or(DecodeError::UnknownFunct { opcode, funct })?;
                Ok(Instruction::Alu {
                    op,
                    rd: field_rd(word),
                    rs: field_rs(word),
                    rt: field_rt(word),
                })
            }
            OP_FP => {
                let funct = word & 0x7ff;
                let op = *FpOp::ALL
                    .get(funct as usize)
                    .ok_or(DecodeError::UnknownFunct { opcode, funct })?;
                Ok(Instruction::Fp {
                    op,
                    rd: field_rd(word),
                    rs: field_rs(word),
                    rt: field_rt(word),
                })
            }
            _ if (OP_ALU_IMM_BASE..OP_ALU_IMM_BASE + 16).contains(&opcode) => {
                let op = AluOp::ALL[(opcode - OP_ALU_IMM_BASE) as usize];
                Ok(Instruction::AluImm {
                    op,
                    rd: field_rd(word),
                    rs: field_rs(word),
                    imm: field_imm(word),
                })
            }
            OP_LUI => Ok(Instruction::Lui { rd: field_rd(word), imm: field_imm(word) as u16 }),
            _ if (OP_LOAD_BASE..OP_LOAD_BASE + 4).contains(&opcode) => {
                let width = MemWidth::ALL[(opcode - OP_LOAD_BASE) as usize];
                Ok(Instruction::Load {
                    rd: field_rd(word),
                    base: field_rs(word),
                    offset: field_imm(word),
                    width,
                })
            }
            _ if (OP_LOAD_SIGNED_BASE..OP_LOAD_SIGNED_BASE + 3).contains(&opcode) => {
                let width = MemWidth::ALL[(opcode - OP_LOAD_SIGNED_BASE) as usize];
                Ok(Instruction::LoadSigned {
                    rd: field_rd(word),
                    base: field_rs(word),
                    offset: field_imm(word),
                    width,
                })
            }
            _ if (OP_STORE_BASE..OP_STORE_BASE + 4).contains(&opcode) => {
                let width = MemWidth::ALL[(opcode - OP_STORE_BASE) as usize];
                Ok(Instruction::Store {
                    rs: field_rd(word),
                    base: field_rs(word),
                    offset: field_imm(word),
                    width,
                })
            }
            _ if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&opcode) => {
                let cond = BranchCond::ALL[(opcode - OP_BRANCH_BASE) as usize];
                Ok(Instruction::Branch {
                    cond,
                    rs: field_rd(word),
                    rt: field_rs(word),
                    disp: field_imm(word),
                })
            }
            OP_JUMP => Ok(Instruction::Jump { target: word & 0x03ff_ffff }),
            OP_JAL => Ok(Instruction::Jal { target: word & 0x03ff_ffff }),
            OP_JR => Ok(Instruction::Jr { rs: field_rd(word) }),
            OP_JALR => Ok(Instruction::Jalr { rd: field_rd(word), rs: field_rs(word) }),
            OP_SYS => {
                let number = word & 0xffff;
                let call = *Syscall::ALL
                    .get(number as usize)
                    .ok_or(DecodeError::UnknownSyscall { number })?;
                Ok(Instruction::Sys { call })
            }
            _ => Err(DecodeError::UnknownOpcode { opcode }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instruction) {
        let w = i.encode();
        assert_eq!(Instruction::decode(w), Ok(i), "word {w:#010x}");
    }

    #[test]
    fn round_trip_representatives() {
        round_trip(Instruction::Nop);
        for op in AluOp::ALL {
            round_trip(Instruction::Alu { op, rd: Reg::R1, rs: Reg::R31, rt: Reg::R15 });
            round_trip(Instruction::AluImm { op, rd: Reg::R2, rs: Reg::R3, imm: -5 });
        }
        for op in FpOp::ALL {
            round_trip(Instruction::Fp { op, rd: Reg::R9, rs: Reg::R8, rt: Reg::R7 });
        }
        for width in MemWidth::ALL {
            round_trip(Instruction::Load { rd: Reg::R5, base: Reg::SP, offset: -32768, width });
            round_trip(Instruction::Store { rs: Reg::R5, base: Reg::SP, offset: 32767, width });
        }
        for width in [MemWidth::B, MemWidth::H, MemWidth::W] {
            round_trip(Instruction::LoadSigned { rd: Reg::R5, base: Reg::SP, offset: -1, width });
        }
        for cond in BranchCond::ALL {
            round_trip(Instruction::Branch { cond, rs: Reg::R1, rt: Reg::R2, disp: -100 });
        }
        round_trip(Instruction::Lui { rd: Reg::R4, imm: 0xffff });
        round_trip(Instruction::Jump { target: 0x03ff_ffff });
        round_trip(Instruction::Jal { target: 0 });
        round_trip(Instruction::Jr { rs: Reg::RA });
        round_trip(Instruction::Jalr { rd: Reg::R30, rs: Reg::R8 });
        for call in Syscall::ALL {
            round_trip(Instruction::Sys { call });
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert_eq!(Instruction::decode(63 << 26), Err(DecodeError::UnknownOpcode { opcode: 63 }));
    }

    #[test]
    fn decode_rejects_unknown_funct() {
        let word = (OP_ALU << 26) | 30; // funct 30 is out of range
        assert_eq!(
            Instruction::decode(word),
            Err(DecodeError::UnknownFunct { opcode: OP_ALU, funct: 30 })
        );
        let word = (OP_FP << 26) | 7;
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    fn decode_rejects_unknown_syscall() {
        let word = (OP_SYS << 26) | 99;
        assert_eq!(Instruction::decode(word), Err(DecodeError::UnknownSyscall { number: 99 }));
    }

    #[test]
    fn error_display() {
        let e = DecodeError::UnknownOpcode { opcode: 63 };
        assert!(e.to_string().contains("unknown opcode"));
    }
}
