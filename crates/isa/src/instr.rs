//! The [`Instruction`] type and its classification helpers.

use crate::op::{AluOp, BranchCond, FpOp, MemWidth, OpClass, Syscall};
use crate::reg::Reg;

/// One decoded VP64 instruction.
///
/// Instructions are fixed-width (32-bit words, see [`crate::INSTR_BYTES`]);
/// [`Instruction::encode`] and [`Instruction::decode`] convert to and from
/// the binary form. Branch and jump displacements are measured in
/// *instruction words* relative to the instruction after the branch.
///
/// ```
/// use vp_isa::{Instruction, MemWidth, OpClass, Reg};
///
/// let ld = Instruction::Load { rd: Reg::R5, base: Reg::SP, offset: 16, width: MemWidth::D };
/// assert_eq!(ld.class(), OpClass::Load);
/// assert_eq!(ld.dest_register(), Some(Reg::R5));
/// assert!(ld.is_register_defining());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Load `width` bytes from `base + offset`, zero-extended, into `rd`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
        /// Access width.
        width: MemWidth,
    },
    /// Load with sign extension (`ldbs`, `ldhs`, `ldws`).
    LoadSigned {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
        /// Access width (B, H or W; D needs no extension).
        width: MemWidth,
    },
    /// Store the low `width` bytes of `rs` to `base + offset`.
    Store {
        /// Source register holding the value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
        /// Access width.
        width: MemWidth,
    },
    /// Register-register ALU operation: `rd = rs <op> rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Register-immediate ALU operation: `rd = rs <op> sext(imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Sign-extended 16-bit immediate.
        imm: i16,
    },
    /// Load upper immediate: `rd = imm << 16` (zero elsewhere).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in bits 16..32.
        imm: u16,
    },
    /// Floating-point operation on f64 bit patterns: `rd = rs <op> rt`.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source (ignored by conversions).
        rt: Reg,
    },
    /// Conditional branch: if `cond(rs, rt)`, `pc += 4 + disp*4`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Word displacement relative to the next instruction.
        disp: i16,
    },
    /// Unconditional jump to absolute instruction index `target`.
    Jump {
        /// Absolute target, in instruction words from the text base.
        target: u32,
    },
    /// Jump-and-link: `ra = pc + 4`, then jump to `target`.
    Jal {
        /// Absolute target, in instruction words from the text base.
        target: u32,
    },
    /// Indirect jump to the byte address in `rs` (used for returns and
    /// indirect dispatch — the C++-style indirect calls the paper discusses).
    Jr {
        /// Register holding the target byte address.
        rs: Reg,
    },
    /// Indirect jump-and-link: `rd = pc + 4`, jump to address in `rs`.
    Jalr {
        /// Link register (receives return address).
        rd: Reg,
        /// Register holding the target byte address.
        rs: Reg,
    },
    /// System call.
    Sys {
        /// Which call to perform.
        call: Syscall,
    },
    /// No operation.
    Nop,
}

impl Instruction {
    /// The opcode class, matching the paper's per-class breakdown.
    pub fn class(self) -> OpClass {
        match self {
            Instruction::Load { .. } | Instruction::LoadSigned { .. } => OpClass::Load,
            Instruction::Store { .. } => OpClass::Store,
            Instruction::Alu { op, .. } | Instruction::AluImm { op, .. } => op.class(),
            Instruction::Lui { .. } => OpClass::IntAlu,
            Instruction::Fp { .. } => OpClass::FpAlu,
            Instruction::Branch { .. } => OpClass::Branch,
            Instruction::Jump { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. }
            | Instruction::Jalr { .. } => OpClass::Jump,
            Instruction::Sys { .. } => OpClass::Sys,
            Instruction::Nop => OpClass::IntAlu,
        }
    }

    /// The architectural destination register, if the instruction writes
    /// one. `Jal` writes `ra`; syscalls that produce a value write `v0`.
    pub fn dest_register(self) -> Option<Reg> {
        match self {
            Instruction::Load { rd, .. }
            | Instruction::LoadSigned { rd, .. }
            | Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Lui { rd, .. }
            | Instruction::Fp { rd, .. }
            | Instruction::Jalr { rd, .. } => Some(rd),
            Instruction::Jal { .. } => Some(Reg::RA),
            Instruction::Sys { call } if call.defines_v0() => Some(Reg::V0),
            _ => None,
        }
    }

    /// Whether the paper's value profiler would profile this instruction:
    /// it computes a value into a register other than the hard-wired zero.
    ///
    /// Control-transfer link writes (`jal`/`jalr`) are *excluded*, as the
    /// paper profiles value-producing computation, not return addresses.
    pub fn is_register_defining(self) -> bool {
        if matches!(
            self,
            Instruction::Jal { .. } | Instruction::Jalr { .. } | Instruction::Sys { .. }
        ) {
            return false;
        }
        self.dest_register().is_some_and(|r| !r.is_zero())
    }

    /// Whether this is a load (the paper's headline profiling target).
    pub fn is_load(self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::LoadSigned { .. })
    }

    /// Source registers read by the instruction (up to 2).
    pub fn source_registers(self) -> Vec<Reg> {
        match self {
            Instruction::Load { base, .. } | Instruction::LoadSigned { base, .. } => vec![base],
            Instruction::Store { rs, base, .. } => vec![rs, base],
            Instruction::Alu { rs, rt, .. } => vec![rs, rt],
            Instruction::AluImm { rs, .. } => vec![rs],
            Instruction::Lui { .. } => vec![],
            Instruction::Fp { op, rs, rt, .. } => {
                if op.uses_rt() {
                    vec![rs, rt]
                } else {
                    vec![rs]
                }
            }
            Instruction::Branch { rs, rt, .. } => vec![rs, rt],
            Instruction::Jump { .. } | Instruction::Jal { .. } => vec![],
            Instruction::Jr { rs } | Instruction::Jalr { rs, .. } => vec![rs],
            Instruction::Sys { .. } => vec![Reg::A0],
            Instruction::Nop => vec![],
        }
    }

    /// Whether the instruction can redirect control flow.
    pub fn is_control_transfer(self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::Jump { .. }
                | Instruction::Jal { .. }
                | Instruction::Jr { .. }
                | Instruction::Jalr { .. }
        ) || matches!(self, Instruction::Sys { call: Syscall::Exit })
    }

    /// Whether the instruction *unconditionally* leaves the fall-through
    /// path (used by basic-block discovery).
    pub fn is_unconditional_transfer(self) -> bool {
        matches!(
            self,
            Instruction::Jump { .. }
                | Instruction::Jal { .. }
                | Instruction::Jr { .. }
                | Instruction::Jalr { .. }
        ) || matches!(self, Instruction::Sys { call: Syscall::Exit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_registers() {
        let ld = Instruction::Load { rd: Reg::R3, base: Reg::SP, offset: 0, width: MemWidth::D };
        assert_eq!(ld.dest_register(), Some(Reg::R3));
        let st = Instruction::Store { rs: Reg::R3, base: Reg::SP, offset: 0, width: MemWidth::D };
        assert_eq!(st.dest_register(), None);
        let jal = Instruction::Jal { target: 0 };
        assert_eq!(jal.dest_register(), Some(Reg::RA));
        let sys = Instruction::Sys { call: Syscall::GetInput };
        assert_eq!(sys.dest_register(), Some(Reg::V0));
        let exit = Instruction::Sys { call: Syscall::Exit };
        assert_eq!(exit.dest_register(), None);
    }

    #[test]
    fn register_defining_excludes_links_and_zero_writes() {
        assert!(!Instruction::Jal { target: 0 }.is_register_defining());
        assert!(!Instruction::Jalr { rd: Reg::R2, rs: Reg::R3 }.is_register_defining());
        assert!(!Instruction::Sys { call: Syscall::GetInput }.is_register_defining());
        let to_zero = Instruction::Alu { op: AluOp::Add, rd: Reg::R0, rs: Reg::R1, rt: Reg::R2 };
        assert!(!to_zero.is_register_defining());
        let normal = Instruction::Alu { op: AluOp::Add, rd: Reg::R9, rs: Reg::R1, rt: Reg::R2 };
        assert!(normal.is_register_defining());
        let ld = Instruction::Load { rd: Reg::R9, base: Reg::SP, offset: 8, width: MemWidth::W };
        assert!(ld.is_register_defining());
        assert!(ld.is_load());
    }

    #[test]
    fn classes() {
        assert_eq!(
            Instruction::LoadSigned { rd: Reg::R1, base: Reg::R2, offset: 0, width: MemWidth::B }
                .class(),
            OpClass::Load
        );
        assert_eq!(Instruction::Lui { rd: Reg::R1, imm: 5 }.class(), OpClass::IntAlu);
        assert_eq!(
            Instruction::Fp { op: FpOp::FAdd, rd: Reg::R1, rs: Reg::R2, rt: Reg::R3 }.class(),
            OpClass::FpAlu
        );
        assert_eq!(Instruction::Jr { rs: Reg::RA }.class(), OpClass::Jump);
        assert_eq!(Instruction::Nop.class(), OpClass::IntAlu);
    }

    #[test]
    fn control_transfer_flags() {
        assert!(Instruction::Branch { cond: BranchCond::Eq, rs: Reg::R1, rt: Reg::R2, disp: -1 }
            .is_control_transfer());
        assert!(!Instruction::Branch { cond: BranchCond::Eq, rs: Reg::R1, rt: Reg::R2, disp: -1 }
            .is_unconditional_transfer());
        assert!(Instruction::Jump { target: 4 }.is_unconditional_transfer());
        assert!(Instruction::Sys { call: Syscall::Exit }.is_unconditional_transfer());
        assert!(!Instruction::Sys { call: Syscall::PutInt }.is_control_transfer());
    }

    #[test]
    fn source_registers() {
        let st = Instruction::Store { rs: Reg::R3, base: Reg::R4, offset: 0, width: MemWidth::D };
        assert_eq!(st.source_registers(), vec![Reg::R3, Reg::R4]);
        let cvt = Instruction::Fp { op: FpOp::CvtIF, rd: Reg::R1, rs: Reg::R2, rt: Reg::R3 };
        assert_eq!(cvt.source_registers(), vec![Reg::R2]);
        let lui = Instruction::Lui { rd: Reg::R1, imm: 1 };
        assert!(lui.source_registers().is_empty());
    }
}
