//! Operation kinds: ALU ops, FP ops, branch conditions, memory widths,
//! syscalls and the opcode *classes* used by the paper's per-class tables.

use std::fmt;

/// Integer ALU operations (register-register or register-immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit (low half) multiplication.
    Mul,
    /// Signed division. Division by zero yields 0 (the emulator's defined
    /// semantics; real hardware would trap).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise not-or.
    Nor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than, signed: `rd = (rs < rt) as u64`.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Sne,
    ];

    /// Mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
        }
    }

    /// The paper's opcode class this operation falls into:
    /// add/sub are plain integer ALU, shifts and logic and compares are their
    /// own classes, and mul/div/rem form the long-latency class.
    pub fn class(self) -> OpClass {
        match self {
            AluOp::Add | AluOp::Sub => OpClass::IntAlu,
            AluOp::Mul | AluOp::Div | AluOp::Rem => OpClass::MulDiv,
            AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Nor => OpClass::Logic,
            AluOp::Sll | AluOp::Srl | AluOp::Sra => OpClass::Shift,
            AluOp::Slt | AluOp::Sltu | AluOp::Seq | AluOp::Sne => OpClass::Compare,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point operations. Operands and results are `f64` bit patterns
/// held in the integer register file (as on the Alpha, where FP registers
/// were profiled through the same 64-bit value domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FpOp {
    /// `rd = rs + rt` (f64).
    FAdd,
    /// `rd = rs - rt` (f64).
    FSub,
    /// `rd = rs * rt` (f64).
    FMul,
    /// `rd = rs / rt` (f64).
    FDiv,
    /// `rd = (rs < rt) as u64` (f64 compare, integer result).
    FCmpLt,
    /// Convert signed integer in `rs` to f64 bits.
    CvtIF,
    /// Convert f64 bits in `rs` to a signed integer (truncating; NaN -> 0).
    CvtFI,
}

impl FpOp {
    /// All FP operations, in encoding order.
    pub const ALL: [FpOp; 7] =
        [FpOp::FAdd, FpOp::FSub, FpOp::FMul, FpOp::FDiv, FpOp::FCmpLt, FpOp::CvtIF, FpOp::CvtFI];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
            FpOp::FCmpLt => "fcmplt",
            FpOp::CvtIF => "cvtif",
            FpOp::CvtFI => "cvtfi",
        }
    }

    /// Whether the operation uses the second source register `rt`.
    pub fn uses_rt(self) -> bool {
        !matches!(self, FpOp::CvtIF | FpOp::CvtFI)
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions (compare two registers, PC-relative displacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchCond {
    /// Branch if `rs == rt`.
    Eq,
    /// Branch if `rs != rt`.
    Ne,
    /// Branch if `rs < rt`, signed.
    Lt,
    /// Branch if `rs >= rt`, signed.
    Ge,
    /// Branch if `rs < rt`, unsigned.
    Ltu,
    /// Branch if `rs >= rt`, unsigned.
    Geu,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two 64-bit register values.
    ///
    /// ```
    /// use vp_isa::BranchCond;
    /// assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes (halfword).
    H,
    /// 4 bytes (word).
    W,
    /// 8 bytes (doubleword).
    D,
}

impl MemWidth {
    /// All widths, in encoding order.
    pub const ALL: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// Suffix used in load/store mnemonics (`ldb`, `sth`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::B => "b",
            MemWidth::H => "h",
            MemWidth::W => "w",
            MemWidth::D => "d",
        }
    }
}

/// System calls, invoked by the `sys` instruction. Arguments are taken from
/// the argument registers (`a0`, ...), results land in `v0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Syscall {
    /// Terminate the program; exit code in `a0`.
    Exit,
    /// Print the signed integer in `a0` to the run's output buffer.
    PutInt,
    /// Print the low byte of `a0` as a character.
    PutChar,
    /// Read the next value of the run's input stream into `v0`.
    /// Returns 0 once the stream is exhausted.
    GetInput,
}

impl Syscall {
    /// All syscalls, in encoding order.
    pub const ALL: [Syscall; 4] =
        [Syscall::Exit, Syscall::PutInt, Syscall::PutChar, Syscall::GetInput];

    /// Assembly mnemonic (used as the `sys` operand).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Syscall::Exit => "exit",
            Syscall::PutInt => "putint",
            Syscall::PutChar => "putchar",
            Syscall::GetInput => "getinput",
        }
    }

    /// Whether the syscall writes the return-value register `v0`.
    pub fn defines_v0(self) -> bool {
        matches!(self, Syscall::GetInput)
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Instruction classes used to break invariance results down by opcode
/// type, mirroring the paper's per-class value-profile tables (loads,
/// integer ALU, shift, logic, compare/set, multiply/divide, floating point,
/// control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Memory loads (the paper's primary target).
    Load,
    /// Memory stores (profiled for the *memory location* study).
    Store,
    /// Plain integer arithmetic (add/sub, address arithmetic, `lui`).
    IntAlu,
    /// Shifts.
    Shift,
    /// Bitwise logic.
    Logic,
    /// Compare / set instructions producing 0 or 1.
    Compare,
    /// Multiplies, divides and remainders.
    MulDiv,
    /// Floating-point arithmetic and conversions.
    FpAlu,
    /// Conditional branches (no destination register).
    Branch,
    /// Unconditional jumps, calls and returns.
    Jump,
    /// System calls.
    Sys,
}

impl OpClass {
    /// All classes in display order.
    pub const ALL: [OpClass; 11] = [
        OpClass::Load,
        OpClass::Store,
        OpClass::IntAlu,
        OpClass::Shift,
        OpClass::Logic,
        OpClass::Compare,
        OpClass::MulDiv,
        OpClass::FpAlu,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::Sys,
    ];

    /// Human-readable class name as used in report tables.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::IntAlu => "int-alu",
            OpClass::Shift => "shift",
            OpClass::Logic => "logic",
            OpClass::Compare => "compare",
            OpClass::MulDiv => "mul-div",
            OpClass::FpAlu => "fp-alu",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::Sys => "sys",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_classes() {
        assert_eq!(AluOp::Add.class(), OpClass::IntAlu);
        assert_eq!(AluOp::Mul.class(), OpClass::MulDiv);
        assert_eq!(AluOp::Sll.class(), OpClass::Shift);
        assert_eq!(AluOp::Xor.class(), OpClass::Logic);
        assert_eq!(AluOp::Slt.class(), OpClass::Compare);
    }

    #[test]
    fn branch_eval_signed_vs_unsigned() {
        let neg1 = u64::MAX;
        assert!(BranchCond::Lt.eval(neg1, 0));
        assert!(!BranchCond::Ge.eval(neg1, 0));
        assert!(BranchCond::Geu.eval(neg1, 0));
        assert!(!BranchCond::Ltu.eval(neg1, 0));
        assert!(BranchCond::Eq.eval(7, 7));
        assert!(BranchCond::Ne.eval(7, 8));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::ALL.map(MemWidth::bytes), [1, 2, 4, 8]);
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<&str> = AluOp::ALL.iter().map(|o| o.mnemonic()).collect();
        names.extend(FpOp::ALL.iter().map(|o| o.mnemonic()));
        names.extend(BranchCond::ALL.iter().map(|c| c.mnemonic()));
        names.extend(Syscall::ALL.iter().map(|s| s.mnemonic()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate mnemonic");
    }

    #[test]
    fn syscall_v0_definition() {
        assert!(Syscall::GetInput.defines_v0());
        assert!(!Syscall::Exit.defines_v0());
        assert!(!Syscall::PutInt.defines_v0());
    }
}
