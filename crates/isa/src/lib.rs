//! # vp-isa — the VP64 instruction set
//!
//! A compact 64-bit RISC instruction set used by the Value Profiling
//! reproduction as a stand-in for the DEC Alpha ISA that the original paper
//! (Calder, Feller, Eustace, MICRO-30 1997) profiled through ATOM.
//!
//! The ISA is deliberately Alpha-flavoured where it matters to the paper:
//!
//! * a single 64-bit register file (Alpha kept FP values as 64-bit
//!   bit-patterns too, which is what makes *value* profiling uniform across
//!   instruction classes),
//! * a register `r0` hard-wired to zero,
//! * fixed-width 32-bit instruction words,
//! * opcode *classes* (loads, integer ALU, shifts, logic, compares,
//!   multiplies/divides, floating point, branches) matching the breakdown
//!   used in the paper's per-class invariance tables.
//!
//! The crate provides the [`Instruction`] type, binary
//! [encoding/decoding](mod@encode), a [disassembler](mod@disasm) and the
//! classification helpers ([`Instruction::class`],
//! [`Instruction::dest_register`]) that the profiler layers rely on.
//!
//! ## Example
//!
//! ```
//! use vp_isa::{AluOp, Instruction, Reg};
//!
//! let add = Instruction::Alu { op: AluOp::Add, rd: Reg::R3, rs: Reg::R1, rt: Reg::R2 };
//! let word = add.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), add);
//! assert_eq!(add.to_string(), "add r3, r1, r2");
//! ```

pub mod disasm;
pub mod encode;
pub mod instr;
pub mod op;
pub mod reg;

pub use encode::DecodeError;
pub use instr::Instruction;
pub use op::{AluOp, BranchCond, FpOp, MemWidth, OpClass, Syscall};
pub use reg::Reg;

/// A machine value: every architectural register and memory word holds 64
/// bits. Floating-point values are stored as `f64` bit patterns, exactly as
/// the Alpha stored them, so the value profiler sees one uniform domain.
pub type Value = u64;

/// Size of one instruction word in bytes. The program counter advances by
/// this amount; branch displacements are counted in instruction words.
pub const INSTR_BYTES: u64 = 4;
