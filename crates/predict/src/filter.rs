//! Profile-guided predictor filtering.
//!
//! The paper's proposed use of value profiles for prediction (after Gabbay
//! & Mendelson \[18\]): classify instructions by profiled invariance/LVP and
//! only dedicate predictor-table space to those classified predictable.
//! This raises table utilization and cuts mispredictions.

use std::collections::HashSet;

use vp_core::EntityMetrics;

use crate::Predictor;

/// Wraps a predictor so that only instructions in an allow-set are
/// predicted or trained.
///
/// ```
/// use vp_predict::{FilteredPredictor, LastValuePredictor, Predictor};
///
/// let allowed = [4u32].into_iter().collect();
/// let mut p = FilteredPredictor::new(LastValuePredictor::new(16), allowed);
/// for _ in 0..3 {
///     p.update(4, 7);
///     p.update(8, 7);
/// }
/// assert_eq!(p.predict(4), Some(7));
/// assert_eq!(p.predict(8), None); // filtered out
/// ```
#[derive(Debug, Clone)]
pub struct FilteredPredictor<P> {
    inner: P,
    allowed: HashSet<u32>,
}

impl<P: Predictor> FilteredPredictor<P> {
    /// Creates a filter allowing exactly the PCs in `allowed`.
    pub fn new(inner: P, allowed: HashSet<u32>) -> FilteredPredictor<P> {
        FilteredPredictor { inner, allowed }
    }

    /// Builds the allow-set from a value profile: instructions whose
    /// profiled `lvp` meets `min_lvp` are considered predictable.
    ///
    /// (The paper filters on LVP for a last-value predictor; pass an
    /// `Inv-Top`-based selection for specialization-style uses instead.)
    pub fn from_profile(inner: P, metrics: &[EntityMetrics], min_lvp: f64) -> FilteredPredictor<P> {
        let allowed = metrics
            .iter()
            .filter(|m| m.lvp >= min_lvp && m.executions > 0)
            .map(|m| m.id as u32)
            .collect();
        FilteredPredictor { inner, allowed }
    }

    /// Number of allowed PCs.
    pub fn allowed_len(&self) -> usize {
        self.allowed.len()
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Predictor> Predictor for FilteredPredictor<P> {
    fn predict(&mut self, pc: u32) -> Option<u64> {
        self.allowed.contains(&pc).then(|| self.inner.predict(pc)).flatten()
    }

    fn update(&mut self, pc: u32, actual: u64) {
        if self.allowed.contains(&pc) {
            self.inner.update(pc, actual);
        }
    }

    fn name(&self) -> &'static str {
        "filtered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::lvp::LastValuePredictor;

    fn metrics(id: u64, lvp: f64) -> EntityMetrics {
        EntityMetrics {
            id,
            executions: 100,
            lvp,
            inv_top1: lvp,
            inv_topn: lvp,
            inv_all1: None,
            inv_alln: None,
            pct_zero: 0.0,
            distinct: None,
            top_value: None,
        }
    }

    #[test]
    fn from_profile_selects_by_lvp() {
        let profile = vec![metrics(0, 0.95), metrics(1, 0.2), metrics(2, 0.8)];
        let f = FilteredPredictor::from_profile(LastValuePredictor::new(8), &profile, 0.5);
        assert_eq!(f.allowed_len(), 2);
        assert_eq!(f.inner().len(), 8);
    }

    #[test]
    fn filtering_avoids_aliasing_mispredictions() {
        // Two PCs alias in a 1-entry table. PC 0 is constant, PC 1 random.
        // Unfiltered, PC 1 keeps evicting PC 0's entry; filtered on the
        // profile, PC 0 predicts nearly perfectly.
        let stream: Vec<(u32, u64)> =
            (0..1000u64).map(|i| if i % 2 == 0 { (0u32, 7u64) } else { (1u32, i) }).collect();

        let mut unfiltered = LastValuePredictor::new(1);
        let u = evaluate(&mut unfiltered, stream.iter().copied());

        let profile = vec![metrics(0, 0.99), metrics(1, 0.0)];
        let mut filtered =
            FilteredPredictor::from_profile(LastValuePredictor::new(1), &profile, 0.5);
        let f = evaluate(&mut filtered, stream.iter().copied());

        assert!(f.hits > u.hits, "filtered {} vs unfiltered {}", f.hits, u.hits);
        assert!(f.mispredictions < u.mispredictions.max(1));
    }

    #[test]
    fn disallowed_pcs_never_predict() {
        let mut p = FilteredPredictor::new(LastValuePredictor::new(8), HashSet::new());
        for _ in 0..5 {
            p.update(3, 1);
        }
        assert_eq!(p.predict(3), None);
        assert_eq!(p.name(), "filtered");
    }
}
