//! Predictor evaluation harness.

use crate::Predictor;

/// Outcome counts of driving a predictor over a value stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Correct predictions.
    pub hits: u64,
    /// Wrong predictions (the costly case: mis-speculation).
    pub mispredictions: u64,
    /// Executions where the predictor declined to predict.
    pub silent: u64,
}

impl PredictorStats {
    /// Total instructions fed.
    pub fn total(&self) -> u64 {
        self.hits + self.mispredictions + self.silent
    }

    /// Hit rate over *all* executions (the paper's accuracy measure).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Precision: hits over predictions actually made.
    pub fn precision(&self) -> f64 {
        let made = self.hits + self.mispredictions;
        if made == 0 {
            0.0
        } else {
            self.hits as f64 / made as f64
        }
    }

    /// Fraction of executions on which a prediction was attempted.
    pub fn coverage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.mispredictions) as f64 / total as f64
        }
    }
}

/// Drives `predictor` over a `(pc, actual_value)` stream, predicting
/// before and training after each event, and tallies the outcomes.
///
/// ```
/// use vp_predict::{eval::evaluate, LastValuePredictor};
///
/// let stream = (0..10u64).map(|_| (4u32, 9u64));
/// let stats = evaluate(&mut LastValuePredictor::new(8), stream);
/// assert_eq!(stats.total(), 10);
/// assert_eq!(stats.mispredictions, 0);
/// ```
pub fn evaluate<P, I>(predictor: &mut P, stream: I) -> PredictorStats
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = (u32, u64)>,
{
    let mut stats = PredictorStats::default();
    for (pc, actual) in stream {
        match predictor.predict(pc) {
            Some(v) if v == actual => stats.hits += 1,
            Some(_) => stats.mispredictions += 1,
            None => stats.silent += 1,
        }
        predictor.update(pc, actual);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvp::LastValuePredictor;
    use crate::stride::StridePredictor;

    #[test]
    fn stats_arithmetic() {
        let s = PredictorStats { hits: 6, mispredictions: 2, silent: 2 };
        assert_eq!(s.total(), 10);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.precision() - 0.75).abs() < 1e-12);
        assert!((s.coverage() - 0.8).abs() < 1e-12);
        let empty = PredictorStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.coverage(), 0.0);
    }

    #[test]
    fn lvp_vs_stride_on_a_counter() {
        // A striding stream: stride prediction should far outperform LVP.
        let stream: Vec<(u32, u64)> = (0..500u64).map(|i| (0u32, i * 16)).collect();
        let l = evaluate(&mut LastValuePredictor::new(16), stream.iter().copied());
        let s = evaluate(&mut StridePredictor::new(16), stream.iter().copied());
        assert!(s.hit_rate() > 0.9);
        assert!(l.hit_rate() < 0.1);
    }

    #[test]
    fn constant_stream_both_work() {
        let stream: Vec<(u32, u64)> = (0..100).map(|_| (0u32, 5u64)).collect();
        let l = evaluate(&mut LastValuePredictor::new(16), stream.iter().copied());
        let s = evaluate(&mut StridePredictor::new(16), stream.iter().copied());
        assert!(l.hit_rate() > 0.9);
        assert!(s.hit_rate() > 0.9);
    }
}
