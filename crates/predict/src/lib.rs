//! # vp-predict — value predictors
//!
//! Hardware value prediction is the motivating context of the Value
//! Profiling paper (§II.A): last-value predictors (Lipasti & Shen [27,
//! 28], Gabbay & Mendelson \[17\]), stride and two-level predictors
//! (Sazeides & Smith \[34\], Wang & Franklin \[39\]) and profile-guided
//! predictor filtering (Gabbay & Mendelson \[18\]).
//!
//! This crate implements those predictor families over the same
//! `(pc, value)` event stream the profiler observes:
//!
//! * [`LastValuePredictor`] — the Value History Table (VHT) with 2-bit
//!   confidence counters,
//! * [`StridePredictor`] — last value + stride with 2-delta update,
//! * [`TwoLevelPredictor`] — per-PC value history indexing a pattern
//!   table of recently seen values,
//! * [`HybridPredictor`] — per-PC selector between two components
//!   (Wang & Franklin's organization),
//! * [`FilteredPredictor`] — restricts prediction to instructions a value
//!   *profile* marked predictable, the paper's proposed use.
//!
//! * [`path::PathLvp`] — the thesis's future-work extension: last-value
//!   prediction indexed by `(pc, path history)`, after Young & Smith \[40\].
//!
//! All predictors implement [`Predictor`] and are evaluated with
//! [`eval::evaluate`] (path-sensitive prediction has its own pathed
//! stream and harness in [`path`]).
//!
//! ```
//! use vp_predict::{eval, LastValuePredictor, Predictor};
//!
//! let mut p = LastValuePredictor::new(64);
//! let stream: Vec<(u32, u64)> = (0..100).map(|_| (0u32, 7u64)).collect();
//! let stats = eval::evaluate(&mut p, stream.iter().copied());
//! assert!(stats.hit_rate() > 0.9);
//! ```

pub mod eval;
pub mod filter;
pub mod hybrid;
pub mod lvp;
pub mod path;
pub mod stride;
pub mod two_level;

pub use eval::{evaluate, PredictorStats};
pub use filter::FilteredPredictor;
pub use hybrid::HybridPredictor;
pub use lvp::LastValuePredictor;
pub use path::{collect_pathed_stream, evaluate_pathed, PathHistory, PathLvp, PathedEvent};
pub use stride::StridePredictor;
pub use two_level::TwoLevelPredictor;

/// A value predictor over a `(pc, value)` instruction stream.
///
/// The driver calls [`predict`](Predictor::predict) *before* the
/// instruction executes and [`update`](Predictor::update) with the actual
/// produced value afterwards. `predict` returns `None` when the predictor
/// does not have enough confidence to speculate — mispredictions are
/// costly, so predictors only speak when confident.
pub trait Predictor {
    /// Predicted value for the instruction at `pc`, if confident.
    fn predict(&mut self, pc: u32) -> Option<u64>;

    /// Trains the predictor with the actually produced value.
    fn update(&mut self, pc: u32, actual: u64);

    /// Short human-readable name for report tables.
    fn name(&self) -> &'static str;
}
