//! Stride prediction: last value plus a (2-delta) stride.

use crate::Predictor;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u32,
    last: u64,
    stride: i64,
    candidate: i64,
    confidence: u8,
    valid: bool,
}

/// A stride predictor with 2-delta stride update: the stored stride is
/// replaced only after the same new stride is seen twice, which keeps one
/// irregular value from destroying a steady stride. With stride zero this
/// degenerates to last-value prediction — the paper's observation that a
/// constant is a stride-0 sequence.
///
/// ```
/// use vp_predict::{Predictor, StridePredictor};
///
/// let mut p = StridePredictor::new(16);
/// for v in [10u64, 20, 30, 40] {
///     p.update(8, v);
/// }
/// assert_eq!(p.predict(8), Some(50));
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    entries: Vec<StrideEntry>,
}

impl StridePredictor {
    /// Creates a stride table with `entries` slots (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0.
    pub fn new(entries: usize) -> StridePredictor {
        assert!(entries > 0, "stride table needs at least one entry");
        StridePredictor { entries: vec![StrideEntry::default(); entries.next_power_of_two()] }
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot(&self, pc: u32) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }
}

impl Predictor for StridePredictor {
    fn predict(&mut self, pc: u32) -> Option<u64> {
        let e = &self.entries[self.slot(pc)];
        (e.valid && e.tag == pc && e.confidence >= 2).then(|| e.last.wrapping_add(e.stride as u64))
    }

    fn update(&mut self, pc: u32, actual: u64) {
        let slot = self.slot(pc);
        let e = &mut self.entries[slot];
        if e.valid && e.tag == pc {
            let observed = actual.wrapping_sub(e.last) as i64;
            if observed == e.stride {
                e.confidence = (e.confidence + 1).min(3);
            } else if observed == e.candidate {
                // Second sighting of the new stride: adopt it.
                e.stride = observed;
                e.confidence = 1;
            } else {
                e.candidate = observed;
                e.confidence = e.confidence.saturating_sub(1);
            }
            e.last = actual;
        } else {
            *e = StrideEntry {
                tag: pc,
                last: actual,
                stride: 0,
                candidate: 0,
                confidence: 0,
                valid: true,
            };
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_stride() {
        let mut p = StridePredictor::new(8);
        for v in [100u64, 108, 116, 124] {
            p.update(0, v);
        }
        assert_eq!(p.predict(0), Some(132));
    }

    #[test]
    fn constant_is_stride_zero() {
        let mut p = StridePredictor::new(8);
        for _ in 0..3 {
            p.update(0, 7);
        }
        assert_eq!(p.predict(0), Some(7));
    }

    #[test]
    fn negative_stride() {
        let mut p = StridePredictor::new(8);
        for v in [50u64, 40, 30, 20] {
            p.update(0, v);
        }
        assert_eq!(p.predict(0), Some(10));
    }

    #[test]
    fn two_delta_resists_one_glitch() {
        let mut p = StridePredictor::new(8);
        for v in [0u64, 10, 20, 30] {
            p.update(0, v);
        }
        assert_eq!(p.predict(0), Some(40));
        p.update(0, 99); // glitch: stride candidate becomes 69
        p.update(0, 109); // back to +10: candidate mismatch, decay
        p.update(0, 119);
        p.update(0, 129);
        assert_eq!(p.predict(0), Some(139), "stride +10 must survive the glitch");
    }

    #[test]
    fn cold_and_aliased_entries() {
        let mut p = StridePredictor::new(4);
        assert_eq!(p.predict(3), None);
        p.update(1, 5);
        p.update(5, 6); // aliases slot 1
        assert_eq!(p.predict(1), None);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = StridePredictor::new(0);
    }
}
