//! Hybrid value prediction: a per-PC selector between two components.
//!
//! Wang & Franklin \[39\] evaluated LVP+stride and stride+two-level hybrids
//! and found hybrids the most accurate; this is the organization
//! reproduced for experiment E14.

use std::collections::HashMap;

use crate::Predictor;

/// Combines two predictors with a per-PC 2-bit selector trained on which
/// component has recently been correct.
///
/// ```
/// use vp_predict::{HybridPredictor, LastValuePredictor, Predictor, StridePredictor};
///
/// let mut p = HybridPredictor::new(LastValuePredictor::new(64), StridePredictor::new(64));
/// for v in [10u64, 20, 30, 40] {
///     p.update(0, v);
/// }
/// assert_eq!(p.predict(0), Some(50)); // the stride side wins
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor<A, B> {
    first: A,
    second: B,
    /// Per-PC selector: 0..=3, <2 prefers `first`, >=2 prefers `second`.
    selector: HashMap<u32, u8>,
}

impl<A: Predictor, B: Predictor> HybridPredictor<A, B> {
    /// Creates a hybrid of two component predictors.
    pub fn new(first: A, second: B) -> HybridPredictor<A, B> {
        HybridPredictor { first, second, selector: HashMap::new() }
    }

    /// The first component.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<A: Predictor, B: Predictor> Predictor for HybridPredictor<A, B> {
    fn predict(&mut self, pc: u32) -> Option<u64> {
        let a = self.first.predict(pc);
        let b = self.second.predict(pc);
        let sel = self.selector.get(&pc).copied().unwrap_or(1);
        match (a, b) {
            (Some(x), Some(y)) => Some(if sel >= 2 { y } else { x }),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        }
    }

    fn update(&mut self, pc: u32, actual: u64) {
        let a = self.first.predict(pc);
        let b = self.second.predict(pc);
        // Train the selector on cases where exactly one component is right.
        let sel = self.selector.entry(pc).or_insert(1);
        match (a == Some(actual), b == Some(actual)) {
            (true, false) => *sel = sel.saturating_sub(1),
            (false, true) => *sel = (*sel + 1).min(3),
            _ => {}
        }
        self.first.update(pc, actual);
        self.second.update(pc, actual);
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvp::LastValuePredictor;
    use crate::stride::StridePredictor;
    use crate::two_level::TwoLevelPredictor;

    #[test]
    fn picks_the_working_component_per_pc() {
        let mut p = HybridPredictor::new(LastValuePredictor::new(64), StridePredictor::new(64));
        // PC 0: constant (both fine). PC 1: stride (only stride works).
        for i in 0..50u64 {
            p.update(0, 42);
            p.update(1, i * 8);
        }
        assert_eq!(p.predict(0), Some(42));
        assert_eq!(p.predict(1), Some(400));
    }

    #[test]
    fn hybrid_beats_both_components_on_mixed_streams() {
        // PC 0 strides, PC 1 follows a period-2 pattern: stride alone
        // misses PC 1, two-level alone misses nothing here but is slower
        // to warm on strides it cannot express.
        let run = |p: &mut dyn Predictor| -> u64 {
            let mut hits = 0;
            for i in 0..400u64 {
                let (pc, actual) = if i % 2 == 0 { (0u32, i * 4) } else { (1u32, 7 + (i / 2) % 2) };
                if p.predict(pc) == Some(actual) {
                    hits += 1;
                }
                p.update(pc, actual);
            }
            hits
        };
        let mut stride = StridePredictor::new(64);
        let mut hybrid = HybridPredictor::new(StridePredictor::new(64), TwoLevelPredictor::new());
        let s = run(&mut stride);
        let h = run(&mut hybrid);
        assert!(h > s, "hybrid {h} should beat stride {s}");
    }

    #[test]
    fn silent_when_both_silent() {
        let mut p = HybridPredictor::new(LastValuePredictor::new(8), StridePredictor::new(8));
        assert_eq!(p.predict(0), None);
        assert_eq!(p.name(), "hybrid");
        let _ = (p.first().name(), p.second().name());
    }
}
