//! Path-sensitive value prediction — the thesis's future-work extension.
//!
//! "One could use an approach similar to Young and Smith \[40\] by using the
//! path history when predicting values. This can be especially beneficial
//! for procedures called from several locations in the program."
//!
//! A global *path history register* is folded with the targets of taken
//! control transfers; predictor tables are indexed by `(pc, history)`
//! instead of `pc` alone, so an instruction whose value depends on *how*
//! control reached it (e.g. the call site and its constant argument) gets
//! one table entry per path.

use std::collections::HashMap;

use vp_asm::Program;
use vp_instrument::{Analysis, Instrumenter, Selection};
use vp_sim::{InstrEvent, Machine, MachineConfig, SimError};

/// One dynamic event of a path-annotated value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathedEvent {
    /// Instruction index.
    pub pc: u32,
    /// Produced value.
    pub value: u64,
    /// Path history register at the time of execution.
    pub path: u64,
}

/// The global path history register: a shift-and-fold of recent taken
/// control-transfer targets, truncated to `bits` bits.
#[derive(Debug, Clone, Copy)]
pub struct PathHistory {
    bits: u32,
    value: u64,
}

impl PathHistory {
    /// A history register of `bits` bits (1..=63).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or ≥ 64.
    pub fn new(bits: u32) -> PathHistory {
        assert!((1..64).contains(&bits), "history bits must be in 1..=63");
        PathHistory { bits, value: 0 }
    }

    /// Folds one control-transfer target into the history.
    pub fn push(&mut self, target: u32) {
        let mask = (1u64 << self.bits) - 1;
        self.value = ((self.value << 3) ^ u64::from(target)) & mask;
    }

    /// Current history value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Collects the path-annotated value stream of the selected instructions
/// in one program run.
///
/// # Errors
///
/// Propagates emulator faults.
pub fn collect_pathed_stream(
    program: &Program,
    config: MachineConfig,
    budget: u64,
    selection: Selection,
    history_bits: u32,
) -> Result<Vec<PathedEvent>, SimError> {
    struct Collector {
        history: PathHistory,
        events: Vec<PathedEvent>,
        selected: Vec<bool>,
    }
    impl Analysis for Collector {
        fn after_instr(&mut self, _m: &Machine, ev: &InstrEvent) {
            if self.selected.get(ev.index as usize).copied().unwrap_or(false) {
                if let Some((_, value)) = ev.dest {
                    self.events.push(PathedEvent {
                        pc: ev.index,
                        value,
                        path: self.history.value(),
                    });
                }
            }
            // Maintain the path on every control transfer (the collector is
            // attached with Selection::All so it sees them all).
            if ev.instr.is_control_transfer() && ev.next_index != ev.index + 1 {
                self.history.push(ev.next_index);
            }
        }
    }
    let mut collector = Collector {
        history: PathHistory::new(history_bits),
        events: Vec::new(),
        selected: selection.resolve(program),
    };
    Instrumenter::new().select(Selection::All).run(program, config, budget, &mut collector)?;
    Ok(collector.events)
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    value: u64,
    confidence: u8,
    valid: bool,
}

/// A last-value predictor indexed by `(pc, path history)`.
#[derive(Debug, Clone, Default)]
pub struct PathLvp {
    table: HashMap<(u32, u64), Entry>,
}

impl PathLvp {
    /// An empty path-sensitive LVP.
    pub fn new() -> PathLvp {
        PathLvp::default()
    }

    /// Number of `(pc, path)` contexts allocated.
    pub fn contexts(&self) -> usize {
        self.table.len()
    }

    /// Predicted value for `(pc, path)`, if confident.
    pub fn predict(&self, pc: u32, path: u64) -> Option<u64> {
        let e = self.table.get(&(pc, path))?;
        (e.valid && e.confidence >= 2).then_some(e.value)
    }

    /// Trains the `(pc, path)` context with the produced value.
    pub fn update(&mut self, pc: u32, path: u64, actual: u64) {
        let e = self.table.entry((pc, path)).or_default();
        if e.valid && e.value == actual {
            e.confidence = (e.confidence + 1).min(3);
        } else if e.valid {
            e.value = actual;
            e.confidence = e.confidence.saturating_sub(1);
        } else {
            *e = Entry { value: actual, confidence: 1, valid: true };
        }
    }
}

/// Evaluates a [`PathLvp`] and a path-blind LVP over the same pathed
/// stream, returning `(path_hits, blind_hits, total)`.
pub fn evaluate_pathed(stream: &[PathedEvent]) -> (u64, u64, u64) {
    let mut pathed = PathLvp::new();
    let mut blind = PathLvp::new(); // path pinned to 0 = plain per-PC LVP
    let mut path_hits = 0;
    let mut blind_hits = 0;
    for ev in stream {
        if pathed.predict(ev.pc, ev.path) == Some(ev.value) {
            path_hits += 1;
        }
        if blind.predict(ev.pc, 0) == Some(ev.value) {
            blind_hits += 1;
        }
        pathed.update(ev.pc, ev.path, ev.value);
        blind.update(ev.pc, 0, ev.value);
    }
    (path_hits, blind_hits, stream.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A procedure called from two sites with site-constant arguments: the
    /// canonical case where path history rescues last-value prediction.
    const TWO_SITES: &str = r#"
        .text
        main:
            li r9, 200
        loop:
            andi r12, r9, 1
            bz   r12, even
            li   a0, 10
            call f
            j    next
        even:
            li   a0, 20
            call f
        next:
            addi r9, r9, -1
            bnz  r9, loop
            sys  exit
        .proc f
        f:
            add  v0, a0, a0     # value alternates 20/40 with the call site
            ret
        .endp
    "#;

    #[test]
    fn path_history_disambiguates_call_sites() {
        let program = vp_asm::assemble(TWO_SITES).unwrap();
        let target = program.procedure("f").unwrap().range.start;
        let stream = collect_pathed_stream(
            &program,
            MachineConfig::new(),
            1_000_000,
            Selection::Custom([target].into_iter().collect()),
            16,
        )
        .unwrap();
        assert_eq!(stream.len(), 200);
        let (path_hits, blind_hits, total) = evaluate_pathed(&stream);
        // The value alternates with the call site every iteration: blind
        // LVP almost never hits, path-indexed LVP almost always does.
        assert!(blind_hits < total / 10, "blind {blind_hits}/{total}");
        assert!(path_hits > total * 8 / 10, "pathed {path_hits}/{total}");
    }

    #[test]
    fn history_register_folds_and_masks() {
        let mut h = PathHistory::new(8);
        assert_eq!(h.value(), 0);
        h.push(0xffff);
        assert!(h.value() < 256);
        let before = h.value();
        h.push(1);
        assert_ne!(h.value(), before);
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_bits_panics() {
        let _ = PathHistory::new(0);
    }

    #[test]
    fn path_lvp_confidence_gating() {
        let mut p = PathLvp::new();
        assert_eq!(p.predict(1, 2), None);
        p.update(1, 2, 9);
        assert_eq!(p.predict(1, 2), None);
        p.update(1, 2, 9);
        assert_eq!(p.predict(1, 2), Some(9));
        assert_eq!(p.predict(1, 3), None, "different path, different context");
        assert_eq!(p.contexts(), 1);
    }

    #[test]
    fn stationary_streams_do_not_regress() {
        // With one call site the path is constant: pathed and blind LVP
        // behave identically.
        let stream: Vec<PathedEvent> =
            (0..100).map(|_| PathedEvent { pc: 4, value: 7, path: 42 }).collect();
        let (path_hits, blind_hits, total) = evaluate_pathed(&stream);
        assert_eq!(path_hits, blind_hits);
        assert_eq!(total, 100);
    }
}
