//! Two-level (context-based) value prediction.
//!
//! Sazeides & Smith \[34\] distinguish *computational* predictors (stride)
//! from *context-based* predictors, which predict values that follow a
//! finite repeating pattern. This implementation keeps, per PC, a value
//! history table (VHT) of the last few distinct values plus a history of
//! which of them occurred, and a pattern table (PHT) mapping recent history
//! to the value most likely to come next.

use std::collections::HashMap;

use crate::Predictor;

const HISTORY: usize = 4;
const VALUES_PER_PC: usize = 4;

#[derive(Debug, Clone)]
struct PcState {
    /// Recently seen distinct values (the per-PC value dictionary).
    values: Vec<u64>,
    /// Indices into `values` of the last `HISTORY` outcomes.
    history: Vec<u8>,
}

impl PcState {
    fn new() -> PcState {
        PcState { values: Vec::new(), history: Vec::new() }
    }

    fn history_key(&self) -> u64 {
        self.history.iter().fold(0u64, |acc, &i| (acc << 2) | u64::from(i))
    }

    fn value_index(&mut self, value: u64) -> u8 {
        if let Some(i) = self.values.iter().position(|&v| v == value) {
            return i as u8;
        }
        if self.values.len() < VALUES_PER_PC {
            self.values.push(value);
            (self.values.len() - 1) as u8
        } else {
            // Replace the dictionary slot least recently referenced by the
            // outcome history.
            let victim = (0..VALUES_PER_PC as u8).find(|i| !self.history.contains(i)).unwrap_or(0);
            self.values[victim as usize] = value;
            victim
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PatternEntry {
    value_index: u8,
    confidence: u8,
}

/// A two-level context predictor: level 1 is the per-PC outcome history,
/// level 2 a pattern table predicting the next value index from that
/// history.
///
/// ```
/// use vp_predict::{Predictor, TwoLevelPredictor};
///
/// // The period-2 pattern 3,9,3,9,... defeats last-value prediction but
/// // is learned by a context predictor.
/// let mut p = TwoLevelPredictor::new();
/// let mut hits = 0;
/// for i in 0..200u64 {
///     let actual = if i % 2 == 0 { 3 } else { 9 };
///     if p.predict(0) == Some(actual) {
///         hits += 1;
///     }
///     p.update(0, actual);
/// }
/// assert!(hits > 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwoLevelPredictor {
    states: HashMap<u32, PcState>,
    patterns: HashMap<(u32, u64), PatternEntry>,
}

impl TwoLevelPredictor {
    /// Creates an empty two-level predictor.
    pub fn new() -> TwoLevelPredictor {
        TwoLevelPredictor::default()
    }

    /// Number of PCs with any state.
    pub fn tracked_pcs(&self) -> usize {
        self.states.len()
    }
}

impl Predictor for TwoLevelPredictor {
    fn predict(&mut self, pc: u32) -> Option<u64> {
        let state = self.states.get(&pc)?;
        if state.history.len() < HISTORY {
            return None;
        }
        let entry = self.patterns.get(&(pc, state.history_key()))?;
        (entry.confidence >= 2)
            .then(|| state.values.get(entry.value_index as usize).copied())
            .flatten()
    }

    fn update(&mut self, pc: u32, actual: u64) {
        let state = self.states.entry(pc).or_insert_with(PcState::new);
        let full = state.history.len() >= HISTORY;
        let key = state.history_key();
        let idx = state.value_index(actual);
        if full {
            let entry = self.patterns.entry((pc, key)).or_default();
            if entry.value_index == idx {
                entry.confidence = (entry.confidence + 1).min(3);
            } else if entry.confidence == 0 {
                entry.value_index = idx;
                entry.confidence = 1;
            } else {
                entry.confidence -= 1;
            }
        }
        state.history.push(idx);
        if state.history.len() > HISTORY {
            state.history.remove(0);
        }
    }

    fn name(&self) -> &'static str {
        "two-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit_rate(pattern: &[u64], rounds: usize) -> f64 {
        let mut p = TwoLevelPredictor::new();
        let mut hits = 0u64;
        let mut total = 0u64;
        for i in 0..rounds {
            let actual = pattern[i % pattern.len()];
            if p.predict(0) == Some(actual) {
                hits += 1;
            }
            p.update(0, actual);
            total += 1;
        }
        hits as f64 / total as f64
    }

    #[test]
    fn learns_periodic_patterns() {
        assert!(hit_rate(&[1, 2, 3], 300) > 0.8, "period 3");
        assert!(hit_rate(&[5], 300) > 0.9, "constant");
        assert!(hit_rate(&[1, 1, 2, 2], 400) > 0.8, "period 4");
    }

    #[test]
    fn cold_pc_does_not_predict() {
        let mut p = TwoLevelPredictor::new();
        assert_eq!(p.predict(7), None);
        p.update(7, 1);
        assert_eq!(p.predict(7), None, "history not yet full");
        assert_eq!(p.tracked_pcs(), 1);
    }

    #[test]
    fn distinct_pcs_are_independent() {
        let mut p = TwoLevelPredictor::new();
        for _ in 0..50 {
            p.update(1, 10);
            p.update(2, 20);
        }
        assert_eq!(p.predict(1), Some(10));
        assert_eq!(p.predict(2), Some(20));
    }

    #[test]
    fn dictionary_replacement_keeps_working() {
        // More distinct values than dictionary slots: predictor must not
        // panic and should stay silent or recover.
        let mut p = TwoLevelPredictor::new();
        for i in 0..100u64 {
            p.update(0, i % 7);
        }
        let _ = p.predict(0);
    }
}
