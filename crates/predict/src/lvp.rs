//! Last-value prediction: the N-entry Value History Table (VHT).

use crate::Predictor;

#[derive(Debug, Clone, Copy, Default)]
struct VhtEntry {
    tag: u32,
    value: u64,
    /// 2-bit saturating confidence counter; predict when >= 2.
    confidence: u8,
    valid: bool,
}

/// The last-value predictor of Gabbay \[17\] / Lipasti et al. \[27\]: a
/// direct-mapped Value History Table indexed by PC, each entry holding the
/// last value the instruction produced and a 2-bit confidence counter.
///
/// ```
/// use vp_predict::{LastValuePredictor, Predictor};
///
/// let mut p = LastValuePredictor::new(16);
/// p.update(4, 9);
/// p.update(4, 9);      // confidence builds
/// assert_eq!(p.predict(4), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    entries: Vec<VhtEntry>,
}

impl LastValuePredictor {
    /// Creates a VHT with `entries` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0.
    pub fn new(entries: usize) -> LastValuePredictor {
        assert!(entries > 0, "VHT needs at least one entry");
        LastValuePredictor { entries: vec![VhtEntry::default(); entries.next_power_of_two()] }
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero slots (never true).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot(&self, pc: u32) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&mut self, pc: u32) -> Option<u64> {
        let e = &self.entries[self.slot(pc)];
        (e.valid && e.tag == pc && e.confidence >= 2).then_some(e.value)
    }

    fn update(&mut self, pc: u32, actual: u64) {
        let slot = self.slot(pc);
        let e = &mut self.entries[slot];
        if e.valid && e.tag == pc {
            if e.value == actual {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.value = actual;
                e.confidence = e.confidence.saturating_sub(1);
            }
        } else {
            // Aliasing or cold entry: steal it.
            *e = VhtEntry { tag: pc, value: actual, confidence: 1, valid: true };
        }
    }

    fn name(&self) -> &'static str {
        "lvp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_table_does_not_predict() {
        let mut p = LastValuePredictor::new(8);
        assert_eq!(p.predict(0), None);
    }

    #[test]
    fn confidence_gating() {
        let mut p = LastValuePredictor::new(8);
        p.update(0, 5);
        assert_eq!(p.predict(0), None, "confidence 1 is below threshold");
        p.update(0, 5);
        assert_eq!(p.predict(0), Some(5));
    }

    #[test]
    fn value_change_decays_confidence() {
        let mut p = LastValuePredictor::new(8);
        for _ in 0..4 {
            p.update(0, 5);
        }
        assert_eq!(p.predict(0), Some(5));
        p.update(0, 6); // confidence 3 -> 2, value now 6
        assert_eq!(p.predict(0), Some(6));
        p.update(0, 7); // confidence 2 -> 1
        assert_eq!(p.predict(0), None);
    }

    #[test]
    fn aliasing_steals_entry() {
        let mut p = LastValuePredictor::new(4);
        p.update(1, 10);
        p.update(1, 10);
        assert_eq!(p.predict(1), Some(10));
        p.update(5, 99); // same slot (5 & 3 == 1), different tag
        assert_eq!(p.predict(1), None);
        p.update(5, 99);
        assert_eq!(p.predict(5), Some(99));
    }

    #[test]
    fn size_rounds_to_power_of_two() {
        let p = LastValuePredictor::new(5);
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = LastValuePredictor::new(0);
    }
}
