//! Assembler error type.

use std::fmt;

/// An assembly error, carrying the 1-based source line it occurred on
/// (line 0 is used for whole-program errors with no single location).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    /// Creates an error at `line` (1-based; 0 for program-level errors).
    pub fn new(line: usize, message: String) -> AsmError {
        AsmError { line, message }
    }

    /// Source line of the error (1-based; 0 if program-level).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Error description without the location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm error: {}", self.message)
        } else {
            write!(f, "asm error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, "boom".into());
        assert_eq!(e.line(), 7);
        assert_eq!(e.message(), "boom");
        assert_eq!(e.to_string(), "asm error at line 7: boom");
        let e0 = AsmError::new(0, "global".into());
        assert_eq!(e0.to_string(), "asm error: global");
    }
}
