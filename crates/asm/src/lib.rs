//! # vp-asm — assembler and program objects for the VP64 ISA
//!
//! Turns textual VP64 assembly into a [`Program`] — the executable object
//! that `vp-sim` loads and that the instrumentation layer queries, playing
//! the role the compiled Alpha executables (with their symbol tables)
//! played for ATOM in the Value Profiling paper.
//!
//! ## Syntax overview
//!
//! ```text
//! .text / .data            section switches
//! label:                   labels (text: word address; data: byte address)
//! .proc name ... .endp     procedure markers (drives the procedure table)
//! .byte/.half/.word/.quad  data emission (.quad also takes labels: jump tables)
//! .space N  .align N  .ascii "s"  .asciiz "s"
//! add rd, rs, rt           register ALU (add sub mul div rem and or xor nor
//!                          sll srl sra slt sltu seq sne)
//! addi rd, rs, imm         immediate ALU (any of the above + `i`)
//! ldd rd, off(base)        loads: ld{b,h,w,d}, sign-extending ld{b,h,w}s
//! std rs, off(base)        stores: st{b,h,w,d}
//! beq rs, rt, label        branches: beq bne blt bge bltu bgeu
//! j/jal label   jr rs   jalr rd, rs   sys exit|putint|putchar|getinput
//! li rd, imm64  la rd, label  mov rd, rs  ret  call label  b label
//! bz rs, label  bnz rs, label  nop
//! ```
//!
//! Comments start with `#` or `;`.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), vp_asm::AsmError> {
//! let program = vp_asm::assemble(
//!     r#"
//!     .text
//!     .proc main
//!     main:
//!         li  r1, 10
//!     loop:
//!         addi r1, r1, -1
//!         bnz  r1, loop
//!         sys  exit
//!     .endp
//!     "#,
//! )?;
//! assert_eq!(program.procedures()[0].name, "main");
//! # Ok(())
//! # }
//! ```

pub mod assemble;
pub mod error;
pub mod object;
pub mod program;

pub use assemble::assemble;
pub use error::AsmError;
pub use object::ObjectError;
pub use program::{Procedure, Program, Section, Symbol, DATA_BASE};
