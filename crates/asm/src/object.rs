//! The VPO binary object format: serialized [`Program`]s.
//!
//! ATOM worked on on-disk Alpha executables; the `vprof` tool can likewise
//! assemble once and instrument many times by saving assembled programs as
//! `.vpo` objects. The format is a simple little-endian layout:
//!
//! ```text
//! magic "VPO1"  | entry u32 | ncode u32 | ndata u32 | nsyms u32 | nprocs u32
//! code words    (ncode x u32, encoded instructions)
//! data bytes    (ndata)
//! symbols       (name: u16 len + bytes, section u8, address u64)*
//! procedures    (name: u16 len + bytes, start u32, end u32)*
//! ```

use std::collections::BTreeMap;
use std::fmt;

use vp_isa::{DecodeError, Instruction};

use crate::program::{Procedure, Program, Section, Symbol};

const MAGIC: &[u8; 4] = b"VPO1";

/// Error when parsing a VPO object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// File does not start with the VPO magic.
    BadMagic,
    /// The byte stream ended before the declared contents.
    Truncated,
    /// An instruction word failed to decode.
    BadInstruction(DecodeError),
    /// A symbol or procedure name is not valid UTF-8.
    BadName,
    /// A section tag byte is unknown.
    BadSection(u8),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::BadMagic => write!(f, "not a VPO object (bad magic)"),
            ObjectError::Truncated => write!(f, "truncated VPO object"),
            ObjectError::BadInstruction(e) => write!(f, "bad instruction in object: {e}"),
            ObjectError::BadName => write!(f, "invalid UTF-8 in object name"),
            ObjectError::BadSection(tag) => write!(f, "unknown section tag {tag}"),
        }
    }
}

impl std::error::Error for ObjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObjectError::BadInstruction(e) => Some(e),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjectError> {
        let end = self.at.checked_add(n).ok_or(ObjectError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ObjectError::Truncated);
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ObjectError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ObjectError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ObjectError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ObjectError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn name(&mut self) -> Result<String, ObjectError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ObjectError::BadName)
    }
}

impl Program {
    /// Serializes the program to the VPO object format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * 4 + self.data().len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.entry().to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data().len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.symbols().len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.procedures().len() as u32).to_le_bytes());
        for instr in self.code() {
            out.extend_from_slice(&instr.encode().to_le_bytes());
        }
        out.extend_from_slice(self.data());
        for (name, sym) in self.symbols() {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(match sym.section {
                Section::Text => 0,
                Section::Data => 1,
            });
            out.extend_from_slice(&sym.address.to_le_bytes());
        }
        for proc in self.procedures() {
            out.extend_from_slice(&(proc.name.len() as u16).to_le_bytes());
            out.extend_from_slice(proc.name.as_bytes());
            out.extend_from_slice(&proc.range.start.to_le_bytes());
            out.extend_from_slice(&proc.range.end.to_le_bytes());
        }
        out
    }

    /// Parses a VPO object back into a program.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectError`] for malformed input; parsing never
    /// panics, whatever the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, ObjectError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(ObjectError::BadMagic);
        }
        let entry = r.u32()?;
        let ncode = r.u32()? as usize;
        let ndata = r.u32()? as usize;
        let nsyms = r.u32()? as usize;
        let nprocs = r.u32()? as usize;

        let mut code = Vec::with_capacity(ncode.min(1 << 20));
        for _ in 0..ncode {
            let word = r.u32()?;
            code.push(Instruction::decode(word).map_err(ObjectError::BadInstruction)?);
        }
        let data = r.take(ndata)?.to_vec();
        let mut symbols = BTreeMap::new();
        for _ in 0..nsyms {
            let name = r.name()?;
            let section = match r.u8()? {
                0 => Section::Text,
                1 => Section::Data,
                tag => return Err(ObjectError::BadSection(tag)),
            };
            let address = r.u64()?;
            symbols.insert(name, Symbol { section, address });
        }
        let mut procedures = Vec::with_capacity(nprocs.min(1 << 16));
        for _ in 0..nprocs {
            let name = r.name()?;
            let start = r.u32()?;
            let end = r.u32()?;
            procedures.push(Procedure { name, range: start..end });
        }
        Ok(Program::from_parts(code, data, symbols, procedures, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;

    fn sample() -> Program {
        assemble(
            r#"
            .data
            tab: .quad 1, 2, f
            msg: .asciiz "hi"
            .text
            .proc main
            main:
                la  r1, tab
                ldd r2, 0(r1)
                call f
                sys exit
            .endp
            .proc f
            f:
                add v0, a0, a0
                ret
            .endp
            "#,
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.to_bytes();
        let q = Program::from_bytes(&bytes).unwrap();
        assert_eq!(p.code(), q.code());
        assert_eq!(p.data(), q.data());
        assert_eq!(p.symbols(), q.symbols());
        assert_eq!(p.procedures(), q.procedures());
        assert_eq!(p.entry(), q.entry());
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(Program::from_bytes(b"ELF!rest").unwrap_err(), ObjectError::BadMagic);
        assert_eq!(Program::from_bytes(b"").unwrap_err(), ObjectError::Truncated);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = sample().to_bytes();
        for cut in 1..bytes.len() {
            let err = Program::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ObjectError::Truncated | ObjectError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_corrupt_instruction() {
        let mut bytes = sample().to_bytes();
        // Overwrite the first code word with an invalid opcode (63).
        let code_off = 4 + 4 + 4 + 4 + 4 + 4;
        bytes[code_off..code_off + 4].copy_from_slice(&(63u32 << 26).to_le_bytes());
        assert!(matches!(Program::from_bytes(&bytes), Err(ObjectError::BadInstruction(_))));
    }

    #[test]
    fn error_display() {
        assert!(ObjectError::BadMagic.to_string().contains("magic"));
        assert!(ObjectError::Truncated.to_string().contains("truncated"));
        assert!(ObjectError::BadSection(7).to_string().contains("7"));
    }
}
