//! The two-pass assembler.
//!
//! Pass 1 scans the source, sizing every item (pseudo-instructions expand to
//! a value-dependent but deterministic number of words) and collecting
//! labels. Pass 2 expands instructions with all symbols resolved.

use std::collections::BTreeMap;

use vp_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg, Syscall};

use crate::error::AsmError;
use crate::program::{Procedure, Program, Section, Symbol, DATA_BASE};

/// Assembles VP64 assembly source into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based source line for syntax
/// errors, unknown mnemonics, duplicate or undefined labels, operands out of
/// range, and unterminated `.proc` regions.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), vp_asm::AsmError> {
/// let program = vp_asm::assemble(
///     r#"
///     .text
///     .proc main
///     main:
///         li   r1, 42
///         sys  exit
///     .endp
///     "#,
/// )?;
/// assert_eq!(program.procedures()[0].name, "main");
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().run(source)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Text,
    Data,
}

struct PendingInstr {
    line: usize,
    mnemonic: String,
    operands: Vec<String>,
    index: u32,
}

struct DataFixup {
    line: usize,
    offset: usize,
    label: String,
}

struct Assembler {
    symbols: BTreeMap<String, Symbol>,
    data: Vec<u8>,
    pending: Vec<PendingInstr>,
    fixups: Vec<DataFixup>,
    procedures: Vec<Procedure>,
    open_proc: Option<(usize, String, u32)>,
    seg: Seg,
    text_len: u32,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            symbols: BTreeMap::new(),
            data: Vec::new(),
            pending: Vec::new(),
            fixups: Vec::new(),
            procedures: Vec::new(),
            open_proc: None,
            seg: Seg::Text,
            text_len: 0,
        }
    }

    fn run(mut self, source: &str) -> Result<Program, AsmError> {
        // Pass 1: labels, sizes, raw data bytes.
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let stripped = strip_comment(raw).trim();
            if stripped.is_empty() {
                continue;
            }
            self.statement(line, stripped)?;
        }
        if let Some((line, name, _)) = &self.open_proc {
            return Err(AsmError::new(*line, format!("procedure `{name}` has no .endp")));
        }

        // Data fixups that reference labels (e.g. jump tables).
        for fix in std::mem::take(&mut self.fixups) {
            let sym = self.symbols.get(&fix.label).ok_or_else(|| {
                AsmError::new(fix.line, format!("undefined label `{}`", fix.label))
            })?;
            self.data[fix.offset..fix.offset + 8].copy_from_slice(&sym.address.to_le_bytes());
        }

        // Pass 2: expand instructions.
        let mut code = Vec::with_capacity(self.text_len as usize);
        for item in std::mem::take(&mut self.pending) {
            let before = code.len() as u32;
            self.expand(&item, &mut code)?;
            let emitted = code.len() as u32 - before;
            debug_assert_eq!(
                emitted,
                instr_size(&item.mnemonic, &item.operands),
                "pass-1 size disagrees with pass-2 emission for `{}` (line {})",
                item.mnemonic,
                item.line
            );
        }

        let entry = match self.symbols.get("main") {
            Some(Symbol { section: Section::Text, address }) => (address / 4) as u32,
            Some(_) => return Err(AsmError::new(0, "label `main` is not in .text".to_string())),
            None => 0,
        };

        Ok(Program::from_parts(code, self.data, self.symbols, self.procedures, entry))
    }

    fn statement(&mut self, line: usize, stmt: &str) -> Result<(), AsmError> {
        // A statement may begin with one or more labels.
        let mut rest = stmt;
        while let Some(colon) = find_label(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            self.define_label(line, label)?;
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }
        if let Some(directive) = rest.strip_prefix('.') {
            return self.directive(line, directive);
        }
        self.instruction(line, rest)
    }

    fn define_label(&mut self, line: usize, label: &str) -> Result<(), AsmError> {
        if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(AsmError::new(line, format!("invalid label `{label}`")));
        }
        let sym = match self.seg {
            Seg::Text => Symbol { section: Section::Text, address: u64::from(self.text_len) * 4 },
            Seg::Data => {
                Symbol { section: Section::Data, address: DATA_BASE + self.data.len() as u64 }
            }
        };
        match self.symbols.insert(label.to_owned(), sym) {
            // `.proc f` followed by `f:` at the same address is idiomatic;
            // only reject labels that would resolve differently.
            Some(prev) if prev != sym => {
                Err(AsmError::new(line, format!("duplicate label `{label}`")))
            }
            _ => Ok(()),
        }
    }

    fn directive(&mut self, line: usize, directive: &str) -> Result<(), AsmError> {
        let (name, args) = match directive.find(char::is_whitespace) {
            Some(i) => (&directive[..i], directive[i..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => self.seg = Seg::Text,
            "data" => self.seg = Seg::Data,
            "global" => {} // accepted for familiarity; every label is visible
            "proc" => {
                if self.open_proc.is_some() {
                    return Err(AsmError::new(line, "nested .proc".to_string()));
                }
                if args.is_empty() {
                    return Err(AsmError::new(line, ".proc needs a name".to_string()));
                }
                if self.seg != Seg::Text {
                    return Err(AsmError::new(line, ".proc outside .text".to_string()));
                }
                self.define_label(line, args)?;
                self.open_proc = Some((line, args.to_owned(), self.text_len));
            }
            "endp" => {
                let (_, name, start) = self
                    .open_proc
                    .take()
                    .ok_or_else(|| AsmError::new(line, ".endp without .proc".to_string()))?;
                self.procedures.push(Procedure { name, range: start..self.text_len });
            }
            "byte" | "half" | "word" | "quad" => {
                self.require_data(line, name)?;
                let width = match name {
                    "byte" => 1,
                    "half" => 2,
                    "word" => 4,
                    _ => 8,
                };
                for arg in split_operands(args) {
                    if let Ok(v) = parse_int(&arg) {
                        let bytes = (v as u64).to_le_bytes();
                        self.data.extend_from_slice(&bytes[..width]);
                    } else if width == 8 && is_label_name(&arg) {
                        self.fixups.push(DataFixup { line, offset: self.data.len(), label: arg });
                        self.data.extend_from_slice(&[0u8; 8]);
                    } else {
                        return Err(AsmError::new(line, format!("bad .{name} operand `{arg}`")));
                    }
                }
            }
            "space" => {
                self.require_data(line, name)?;
                let n = parse_int(args)
                    .map_err(|_| AsmError::new(line, format!("bad .space size `{args}`")))?;
                if n < 0 {
                    return Err(AsmError::new(line, "negative .space size".to_string()));
                }
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
            }
            "align" => {
                self.require_data(line, name)?;
                let n = parse_int(args)
                    .map_err(|_| AsmError::new(line, format!("bad .align operand `{args}`")))?;
                if n <= 0 || (n & (n - 1)) != 0 {
                    return Err(AsmError::new(line, ".align needs a power of two".to_string()));
                }
                while !self.data.len().is_multiple_of(n as usize) {
                    self.data.push(0);
                }
            }
            "ascii" | "asciiz" => {
                self.require_data(line, name)?;
                let text = parse_string(args)
                    .ok_or_else(|| AsmError::new(line, format!("bad string literal `{args}`")))?;
                self.data.extend_from_slice(text.as_bytes());
                if name == "asciiz" {
                    self.data.push(0);
                }
            }
            other => return Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn require_data(&self, line: usize, directive: &str) -> Result<(), AsmError> {
        if self.seg != Seg::Data {
            return Err(AsmError::new(line, format!(".{directive} outside .data")));
        }
        Ok(())
    }

    fn instruction(&mut self, line: usize, text: &str) -> Result<(), AsmError> {
        if self.seg != Seg::Text {
            return Err(AsmError::new(line, "instruction outside .text".to_string()));
        }
        let (mnemonic, args) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let operands = split_operands(args);
        let size = instr_size(mnemonic, &operands);
        if size == 0 {
            return Err(AsmError::new(line, format!("unknown mnemonic `{mnemonic}`")));
        }
        self.pending.push(PendingInstr {
            line,
            mnemonic: mnemonic.to_owned(),
            operands,
            index: self.text_len,
        });
        self.text_len += size;
        Ok(())
    }

    fn expand(&self, item: &PendingInstr, out: &mut Vec<Instruction>) -> Result<(), AsmError> {
        let line = item.line;
        let ops = &item.operands;
        let m = item.mnemonic.as_str();
        let nargs = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError::new(line, format!("`{m}` expects {n} operands, got {}", ops.len())))
            }
        };
        let reg = |i: usize| parse_reg(&ops[i]).map_err(|e| AsmError::new(line, e));

        if let Some(op) = alu_mnemonic(m) {
            nargs(3)?;
            out.push(Instruction::Alu { op, rd: reg(0)?, rs: reg(1)?, rt: reg(2)? });
            return Ok(());
        }
        if let Some(op) = alu_imm_mnemonic(m) {
            nargs(3)?;
            let imm = parse_i16(&ops[2]).map_err(|e| AsmError::new(line, e))?;
            out.push(Instruction::AluImm { op, rd: reg(0)?, rs: reg(1)?, imm });
            return Ok(());
        }
        if let Some(op) = fp_mnemonic(m) {
            if op.uses_rt() {
                nargs(3)?;
                out.push(Instruction::Fp { op, rd: reg(0)?, rs: reg(1)?, rt: reg(2)? });
            } else {
                nargs(2)?;
                out.push(Instruction::Fp { op, rd: reg(0)?, rs: reg(1)?, rt: Reg::R0 });
            }
            return Ok(());
        }
        if let Some((width, signed)) = load_mnemonic(m) {
            nargs(2)?;
            let (offset, base) = parse_mem(&ops[1]).map_err(|e| AsmError::new(line, e))?;
            let rd = reg(0)?;
            out.push(if signed {
                Instruction::LoadSigned { rd, base, offset, width }
            } else {
                Instruction::Load { rd, base, offset, width }
            });
            return Ok(());
        }
        if let Some(width) = store_mnemonic(m) {
            nargs(2)?;
            let (offset, base) = parse_mem(&ops[1]).map_err(|e| AsmError::new(line, e))?;
            out.push(Instruction::Store { rs: reg(0)?, base, offset, width });
            return Ok(());
        }
        if let Some(cond) = branch_mnemonic(m) {
            nargs(3)?;
            let disp = self.branch_disp(line, &ops[2], item.index)?;
            out.push(Instruction::Branch { cond, rs: reg(0)?, rt: reg(1)?, disp });
            return Ok(());
        }

        match m {
            "nop" => {
                nargs(0)?;
                out.push(Instruction::Nop);
            }
            "lui" => {
                nargs(2)?;
                let imm = parse_int(&ops[1]).map_err(|e| AsmError::new(line, e))?;
                if !(0..=0xffff).contains(&imm) {
                    return Err(AsmError::new(line, format!("lui immediate {imm} out of range")));
                }
                out.push(Instruction::Lui { rd: reg(0)?, imm: imm as u16 });
            }
            "j" | "b" => {
                nargs(1)?;
                out.push(Instruction::Jump { target: self.jump_target(line, &ops[0])? });
            }
            "jal" | "call" => {
                nargs(1)?;
                out.push(Instruction::Jal { target: self.jump_target(line, &ops[0])? });
            }
            "jr" => {
                nargs(1)?;
                out.push(Instruction::Jr { rs: reg(0)? });
            }
            "ret" => {
                nargs(0)?;
                out.push(Instruction::Jr { rs: Reg::RA });
            }
            "jalr" => {
                nargs(2)?;
                out.push(Instruction::Jalr { rd: reg(0)?, rs: reg(1)? });
            }
            "sys" => {
                nargs(1)?;
                let call = syscall_mnemonic(&ops[0])
                    .ok_or_else(|| AsmError::new(line, format!("unknown syscall `{}`", ops[0])))?;
                out.push(Instruction::Sys { call });
            }
            "mov" => {
                nargs(2)?;
                out.push(Instruction::AluImm { op: AluOp::Add, rd: reg(0)?, rs: reg(1)?, imm: 0 });
            }
            "li" => {
                nargs(2)?;
                let value = parse_int(&ops[1]).map_err(|e| AsmError::new(line, e))?;
                emit_li(reg(0)?, value, out);
            }
            "la" => {
                nargs(2)?;
                let sym = self
                    .symbols
                    .get(ops[1].as_str())
                    .ok_or_else(|| AsmError::new(line, format!("undefined label `{}`", ops[1])))?;
                emit_load_u32(reg(0)?, sym.address as u32, out);
            }
            "bz" | "bnz" => {
                nargs(2)?;
                let disp = self.branch_disp(line, &ops[1], item.index)?;
                let cond = if m == "bz" { BranchCond::Eq } else { BranchCond::Ne };
                out.push(Instruction::Branch { cond, rs: reg(0)?, rt: Reg::R0, disp });
            }
            other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }

    fn jump_target(&self, line: usize, op: &str) -> Result<u32, AsmError> {
        let idx = if let Ok(v) = parse_int(op) {
            v
        } else {
            let sym = self
                .symbols
                .get(op)
                .ok_or_else(|| AsmError::new(line, format!("undefined label `{op}`")))?;
            if sym.section != Section::Text {
                return Err(AsmError::new(line, format!("jump target `{op}` is not code")));
            }
            (sym.address / 4) as i64
        };
        if !(0..(1 << 26)).contains(&idx) {
            return Err(AsmError::new(line, format!("jump target {idx} out of range")));
        }
        Ok(idx as u32)
    }

    fn branch_disp(&self, line: usize, op: &str, index: u32) -> Result<i16, AsmError> {
        let disp = if let Ok(v) = parse_int(op) {
            v
        } else {
            let sym = self
                .symbols
                .get(op)
                .ok_or_else(|| AsmError::new(line, format!("undefined label `{op}`")))?;
            if sym.section != Section::Text {
                return Err(AsmError::new(line, format!("branch target `{op}` is not code")));
            }
            (sym.address / 4) as i64 - i64::from(index) - 1
        };
        i16::try_from(disp)
            .map_err(|_| AsmError::new(line, format!("branch displacement {disp} out of range")))
    }
}

/// Number of instruction words a mnemonic expands to; 0 for unknown.
fn instr_size(mnemonic: &str, operands: &[String]) -> u32 {
    match mnemonic {
        "li" => match operands.get(1).and_then(|s| parse_int(s).ok()) {
            Some(v) => li_size(v),
            None => 1, // operand error surfaces in pass 2
        },
        "la" => 2,
        _ if alu_mnemonic(mnemonic).is_some()
            || alu_imm_mnemonic(mnemonic).is_some()
            || fp_mnemonic(mnemonic).is_some()
            || load_mnemonic(mnemonic).is_some()
            || store_mnemonic(mnemonic).is_some()
            || branch_mnemonic(mnemonic).is_some() =>
        {
            1
        }
        "nop" | "lui" | "j" | "b" | "jal" | "call" | "jr" | "ret" | "jalr" | "sys" | "mov"
        | "bz" | "bnz" => 1,
        _ => 0,
    }
}

fn li_size(v: i64) -> u32 {
    if i16::try_from(v).is_ok() {
        1
    } else if u32::try_from(v as u64).is_ok() {
        2
    } else {
        6
    }
}

/// Emits the canonical `li` expansion. Logic-immediate operations
/// zero-extend their immediate (see the emulator semantics), which the
/// `lui`/`ori` pairs rely on.
fn emit_li(rd: Reg, value: i64, out: &mut Vec<Instruction>) {
    if let Ok(imm) = i16::try_from(value) {
        out.push(Instruction::AluImm { op: AluOp::Add, rd, rs: Reg::R0, imm });
    } else if let Ok(v) = u32::try_from(value as u64) {
        emit_load_u32(rd, v, out);
    } else {
        let v = value as u64;
        out.push(Instruction::Lui { rd, imm: (v >> 48) as u16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: ((v >> 32) & 0xffff) as u16 as i16,
        });
        out.push(Instruction::AluImm { op: AluOp::Sll, rd, rs: rd, imm: 16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: ((v >> 16) & 0xffff) as u16 as i16,
        });
        out.push(Instruction::AluImm { op: AluOp::Sll, rd, rs: rd, imm: 16 });
        out.push(Instruction::AluImm {
            op: AluOp::Or,
            rd,
            rs: rd,
            imm: (v & 0xffff) as u16 as i16,
        });
    }
}

fn emit_load_u32(rd: Reg, v: u32, out: &mut Vec<Instruction>) {
    out.push(Instruction::Lui { rd, imm: (v >> 16) as u16 });
    out.push(Instruction::AluImm { op: AluOp::Or, rd, rs: rd, imm: (v & 0xffff) as u16 as i16 });
}

fn alu_mnemonic(m: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn alu_imm_mnemonic(m: &str) -> Option<AluOp> {
    let base = m.strip_suffix('i')?;
    // `sltui` etc. also end in `i` after stripping; match on the base name.
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == base)
}

fn fp_mnemonic(m: &str) -> Option<FpOp> {
    FpOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn branch_mnemonic(m: &str) -> Option<BranchCond> {
    BranchCond::ALL.iter().copied().find(|c| c.mnemonic() == m)
}

fn syscall_mnemonic(m: &str) -> Option<Syscall> {
    Syscall::ALL.iter().copied().find(|c| c.mnemonic() == m)
}

fn load_mnemonic(m: &str) -> Option<(MemWidth, bool)> {
    let rest = m.strip_prefix("ld")?;
    let (width_str, signed) = match rest.strip_suffix('s') {
        Some(w) if !w.is_empty() => (w, true),
        _ => (rest, false),
    };
    let width = MemWidth::ALL.iter().copied().find(|w| w.suffix() == width_str)?;
    if signed && width == MemWidth::D {
        return None;
    }
    Some((width, signed))
}

fn store_mnemonic(m: &str) -> Option<MemWidth> {
    let rest = m.strip_prefix("st")?;
    MemWidth::ALL.iter().copied().find(|w| w.suffix() == rest)
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals in .ascii directives.
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' | ';' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Finds the byte offset of a label-terminating `:` at the start of `s`.
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if !head.is_empty() && head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(colon)
    } else {
        None
    }
}

fn split_operands(args: &str) -> Vec<String> {
    if args.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in args.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth = depth.saturating_sub(1),
            ',' if depth == 0 && !in_str => {
                out.push(args[start..i].trim().to_owned());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(args[start..].trim().to_owned());
    out
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    s.parse::<Reg>().map_err(|e| e.to_string())
}

fn parse_i16(s: &str) -> Result<i16, String> {
    let v = parse_int(s)?;
    // Allow the unsigned 16-bit spelling for logic immediates (0..=0xffff).
    if let Ok(x) = i16::try_from(v) {
        return Ok(x);
    }
    if (0..=0xffff).contains(&v) {
        return Ok(v as u16 as i16);
    }
    Err(format!("immediate {v} out of 16-bit range"))
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    if let Some(ch) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        let c = match ch {
            "\\n" => '\n',
            "\\t" => '\t',
            "\\0" => '\0',
            "\\\\" => '\\',
            _ => {
                let mut it = ch.chars();
                let c = it.next().ok_or_else(|| format!("empty char literal `{s}`"))?;
                if it.next().is_some() {
                    return Err(format!("bad char literal `{s}`"));
                }
                c
            }
        };
        return Ok(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    // Values are 64-bit bit patterns: decimals up to u64::MAX are accepted
    // and wrap into the signed representation (e.g. `.quad` of a large
    // unsigned constant).
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad integer `{s}`"))? as i64
    } else {
        body.parse::<u64>().map_err(|_| format!("bad integer `{s}`"))? as i64
    };
    Ok(if neg { value.wrapping_neg() } else { value })
}

fn parse_mem(s: &str) -> Result<(i16, Reg), String> {
    let open = s.find('(').ok_or_else(|| format!("expected `offset(base)`, got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("missing `)` in `{s}`"))?;
    if close != s.len() - 1 || close <= open {
        return Err(format!("malformed memory operand `{s}`"));
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() { 0 } else { parse_i16(off_str)? };
    let base = parse_reg(s[open + 1..close].trim())?;
    Ok((offset, base))
}

fn parse_string(s: &str) -> Option<String> {
    let inner = s.trim().strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.chars().next().unwrap().is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program() {
        let p = assemble(
            r#"
            .text
            .proc main
            main:
                addi r1, r0, 5      # r1 = 5
                add  r2, r1, r1
                sys  exit
            .endp
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.procedures().len(), 1);
        assert_eq!(
            p.code()[0],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::R1, rs: Reg::R0, imm: 5 }
        );
    }

    #[test]
    fn branch_label_resolution() {
        let p = assemble(
            r#"
            .text
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                sys exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.code()[1],
            Instruction::Branch { cond: BranchCond::Ne, rs: Reg::R1, rt: Reg::R0, disp: -2 }
        );
    }

    #[test]
    fn forward_branch_and_jump() {
        let p = assemble(
            r#"
            .text
                beq r0, r0, done
                nop
            done:
                j end
            end:
                sys exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::Branch { cond: BranchCond::Eq, rs: Reg::R0, rt: Reg::R0, disp: 1 }
        );
        assert_eq!(p.code()[2], Instruction::Jump { target: 3 });
    }

    #[test]
    fn li_expansions() {
        let p = assemble(".text\nli r1, 7\n").unwrap();
        assert_eq!(p.len(), 1);
        let p = assemble(".text\nli r1, 0x12345\n").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.code()[0], Instruction::Lui { rd: Reg::R1, imm: 0x1 });
        let p = assemble(".text\nli r1, 0x123456789abcdef0\n").unwrap();
        assert_eq!(p.len(), 6);
        let p = assemble(".text\nli r1, -70000\n").unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn data_directives_and_la() {
        let p = assemble(
            r#"
            .data
            table:
                .quad 1, 2, 3
            msg:
                .asciiz "hi\n"
            buf:
                .space 16
            .text
            main:
                la r1, table
                ldd r2, 8(r1)
                sys exit
            "#,
        )
        .unwrap();
        assert_eq!(
            &p.data()[..24],
            {
                let mut v = Vec::new();
                for x in [1u64, 2, 3] {
                    v.extend_from_slice(&x.to_le_bytes());
                }
                v
            }
            .as_slice()
        );
        assert_eq!(&p.data()[24..28], b"hi\n\0");
        assert_eq!(p.data().len(), 28 + 16);
        let sym = p.symbol("table").unwrap();
        assert_eq!(sym.address, DATA_BASE);
        assert_eq!(p.code()[0], Instruction::Lui { rd: Reg::R1, imm: (DATA_BASE >> 16) as u16 });
    }

    #[test]
    fn quad_label_fixup_jump_table() {
        let p = assemble(
            r#"
            .data
            jumptab:
                .quad handler_a, handler_b
            .text
            main:
                sys exit
            handler_a:
                nop
            handler_b:
                nop
            "#,
        )
        .unwrap();
        let a = u64::from_le_bytes(p.data()[0..8].try_into().unwrap());
        let b = u64::from_le_bytes(p.data()[8..16].try_into().unwrap());
        assert_eq!(a, 4); // handler_a at instruction 1 -> byte address 4
        assert_eq!(b, 8);
    }

    #[test]
    fn errors() {
        assert!(assemble(".text\nfrobnicate r1\n").is_err());
        assert!(assemble(".text\nadd r1, r2\n").is_err()); // arity
        assert!(assemble(".text\nbeq r1, r2, nowhere\n").is_err()); // undefined
        assert!(assemble(".text\nx: nop\nx: nop\n").is_err()); // duplicate
        assert!(assemble(".text\n.proc f\nnop\n").is_err()); // unterminated
        assert!(assemble(".text\n.byte 1\n").is_err()); // data directive in text
        assert!(assemble(".data\nnop\n").is_err()); // instr in data
        assert!(assemble(".text\naddi r1, r0, 99999\n").is_err()); // imm range
        let err = assemble(".text\nbad r1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn pseudos() {
        let p = assemble(
            r#"
            .text
            main:
                mov r2, r1
                bz  r2, out
                bnz r2, out
                call f
                ret
            out:
                sys exit
            f:
                ret
            "#,
        )
        .unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::R2, rs: Reg::R1, imm: 0 }
        );
        assert_eq!(p.code()[4], Instruction::Jr { rs: Reg::RA });
        assert!(matches!(p.code()[3], Instruction::Jal { .. }));
    }

    #[test]
    fn comments_and_strings() {
        let p = assemble(".data\nmsg: .ascii \"a#b;c\" # trailing\n.text\nnop ; c2\n").unwrap();
        assert_eq!(p.data(), b"a#b;c");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entry_is_main() {
        let p = assemble(".text\nf: nop\nmain: sys exit\n").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn unsigned_logic_immediates() {
        let p = assemble(".text\nori r1, r1, 0xffff\n").unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::AluImm { op: AluOp::Or, rd: Reg::R1, rs: Reg::R1, imm: -1 }
        );
    }

    #[test]
    fn hex_and_char_literals() {
        let p = assemble(".text\nli r1, 0xff\nli r2, 'A'\nli r3, '\\n'\n").unwrap();
        assert_eq!(
            p.code()[0],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::R1, rs: Reg::R0, imm: 255 }
        );
        assert_eq!(
            p.code()[1],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::R2, rs: Reg::R0, imm: 65 }
        );
        assert_eq!(
            p.code()[2],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::R3, rs: Reg::R0, imm: 10 }
        );
    }
}
