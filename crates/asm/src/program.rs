//! The [`Program`] produced by the assembler: code, initial data image,
//! symbol table and procedure table.
//!
//! The procedure table plays the role of the symbol-table information ATOM
//! used on Alpha executables: it is what lets the instrumentation layer
//! iterate `program → procedures → basic blocks → instructions`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use vp_isa::{Instruction, INSTR_BYTES};

/// Byte address where the data segment is loaded in the emulator's memory.
/// Text addresses (as produced by `jal`/`jr` link values and `la` on code
/// labels) live below this base, so the two never collide.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Which segment a symbol points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Code: symbol value is an instruction *byte* address (`index * 4`).
    Text,
    /// Data: symbol value is an absolute byte address (`DATA_BASE + off`).
    Data,
}

/// A labelled location in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symbol {
    /// Segment the symbol lives in.
    pub section: Section,
    /// Absolute byte address (see [`Section`] for the address space).
    pub address: u64,
}

/// A procedure: a named, contiguous range of instructions, declared in
/// assembly with `.proc name` / `.endp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Instruction-index range `[start, end)` within [`Program::code`].
    pub range: Range<u32>,
}

impl Procedure {
    /// Whether the given instruction index belongs to this procedure.
    pub fn contains(&self, index: u32) -> bool {
        self.range.contains(&index)
    }

    /// Entry byte address of the procedure.
    pub fn entry_address(&self) -> u64 {
        u64::from(self.range.start) * INSTR_BYTES
    }
}

/// An assembled program: the executable object the emulator loads and the
/// instrumentation layer queries.
#[derive(Debug, Clone, Default)]
pub struct Program {
    code: Vec<Instruction>,
    data: Vec<u8>,
    symbols: BTreeMap<String, Symbol>,
    procedures: Vec<Procedure>,
    entry: u32,
}

impl Program {
    /// Builds a program from raw parts. Intended for the assembler and for
    /// program transformers (e.g. the specializer); most users obtain
    /// programs from [`vp_asm::assemble`](crate::assemble).
    pub fn from_parts(
        code: Vec<Instruction>,
        data: Vec<u8>,
        symbols: BTreeMap<String, Symbol>,
        procedures: Vec<Procedure>,
        entry: u32,
    ) -> Program {
        Program { code, data, symbols, procedures, entry }
    }

    /// The instruction sequence (index = word address / 4).
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Initial data image, loaded at [`DATA_BASE`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Symbol table (labels).
    pub fn symbols(&self) -> &BTreeMap<String, Symbol> {
        &self.symbols
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// Declared procedures, in program order.
    pub fn procedures(&self) -> &[Procedure] {
        &self.procedures
    }

    /// Finds the procedure containing an instruction index.
    pub fn procedure_at(&self, index: u32) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.contains(index))
    }

    /// Finds a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// Entry instruction index (the `main` label if present, else 0).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Returns a copy with one instruction replaced (used by program
    /// transformers). Panics if `index` is out of range.
    pub fn with_replaced(&self, index: usize, instr: Instruction) -> Program {
        let mut p = self.clone();
        p.code[index] = instr;
        p
    }

    /// Encodes the code section to binary words (the on-disk object format).
    pub fn encode_text(&self) -> Vec<u32> {
        self.code.iter().map(|i| i.encode()).collect()
    }
}

impl fmt::Display for Program {
    /// Disassembly listing with procedure headers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, instr) in self.code.iter().enumerate() {
            if let Some(p) = self.procedures.iter().find(|p| p.range.start == idx as u32) {
                writeln!(f, "{}:", p.name)?;
            }
            writeln!(f, "  {idx:6}: {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::Reg;

    fn tiny() -> Program {
        let code = vec![
            Instruction::AluImm { op: vp_isa::AluOp::Add, rd: Reg::R1, rs: Reg::R0, imm: 1 },
            Instruction::Jr { rs: Reg::RA },
        ];
        let procs = vec![Procedure { name: "main".into(), range: 0..2 }];
        Program::from_parts(code, vec![1, 2, 3], BTreeMap::new(), procs, 0)
    }

    #[test]
    fn accessors() {
        let p = tiny();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.data(), &[1, 2, 3]);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.procedure("main").unwrap().range, 0..2);
        assert_eq!(p.procedure_at(1).unwrap().name, "main");
        assert!(p.procedure_at(2).is_none());
    }

    #[test]
    fn procedure_entry_address() {
        let p = Procedure { name: "f".into(), range: 5..9 };
        assert_eq!(p.entry_address(), 20);
        assert!(p.contains(5));
        assert!(p.contains(8));
        assert!(!p.contains(9));
    }

    #[test]
    fn with_replaced() {
        let p = tiny();
        let q = p.with_replaced(0, Instruction::Nop);
        assert_eq!(q.code()[0], Instruction::Nop);
        assert_eq!(p.code()[0], tiny().code()[0]);
    }

    #[test]
    fn display_listing() {
        let text = tiny().to_string();
        assert!(text.contains("main:"));
        assert!(text.contains("jr r30"));
    }
}
