//! Property test: the disassembler's output is valid assembler input and
//! round-trips to the identical instruction (`assemble ∘ disassemble = id`
//! over the printable instruction space).

use proptest::prelude::*;
use vp_isa::{AluOp, BranchCond, FpOp, Instruction, MemWidth, Reg, Syscall};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    (0usize..4).prop_map(|i| MemWidth::ALL[i])
}

/// Instructions whose textual form is accepted by the assembler in
/// isolation (branch displacements and jump targets are written as raw
/// numbers, which the assembler accepts as-is; jump targets must stay in
/// range of the 3-instruction harness program, so we pin them small).
fn arb_printable_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        ((0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i]), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| Instruction::Alu { op, rd, rs, rt }),
        (
            (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i]),
            arb_reg(),
            arb_reg(),
            any::<i16>()
        )
            .prop_map(|(op, rd, rs, imm)| Instruction::AluImm { op, rd, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        ((0usize..FpOp::ALL.len()).prop_map(|i| FpOp::ALL[i]), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| {
                // Conversions print without rt; normalize it to r0 so the
                // round-trip comparison is well-defined.
                let rt = if op.uses_rt() { rt } else { Reg::R0 };
                Instruction::Fp { op, rd, rs, rt }
            }),
        (arb_reg(), arb_reg(), any::<i16>(), arb_width())
            .prop_map(|(rd, base, offset, width)| Instruction::Load { rd, base, offset, width }),
        (arb_reg(), arb_reg(), any::<i16>(), (0usize..3).prop_map(|i| MemWidth::ALL[i])).prop_map(
            |(rd, base, offset, width)| Instruction::LoadSigned { rd, base, offset, width }
        ),
        (arb_reg(), arb_reg(), any::<i16>(), arb_width())
            .prop_map(|(rs, base, offset, width)| Instruction::Store { rs, base, offset, width }),
        (
            (0usize..BranchCond::ALL.len()).prop_map(|i| BranchCond::ALL[i]),
            arb_reg(),
            arb_reg(),
            any::<i16>()
        )
            .prop_map(|(cond, rs, rt, disp)| Instruction::Branch { cond, rs, rt, disp }),
        (0u32..3).prop_map(|target| Instruction::Jump { target }),
        (0u32..3).prop_map(|target| Instruction::Jal { target }),
        arb_reg().prop_map(|rs| Instruction::Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
        (0usize..Syscall::ALL.len()).prop_map(|i| Instruction::Sys { call: Syscall::ALL[i] }),
    ]
}

proptest! {
    #[test]
    fn disassembly_reassembles_identically(instr in arb_printable_instruction()) {
        let source = format!(".text\n{instr}\nnop\nnop\n");
        let program = vp_asm::assemble(&source)
            .unwrap_or_else(|e| panic!("`{instr}` does not reassemble: {e}"));
        prop_assert_eq!(program.code()[0], instr, "text was `{}`", instr);
    }

    /// Whole-program round trip: disassembling an assembled program and
    /// reassembling the listing body reproduces the code section.
    #[test]
    fn listing_round_trips(instrs in prop::collection::vec(arb_printable_instruction(), 1..20)) {
        // Branches/jumps with arbitrary displacements may leave the text
        // section at run time, but assembly only requires well-formed text.
        let body: String = instrs.iter().map(|i| format!("{i}\n")).collect();
        // Pad so small jump targets stay in range.
        let source = format!(".text\n{body}nop\nnop\nnop\n");
        let program = vp_asm::assemble(&source).expect("assembles");
        prop_assert_eq!(&program.code()[..instrs.len()], instrs.as_slice());
    }
}
