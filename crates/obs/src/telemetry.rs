//! The schema-versioned `telemetry.jsonl` record format.
//!
//! One JSON object per line, one line per run / phase / workload. Every
//! record carries `schema`, `kind` and `name` first so consumers can
//! filter without knowing a kind's payload. Timings are inherently
//! volatile, so [`mask_volatile`] replaces them with a placeholder to
//! make records golden-testable while keeping the deterministic fields
//! (event counts, instruction totals, fractions) byte-exact.

use crate::json::Json;

/// Version of the telemetry record layout. Bump when a field is renamed,
/// removed, or changes meaning; adding fields is backward compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Field names whose values vary run-to-run (timings and rates derived
/// from them). [`mask_volatile`] replaces these everywhere in a record.
pub const VOLATILE_KEYS: [&str; 10] = [
    "wall_ns",
    "baseline_wall_ns",
    "median_wall_ns",
    "warmup_wall_ns",
    "busy_ns",
    "wait_ns",
    "phase_ns",
    "events_per_sec",
    "slowdown",
    "nanos_per_event",
];

/// Builds a telemetry record: `schema`, `kind` and `name` first, then the
/// caller's payload fields in the order given.
pub fn record(kind: &str, name: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![
        ("schema", Json::U64(SCHEMA_VERSION)),
        ("kind", Json::Str(kind.to_string())),
        ("name", Json::Str(name.to_string())),
    ];
    all.extend(fields);
    Json::obj(all)
}

/// Renders records as JSONL (one compact object per line, trailing
/// newline).
pub fn to_jsonl(records: &[Json]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.render());
        out.push('\n');
    }
    out
}

/// Parses a JSONL document, skipping blank lines. Fails on the first
/// malformed line, or on a record whose `schema` is newer than this
/// library understands.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    let parsed = parse_jsonl_lenient(text)?;
    match parsed.dropped_tail {
        Some(reason) => Err(reason),
        None => Ok(parsed.records),
    }
}

/// Result of [`parse_jsonl_lenient`]: the records that parsed, plus the
/// parse error of a dropped final line, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// Records of every line up to (not including) a corrupt final line.
    pub records: Vec<Json>,
    /// `Some(parse error)` when the final line was malformed and dropped —
    /// the signature of a write torn by a crash mid-append.
    pub dropped_tail: Option<String>,
}

/// [`parse_jsonl`] that tolerates a torn final line: a malformed *last*
/// line is dropped (and reported) instead of failing the whole document,
/// so a telemetry file truncated by a crash still yields every complete
/// record. Malformed lines anywhere else are still an error.
pub fn parse_jsonl_lenient(text: &str) -> Result<LenientParse, String> {
    let mut records = Vec::new();
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, line)| !line.trim().is_empty()).collect();
    let last = lines.len().saturating_sub(1);
    for (at, (i, line)) in lines.iter().enumerate() {
        let parsed = match Json::parse(line) {
            Ok(rec) => match rec.get("schema").and_then(Json::as_u64) {
                Some(version) if version > SCHEMA_VERSION => {
                    Err(format!("schema {version} is newer than supported {SCHEMA_VERSION}"))
                }
                _ => Ok(rec),
            },
            Err(e) => Err(e),
        };
        match parsed {
            Ok(rec) => records.push(rec),
            Err(e) if at == last => {
                return Ok(LenientParse {
                    records,
                    dropped_tail: Some(format!("line {}: {e}", i + 1)),
                })
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(LenientParse { records, dropped_tail: None })
}

/// Deep-copies a record with every [`VOLATILE_KEYS`] field's value
/// replaced by the string `"<volatile>"`, leaving deterministic fields
/// untouched.
pub fn mask_volatile(json: &Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(key, value)| {
                    let masked = if VOLATILE_KEYS.contains(&key.as_str()) {
                        Json::Str("<volatile>".to_string())
                    } else {
                        mask_volatile(value)
                    };
                    (key.clone(), masked)
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(mask_volatile).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_leads_with_schema_kind_name() {
        let rec = record("workload", "loop_inv", vec![("instructions", Json::U64(9))]);
        assert_eq!(
            rec.render(),
            r#"{"schema":1,"kind":"workload","name":"loop_inv","instructions":9}"#
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let records = vec![
            record("run", "suite", vec![("jobs", Json::U64(4))]),
            record("workload", "w0", vec![("wall_ns", Json::U64(123))]),
        ];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn newer_schema_is_rejected() {
        let text = format!("{{\"schema\":{}}}\n", SCHEMA_VERSION + 1);
        assert!(parse_jsonl(&text).is_err());
    }

    #[test]
    fn lenient_parse_drops_only_a_torn_final_line() {
        let records = vec![
            record("run", "suite", vec![("jobs", Json::U64(4))]),
            record("workload", "w0", vec![("instructions", Json::U64(9))]),
        ];
        let mut text = to_jsonl(&records);
        // A crash mid-append leaves a partial final line with no newline.
        text.push_str("{\"schema\":1,\"kind\":\"work");
        let parsed = parse_jsonl_lenient(&text).unwrap();
        assert_eq!(parsed.records, records);
        assert!(parsed.dropped_tail.unwrap().contains("line 3"));
        // The strict parser rejects the same document.
        assert!(parse_jsonl(&text).is_err());
        // A malformed line in the middle is corruption, not truncation.
        let bad_middle = format!("not json\n{}", to_jsonl(&records));
        assert!(parse_jsonl_lenient(&bad_middle).is_err());
        // A clean document reports no drop.
        let clean = parse_jsonl_lenient(&to_jsonl(&records)).unwrap();
        assert_eq!(clean.records, records);
        assert_eq!(clean.dropped_tail, None);
    }

    #[test]
    fn masking_replaces_volatile_fields_at_any_depth() {
        let rec = record(
            "workload",
            "w0",
            vec![
                ("wall_ns", Json::U64(5)),
                ("instructions", Json::U64(10)),
                ("workers", Json::Arr(vec![Json::obj(vec![("busy_ns", Json::U64(3))])])),
            ],
        );
        let masked = mask_volatile(&rec);
        assert_eq!(masked.get("wall_ns").unwrap().as_str(), Some("<volatile>"));
        assert_eq!(masked.get("instructions").unwrap().as_u64(), Some(10));
        let workers = match masked.get("workers").unwrap() {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(workers[0].get("busy_ns").unwrap().as_str(), Some("<volatile>"));
        // Masking is idempotent.
        assert_eq!(mask_volatile(&masked), masked);
    }
}
