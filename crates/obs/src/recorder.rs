//! The `Recorder` sink: where instrumented code reports events.
//!
//! Hot code never formats or allocates for observability; it either does
//! nothing (the default [`NullRecorder`] — a single predictable branch at
//! each site via [`Recorder::enabled`]) or bumps an atomic counter in a
//! [`MemRecorder`]. Timing capture is likewise gated on `enabled()` so a
//! disabled recorder never calls `Instant::now`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::counter::{CounterId, Counts};
use crate::hist::Log2Histogram;

/// One named timing histogram kept by a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Wall time of one profiled workload, nanoseconds.
    WorkloadWallNs,
    /// Wall time of one parallel-map item, nanoseconds.
    ItemNs,
    /// Total busy time of one worker thread, nanoseconds.
    WorkerBusyNs,
    /// Idle (queue-wait) time of one worker thread, nanoseconds.
    WorkerQueueWaitNs,
}

impl HistId {
    /// Number of defined histograms.
    pub const COUNT: usize = Self::ALL.len();

    /// Every histogram, in canonical order.
    pub const ALL: [HistId; 4] =
        [HistId::WorkloadWallNs, HistId::ItemNs, HistId::WorkerBusyNs, HistId::WorkerQueueWaitNs];

    /// Stable snake_case name used in telemetry and `vprof stats`.
    pub fn name(self) -> &'static str {
        match self {
            HistId::WorkloadWallNs => "workload_wall_ns",
            HistId::ItemNs => "item_ns",
            HistId::WorkerBusyNs => "worker_busy_ns",
            HistId::WorkerQueueWaitNs => "worker_queue_wait_ns",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&h| h == self).expect("hist listed in ALL")
    }
}

/// Sink for self-profiling events. All methods default to no-ops so a
/// recorder implements only what it stores; `enabled()` lets call sites
/// skip even the cost of *assembling* an event.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything. Sites doing non-trivial
    /// work to produce an event (e.g. reading the clock) must check this
    /// first; when it returns `false` the site pays only this branch.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `n` to a counter.
    fn add(&self, _id: CounterId, _n: u64) {}

    /// Adds a whole count vector (flushed from deterministic plain-u64
    /// event structs at phase boundaries).
    fn add_counts(&self, counts: &Counts) {
        for (id, value) in counts.iter_nonzero() {
            self.add(id, value);
        }
    }

    /// Records a sample into a timing histogram.
    fn observe(&self, _id: HistId, _value: u64) {}

    /// Records a completed named phase and its duration.
    fn phase(&self, _name: &str, _nanos: u64) {}
}

/// The default recorder: discards everything, reports `enabled() == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// An in-memory aggregating recorder: atomic counters, mutex-guarded
/// histograms and phase log. Cheap enough for tests and telemetry runs;
/// the hot paths flush into it only at workload boundaries.
#[derive(Debug)]
pub struct MemRecorder {
    counters: [AtomicU64; CounterId::COUNT],
    hists: Mutex<[Log2Histogram; HistId::COUNT]>,
    phases: Mutex<Vec<(String, u64)>>,
}

// Manual impl: arrays only derive `Default` up to 32 elements.
impl Default for MemRecorder {
    fn default() -> MemRecorder {
        MemRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: Mutex::new(std::array::from_fn(|_| Log2Histogram::new())),
            phases: Mutex::new(Vec::new()),
        }
    }
}

impl MemRecorder {
    /// An empty recorder.
    pub fn new() -> MemRecorder {
        MemRecorder::default()
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> Counts {
        let mut counts = Counts::new();
        for id in CounterId::ALL {
            let index = CounterId::ALL.iter().position(|&c| c == id).unwrap();
            counts.add(id, self.counters[index].load(Ordering::Relaxed));
        }
        counts
    }

    /// Copy of one timing histogram.
    pub fn hist(&self, id: HistId) -> Log2Histogram {
        self.hists.lock().unwrap()[id.index()].clone()
    }

    /// Completed phases in recording order.
    pub fn phases(&self) -> Vec<(String, u64)> {
        self.phases.lock().unwrap().clone()
    }

    /// Clears all counters, histograms and phases.
    pub fn reset(&self) {
        for counter in &self.counters {
            counter.store(0, Ordering::Relaxed);
        }
        for hist in self.hists.lock().unwrap().iter_mut() {
            *hist = Log2Histogram::new();
        }
        self.phases.lock().unwrap().clear();
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, id: CounterId, n: u64) {
        let index = CounterId::ALL.iter().position(|&c| c == id).unwrap();
        self.counters[index].fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, id: HistId, value: u64) {
        self.hists.lock().unwrap()[id.index()].record(value);
    }

    fn phase(&self, name: &str, nanos: u64) {
        self.phases.lock().unwrap().push((name.to_string(), nanos));
    }
}

/// Monotonic stopwatch for phase timing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds elapsed since `start()`, saturated at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        rec.add(CounterId::TnvHits, 5);
        rec.observe(HistId::ItemNs, 100);
        rec.phase("replay", 42);
    }

    #[test]
    fn mem_recorder_aggregates() {
        let rec = MemRecorder::new();
        assert!(rec.enabled());
        rec.add(CounterId::TnvHits, 2);
        rec.add(CounterId::TnvHits, 3);
        let mut extra = Counts::new();
        extra.add(CounterId::TnvInserts, 7);
        rec.add_counts(&extra);
        let snap = rec.snapshot();
        assert_eq!(snap.get(CounterId::TnvHits), 5);
        assert_eq!(snap.get(CounterId::TnvInserts), 7);

        rec.observe(HistId::WorkloadWallNs, 1000);
        rec.observe(HistId::WorkloadWallNs, 3000);
        let hist = rec.hist(HistId::WorkloadWallNs);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 4000);

        rec.phase("replay", 12);
        assert_eq!(rec.phases(), vec![("replay".to_string(), 12)]);

        rec.reset();
        assert_eq!(rec.snapshot().total(), 0);
        assert_eq!(rec.hist(HistId::WorkloadWallNs).count(), 0);
        assert!(rec.phases().is_empty());
    }

    #[test]
    fn mem_recorder_is_thread_safe() {
        let rec = MemRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        rec.add(CounterId::WorkerItems, 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().get(CounterId::WorkerItems), 4000);
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
