//! # vp-obs — self-profiling for the value profiler
//!
//! The paper's central trade-off is profiler *accuracy versus overhead*:
//! the convergent profiler exists only because full TNV profiling is too
//! slow. This crate is how the reproduction measures that overhead on
//! itself, in the spirit of low-perturbation instrumentation counters
//! (Metz & Lencevicius) and persisted cross-run profile data (Quackenbush
//! & Zahran, "Beyond Profiling"):
//!
//! * [`counter`] — the event taxonomy ([`CounterId`]), fixed-size count
//!   vectors ([`Counts`]) and the per-subsystem event structs
//!   ([`TnvEvents`], [`ConvEvents`], [`SampleEvents`]) that the profilers
//!   in `vp-core` maintain as plain `u64` increments on their hot paths —
//!   deterministic, mergeable, and practically free;
//! * [`crc`] — the table-driven CRC32 behind every integrity footer in
//!   the workspace (durable profile files, binary trace chunks);
//! * [`hist`] — [`Log2Histogram`], a 65-bucket power-of-two histogram for
//!   timing distributions (queue waits, per-workload wall times);
//! * [`recorder`] — the [`Recorder`] sink trait. The default
//!   [`NullRecorder`] makes every instrumented site cost a single
//!   predictable branch; [`MemRecorder`] aggregates counters atomically
//!   for tests and telemetry emission;
//! * [`json`] / [`telemetry`] — a dependency-free ordered JSON value and
//!   the schema-versioned `telemetry.jsonl` record format (one record per
//!   run/phase/workload), including volatile-field masking so records can
//!   be golden-tested;
//! * [`stats`] — the human summary table behind `vprof stats <file>`.
//!
//! ```
//! use vp_obs::{CounterId, Counts, MemRecorder, Recorder};
//!
//! let rec = MemRecorder::new();
//! rec.add(CounterId::TnvHits, 3);
//! let mut counts = Counts::new();
//! counts.add(CounterId::TnvHits, 4);
//! rec.add_counts(&counts);
//! assert_eq!(rec.snapshot().get(CounterId::TnvHits), 7);
//! ```

pub mod counter;
pub mod crc;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod stats;
pub mod telemetry;

pub use counter::{ConvEvents, CounterId, Counts, SampleEvents, TnvEvents};
pub use crc::{crc32, Crc32};
pub use hist::Log2Histogram;
pub use json::Json;
pub use recorder::{HistId, MemRecorder, NullRecorder, Recorder, Stopwatch};
pub use telemetry::SCHEMA_VERSION;
